"""Candidate-generation-free correlated-pair mining over an FP-tree.

Two modes, both exact:

* :meth:`FPTreePairEngine.count_tables` — a drop-in counting backend
  for the level-wise miner.  One ancestor-chain sweep over the tree
  yields every pair's co-occurrence count; the four ``2x2`` cells
  follow from the item marginals, so each level-2 contingency table is
  assembled without touching the baskets again.  (Higher levels fall
  back to the bitmap construction — the FP-tree argument is about the
  pair level, which is where the candidate count explodes.)

* :meth:`FPTreePairEngine.top_k` — the K strongest pair correlations
  under a branch-and-bound prune.  The chi-squared statistic of a pair
  is a quadratic in the co-occurrence count ``nab`` opening upward, so
  its maximum over the feasible range

      ``nab in [max(0, na + nb - n, s), min(na, nb)]``

  is attained at an endpoint: an *upper bound from the marginal
  supports alone* (``s`` is the co-occurrence support floor defining
  the search universe).  Header subtrees whose best achievable pair
  cannot beat the current K-th best are skipped without walking their
  ancestor chains, and within walked subtrees each discovered pair's
  bound gates the exact table-and-statistic evaluation.  A slack
  margin keeps the prune strictly conservative under floating-point
  rounding, so the pruned result is *identical* to the unpruned one —
  which the property suite asserts.

Ranking is deterministic: descending chi-squared, ascending itemset on
ties.  Exact statistics are computed through the same
:class:`~repro.core.contingency.ContingencyTable` /
:func:`~repro.core.correlation.chi_squared` path as every other
backend, keeping the reported values bit-identical to the miner's.
"""

from __future__ import annotations

import json
from bisect import insort
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.contingency import ContingencyTable
from repro.core.correlation import chi_squared
from repro.core.itemsets import Itemset, ItemVocabulary
from repro.data.basket import BasketDatabase
from repro.fptree.tree import FPTree
from repro.obs import NULL_TELEMETRY, Telemetry

__all__ = [
    "FPTreePairEngine",
    "SweepStats",
    "TopKEntry",
    "TopKResult",
    "chi2_pair_upper_bound",
    "item_chi2_upper_bound",
]

# Relative slack applied to the K-th best statistic before a bound may
# prune: bounds and statistics travel through different float
# expressions, so equality at the boundary must never prune.
_PRUNE_SLACK = 1e-9


def _chi2_closed_form(n: float, count_a: float, count_b: float, both: float) -> float:
    """chi2 of a 2x2 table from its marginals and co-occurrence count.

    ``chi2 = n (n*nab - na*nb)^2 / (na nb (n-na)(n-nb))``; degenerate
    marginals (an item in no basket or in every basket) make every
    deviation structurally zero, so the statistic is 0.
    """
    denominator = count_a * count_b * (n - count_a) * (n - count_b)
    if denominator <= 0:
        return 0.0
    deviation = n * both - count_a * count_b
    return n * deviation * deviation / denominator


def chi2_pair_upper_bound(
    n: float, count_a: float, count_b: float, min_cooccurrence: float = 1
) -> float | None:
    """Largest chi2 any pair with these marginals could reach.

    The statistic is an upward-opening quadratic in the co-occurrence
    count, so its maximum over the feasible range is at one of the two
    endpoints.  Returns ``None`` when no feasible co-occurrence count
    meets ``min_cooccurrence`` — no qualifying pair can exist at all.
    """
    low = max(0.0, count_a + count_b - n, float(min_cooccurrence))
    high = min(count_a, count_b)
    if low > high:
        return None
    return max(
        _chi2_closed_form(n, count_a, count_b, low),
        _chi2_closed_form(n, count_a, count_b, high),
    )


def item_chi2_upper_bound(
    n: float,
    count_b: float,
    partner_min: float,
    partner_max: float,
    min_cooccurrence: float = 1,
) -> float | None:
    """Bound over *every* partner marginal in ``[partner_min, partner_max]``.

    The subtree prune needs ``max over na of chi2_pair_upper_bound(na,
    nb)`` without touching each partner.  Over the continuous relaxation
    the maximum sits at one of a handful of points:

    * the high endpoint ``nab = nb`` gives a term decreasing in ``na``
      — maximal at ``partner_min``;
    * the low endpoint with ``na + nb - n >= s`` (strong overlap forced)
      gives a term decreasing in ``na`` — maximal where that regime
      starts, ``na = n - nb + s``;
    * the low endpoint pinned at the support floor ``nab = s`` is
      maximal at an interval end or at its single interior critical
      point ``na = n s / (2 s - nb)`` (existing only for ``nb < 2 s``).

    Evaluating the pair bound at those candidate marginals (clamped to
    the partner range) dominates every integer partner count, which the
    property suite cross-checks against exhaustive enumeration.
    """
    partner_min = max(partner_min, count_b)
    if partner_min > partner_max:
        return None
    candidates = [partner_min, partner_max]
    switch = n - count_b + min_cooccurrence
    if partner_min < switch < partner_max:
        candidates.append(switch)
    if count_b < 2 * min_cooccurrence:
        critical = n * min_cooccurrence / (2 * min_cooccurrence - count_b)
        if partner_min < critical < partner_max:
            candidates.append(critical)
    best: float | None = None
    for count_a in candidates:
        bound = chi2_pair_upper_bound(n, count_a, count_b, min_cooccurrence)
        if bound is not None and (best is None or bound > best):
            best = bound
    return best


def _pair_cells(n: int, count_first: int, count_second: int, both: int) -> dict[int, int]:
    """The four 2x2 cells; bit 0 is the pair's first (smaller-id) item."""
    return {
        0b11: both,
        0b01: count_first - both,
        0b10: count_second - both,
        0b00: n - count_first - count_second + both,
    }


@dataclass(slots=True)
class SweepStats:
    """What one sweep did — the branch-and-bound's accounting.

    ``subtrees_walked + subtrees_pruned == header_items`` and
    ``pairs_evaluated + pairs_pruned == pairs_discovered`` always hold;
    the telemetry counters mirror these fields exactly (a test gate).
    Pruned subtrees never discover their pairs, so an unpruned run of
    the same sweep reports a larger ``pairs_discovered``.
    """

    nodes: int = 0
    header_items: int = 0
    subtrees_walked: int = 0
    subtrees_pruned: int = 0
    pairs_discovered: int = 0
    pairs_evaluated: int = 0
    pairs_pruned: int = 0

    @property
    def subtree_prune_fraction(self) -> float:
        """Share of header subtrees skipped without walking."""
        if not self.header_items:
            return 0.0
        return self.subtrees_pruned / self.header_items

    def to_dict(self) -> dict[str, object]:
        return {
            "nodes": self.nodes,
            "header_items": self.header_items,
            "subtrees_walked": self.subtrees_walked,
            "subtrees_pruned": self.subtrees_pruned,
            "subtree_prune_fraction": self.subtree_prune_fraction,
            "pairs_discovered": self.pairs_discovered,
            "pairs_evaluated": self.pairs_evaluated,
            "pairs_pruned": self.pairs_pruned,
        }


@dataclass(frozen=True, slots=True)
class TopKEntry:
    """One ranked pair: the itemset, its exact chi2, and its table."""

    itemset: Itemset
    statistic: float
    table: ContingencyTable

    @property
    def cooccurrence(self) -> int:
        """Baskets containing both items (the full-presence cell)."""
        return int(self.table.nonzero_counts().get(0b11, 0))


@dataclass(frozen=True, slots=True)
class TopKResult:
    """The K strongest pair correlations, strongest first.

    ``entries`` may be shorter than ``k`` when fewer pairs meet the
    co-occurrence floor.  ``stats`` describes the sweep that produced
    the ranking; with ``prune`` the entries are identical to the
    unpruned ranking by construction, only the stats differ.
    """

    k: int | None
    min_cooccurrence: int
    prune: bool
    n_baskets: int
    entries: tuple[TopKEntry, ...]
    stats: SweepStats = field(compare=False)

    def itemsets(self) -> list[Itemset]:
        """The ranked itemsets, strongest correlation first."""
        return [entry.itemset for entry in self.entries]

    def to_dict(self, vocabulary: ItemVocabulary | None = None) -> dict[str, object]:
        """JSON-compatible payload; items become names when decodable."""
        entries = []
        for rank, entry in enumerate(self.entries, start=1):
            items: list[object] = [
                vocabulary.name_of(item) if vocabulary is not None else item
                for item in entry.itemset.items
            ]
            width = len(entry.itemset)
            cells = {
                "".join("1" if (cell >> j) & 1 else "0" for j in range(width)): int(
                    count
                )
                for cell, count in sorted(entry.table.nonzero_counts().items())
            }
            entries.append(
                {
                    "rank": rank,
                    "items": items,
                    "chi2": entry.statistic,
                    "cooccurrence": entry.cooccurrence,
                    "cells": cells,
                }
            )
        return {
            "k": self.k,
            "min_cooccurrence": self.min_cooccurrence,
            "prune": self.prune,
            "n_baskets": self.n_baskets,
            "entries": entries,
            "stats": self.stats.to_dict(),
        }

    def serialize(self, vocabulary: ItemVocabulary | None = None) -> str:
        """Canonical JSON text — byte-identical across identical runs."""
        return json.dumps(self.to_dict(vocabulary), indent=2, sort_keys=True) + "\n"


class FPTreePairEngine:
    """FP-tree-backed exact pair counting and top-K correlation search.

    Builds the tree once per database; both the level-2 counting sweep
    and every ``top_k`` call reuse it.  All instrumentation goes
    through the supplied :class:`~repro.obs.Telemetry` (disabled by
    default): spans ``fptree.build`` / ``fptree.sweep`` and counters
    ``fptree_nodes``, ``fptree_subtrees{outcome=}``,
    ``fptree_pairs{outcome=}``.

    >>> db = BasketDatabase.from_baskets(
    ...     [["tea", "coffee"]] * 45 + [["tea"]] * 5 + [["coffee"]] * 25 + [[]] * 25)
    >>> engine = FPTreePairEngine(db)
    >>> [entry.cooccurrence for entry in engine.top_k(1).entries]
    [45]
    """

    def __init__(self, db: BasketDatabase, telemetry: Telemetry | None = None) -> None:
        self.db = db
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._counts = db.item_counts()
        with self.telemetry.tracer.span(
            "fptree.build", n_baskets=db.n_baskets, n_items=db.n_items
        ) as span:
            self.tree = FPTree.from_database(db)
            span.annotate(nodes=self.tree.n_nodes)
        self.telemetry.metrics.counter("fptree_nodes").inc(self.tree.n_nodes)
        self._cooccurrence: dict[tuple[int, int], int] | None = None

    def close(self) -> None:
        """Symmetry with the parallel engine's lifecycle; nothing to free."""

    # -- exact counting (the miner's backend hook) ----------------------------

    def pair_cooccurrence(self) -> dict[tuple[int, int], int]:
        """Co-occurrence count of every co-occurring pair, keyed ``(i, j)``
        with ``i < j`` by item id.  Pairs that never co-occur are absent.

        One full sweep: each header item's ancestor chains are walked
        once, so each pair is counted exactly once (at its deeper-ranked
        item).  The result is cached — the tree is immutable.
        """
        if self._cooccurrence is not None:
            return self._cooccurrence
        tree = self.tree
        metrics = self.telemetry.metrics
        cooccurrence: dict[tuple[int, int], int] = {}
        with self.telemetry.tracer.span(
            "fptree.sweep", mode="exhaustive", header_items=len(tree.order)
        ):
            for item in tree.order:
                for partner, both in tree.conditional_counts(item).items():
                    key = (partner, item) if partner < item else (item, partner)
                    cooccurrence[key] = both
            metrics.counter("fptree_subtrees", outcome="walked").inc(len(tree.order))
        self._cooccurrence = cooccurrence
        return cooccurrence

    def count_tables(self, candidates: Sequence[Itemset]) -> dict[Itemset, ContingencyTable]:
        """Contingency tables for ``candidates`` (the counting-backend API).

        Pairs are assembled from the sweep's co-occurrence counts and
        the item marginals — including pairs that never co-occur, whose
        full-presence cell is simply zero.  Wider itemsets fall back to
        the bitmap construction: the FP-tree speedup targets level 2.
        """
        counts = self._counts
        n = self.db.n_baskets
        tables: dict[Itemset, ContingencyTable] = {}
        pairs = [candidate for candidate in candidates if len(candidate) == 2]
        if pairs:
            cooccurrence = self.pair_cooccurrence()
            for candidate in pairs:
                first, second = candidate.items
                both = cooccurrence.get((first, second), 0)
                tables[candidate] = ContingencyTable.from_cell_counts(
                    candidate, _pair_cells(n, counts[first], counts[second], both), n
                )
        for candidate in candidates:
            if len(candidate) != 2:
                tables[candidate] = ContingencyTable.from_database(self.db, candidate)
        return tables

    # -- top-K branch-and-bound ----------------------------------------------

    def top_k(
        self,
        k: int | None,
        min_cooccurrence: int = 1,
        prune: bool = True,
    ) -> TopKResult:
        """The ``k`` strongest pair correlations among pairs co-occurring
        at least ``min_cooccurrence`` times.

        ``k=None`` ranks the whole universe (pruning then has nothing to
        cut and is disabled).  Pairs that never co-occur are outside the
        universe by construction — the level-wise miner remains the tool
        for exhaustive significance sweeps including disjoint pairs.

        Ordering is total and deterministic: descending chi2, ascending
        itemset on exact float ties.
        """
        if k is not None and k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if min_cooccurrence < 1:
            raise ValueError(
                f"min_cooccurrence must be >= 1, got {min_cooccurrence}"
            )
        if k is None:
            prune = False

        tree = self.tree
        n = self.db.n_baskets
        counts = self._counts
        stats = SweepStats(nodes=tree.n_nodes, header_items=len(tree.order))
        metrics = self.telemetry.metrics

        # Header subtrees in descending bound order (ties by tree rank):
        # the K-th best rises as fast as possible, and once one subtree
        # prunes, every later one does too.  Items whose bound is None
        # cannot form any qualifying pair, whatever the heap holds.
        ranked_counts = [counts[item] for item in tree.order]
        if prune:
            bounds: list[float | None] = [None]
            for position in range(1, len(tree.order)):
                bounds.append(
                    item_chi2_upper_bound(
                        n,
                        ranked_counts[position],
                        partner_min=ranked_counts[position - 1],
                        partner_max=ranked_counts[0],
                        min_cooccurrence=min_cooccurrence,
                    )
                )
            order = sorted(
                range(len(tree.order)),
                key=lambda position: (
                    -(bounds[position] if bounds[position] is not None else float("-inf")),
                    position,
                ),
            )
        else:
            bounds = [None] * len(tree.order)
            order = list(range(len(tree.order)))

        # The running selection, ascending by (-chi2, items): the last
        # element is the current K-th best.  Tuples compare on the first
        # two fields only — items are unique, the entry never compares.
        selection: list[tuple[float, tuple[int, ...], TopKEntry]] = []

        def threshold() -> float | None:
            if k is None or len(selection) < k:
                return None
            kth = -selection[-1][0]
            return kth - _PRUNE_SLACK * max(1.0, kth)

        with self.telemetry.tracer.span(
            "fptree.sweep",
            mode="topk",
            k=-1 if k is None else k,
            prune=prune,
            min_cooccurrence=min_cooccurrence,
            header_items=len(tree.order),
        ):
            for index, position in enumerate(order):
                if prune:
                    bound = bounds[position]
                    cutoff = threshold()
                    if bound is None:
                        stats.subtrees_pruned += 1
                        continue
                    if cutoff is not None and bound < cutoff:
                        # Bounds descend from here on: everything left
                        # is out, including the None-bound tail.
                        stats.subtrees_pruned += len(order) - index
                        break
                item = tree.order[position]
                count_b = counts[item]
                stats.subtrees_walked += 1
                conditional = tree.conditional_counts(item)
                for partner in sorted(conditional):
                    both = conditional[partner]
                    if both < min_cooccurrence:
                        continue
                    stats.pairs_discovered += 1
                    count_a = counts[partner]
                    if prune:
                        cutoff = threshold()
                        if cutoff is not None:
                            pair_bound = chi2_pair_upper_bound(
                                n, count_a, count_b, min_cooccurrence
                            )
                            if pair_bound is None or pair_bound < cutoff:
                                stats.pairs_pruned += 1
                                continue
                    stats.pairs_evaluated += 1
                    first, second = (
                        (partner, item) if partner < item else (item, partner)
                    )
                    itemset = Itemset((first, second))
                    table = ContingencyTable.from_cell_counts(
                        itemset, _pair_cells(n, counts[first], counts[second], both), n
                    )
                    statistic = chi_squared(table)
                    entry = (-statistic, itemset.items, TopKEntry(itemset, statistic, table))
                    if k is None or len(selection) < k:
                        insort(selection, entry)
                    elif entry[:2] < selection[-1][:2]:
                        insort(selection, entry)
                        selection.pop()
            metrics.counter("fptree_subtrees", outcome="walked").inc(
                stats.subtrees_walked
            )
            metrics.counter("fptree_subtrees", outcome="pruned").inc(
                stats.subtrees_pruned
            )
            metrics.counter("fptree_pairs", outcome="discovered").inc(
                stats.pairs_discovered
            )
            metrics.counter("fptree_pairs", outcome="evaluated").inc(
                stats.pairs_evaluated
            )
            metrics.counter("fptree_pairs", outcome="pruned").inc(stats.pairs_pruned)

        return TopKResult(
            k=k,
            min_cooccurrence=min_cooccurrence,
            prune=prune,
            n_baskets=n,
            entries=tuple(entry for _, _, entry in selection),
            stats=stats,
        )
