"""FP-tree correlated-pair engine (He/Xu/Deng, arXiv cs/0411035).

A prefix-tree encoding of the basket database from which every pair's
contingency table is derived without candidate generation, plus a
top-K strongest-correlations search with an upper-bound-driven
branch-and-bound prune.  Wired into the level-wise miner as
``counting="fptree"`` and into the CLI as the ``topk`` command.
"""

from repro.fptree.engine import (
    FPTreePairEngine,
    SweepStats,
    TopKEntry,
    TopKResult,
    chi2_pair_upper_bound,
    item_chi2_upper_bound,
)
from repro.fptree.tree import FPNode, FPTree

__all__ = [
    "FPNode",
    "FPTree",
    "FPTreePairEngine",
    "SweepStats",
    "TopKEntry",
    "TopKResult",
    "chi2_pair_upper_bound",
    "item_chi2_upper_bound",
]
