"""The FP-tree: a shared-prefix encoding of a basket database.

An FP-tree (Han et al.'s *frequent-pattern tree*, used by He/Xu/Deng,
arXiv cs/0411035, to mine all strongly correlated pairs without
candidate generation) stores every basket as a path from the root,
with items ordered by descending frequency so that common prefixes
collapse into shared nodes.  Each node carries the number of baskets
whose path runs through it, and a *header table* links every node of
each item, so all occurrences of an item are reachable without
touching the baskets again.

The key property this module exploits: for any two items ``a`` and
``b`` with ``a`` ranked above ``b``, every basket containing both lies
on a path where ``b``'s node has ``a`` as an ancestor.  Summing node
counts over ancestor chains therefore yields *exact* pair
co-occurrence counts — the ``2x2`` contingency cells follow from the
item marginals — with total cost proportional to the compressed tree,
not to the number of candidate pairs.

Item order is deterministic: descending occurrence count, ascending
item id on ties.  Items that occur in no basket are left out of the
tree (they have no paths); the engine layer reconstructs their
(all-zero co-occurrence) tables from the marginals alone.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.data.basket import BasketDatabase

__all__ = ["FPNode", "FPTree"]


class FPNode:
    """One prefix node: an item, its path count, and tree links."""

    __slots__ = ("item", "count", "parent", "children")

    def __init__(self, item: int | None, parent: "FPNode | None") -> None:
        self.item = item  # None only for the root sentinel
        self.count = 0
        self.parent = parent
        self.children: dict[int, FPNode] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FPNode(item={self.item}, count={self.count})"


class FPTree:
    """The prefix tree plus its header table and frequency order.

    Attributes:
        root: the item-less sentinel all paths start from.
        order: items present in at least one basket, most frequent
            first (ties broken by ascending id).
        rank: item -> position in ``order``.
        header: item -> list of that item's nodes, in insertion order.
        n_baskets: number of baskets inserted (including empty ones,
            which contribute no path).
    """

    __slots__ = ("root", "order", "rank", "header", "n_baskets")

    def __init__(self, order: tuple[int, ...]) -> None:
        self.root = FPNode(None, None)
        self.order = order
        self.rank = {item: position for position, item in enumerate(order)}
        self.header: dict[int, list[FPNode]] = {item: [] for item in order}
        self.n_baskets = 0

    @classmethod
    def from_database(cls, db: BasketDatabase) -> "FPTree":
        """Build the tree in one pass over ``db`` (after the count pass)."""
        counts = db.item_counts()
        order = tuple(
            sorted(
                (item for item in db.vocabulary.ids() if counts[item] > 0),
                key=lambda item: (-counts[item], item),
            )
        )
        tree = cls(order)
        rank = tree.rank
        for basket in db:
            tree.insert(sorted(basket, key=rank.__getitem__))
        return tree

    def insert(self, ordered_items: list[int]) -> None:
        """Add one basket whose items are already in tree rank order."""
        self.n_baskets += 1
        node = self.root
        for item in ordered_items:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item, node)
                node.children[item] = child
                self.header[item].append(child)
            child.count += 1
            node = child

    @property
    def n_nodes(self) -> int:
        """Prefix nodes in the tree (the root sentinel not included)."""
        return sum(len(nodes) for nodes in self.header.values())

    def item_count(self, item: int) -> int:
        """Occurrences of ``item``, recovered from its header nodes."""
        return sum(node.count for node in self.header.get(item, ()))

    def paths(self) -> Iterator[tuple[list[int], int]]:
        """Yield ``(items_from_root, leaf_count)`` per distinct path.

        Diagnostic/inspection view of the compression; iteration order
        follows each level's insertion order.
        """
        stack: list[tuple[FPNode, list[int]]] = [(self.root, [])]
        while stack:
            node, prefix = stack.pop()
            child_total = 0
            for child in node.children.values():
                stack.append((child, prefix + [child.item]))
                child_total += child.count
            if node is not self.root and node.count > child_total:
                yield prefix, node.count - child_total

    def conditional_counts(self, item: int) -> dict[int, int]:
        """Co-occurrence counts of ``item`` with every higher-ranked item.

        Walks the ancestor chain of each of ``item``'s nodes — the
        *conditional pattern base* — accumulating the node's count into
        each ancestor's total.  Exact by the prefix property: a basket
        holding both items traverses the ancestor exactly once on its
        way to ``item``'s node.
        """
        conditional: dict[int, int] = {}
        for node in self.header.get(item, ()):
            count = node.count
            ancestor = node.parent
            while ancestor is not None and ancestor.item is not None:
                key = ancestor.item
                conditional[key] = conditional.get(key, 0) + count
                ancestor = ancestor.parent
        return conditional
