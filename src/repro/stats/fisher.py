"""Fisher's exact test for 2x2 contingency tables.

Section 3.3 of the paper notes that the chi-squared approximation breaks
down when expected cell counts are small and that "the solution to this
problem is to use an exact calculation for the probability".  For 2x2
tables that exact calculation is classical: condition on the margins and
sum hypergeometric point probabilities.  We provide it as the exact
fallback the paper wished for, usable by the miner whenever a table
fails the rule-of-thumb validity check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["FisherResult", "fisher_exact_2x2"]


@dataclass(frozen=True, slots=True)
class FisherResult:
    """Outcome of a Fisher exact test.

    Attributes:
        p_value: two-sided p-value (sum of all tables with point
            probability no greater than the observed table's).
        odds_ratio: the sample odds ratio ``(a*d)/(b*c)``; ``inf`` when
            ``b*c == 0`` and ``a*d > 0``, ``nan`` for the degenerate
            all-zero cross products.
    """

    p_value: float
    odds_ratio: float


def _log_hypergeometric(a: int, row1: int, row2: int, col1: int, n: int) -> float:
    """Log point probability of cell ``a`` given fixed margins."""
    return (
        math.lgamma(row1 + 1)
        - math.lgamma(a + 1)
        - math.lgamma(row1 - a + 1)
        + math.lgamma(row2 + 1)
        - math.lgamma(col1 - a + 1)
        - math.lgamma(row2 - col1 + a + 1)
        - (math.lgamma(n + 1) - math.lgamma(col1 + 1) - math.lgamma(n - col1 + 1))
    )


def fisher_exact_2x2(a: int, b: int, c: int, d: int) -> FisherResult:
    """Two-sided Fisher exact test on the table ``[[a, b], [c, d]]``.

    ``a`` counts baskets containing both items, ``b`` the first only,
    ``c`` the second only, ``d`` neither — the same layout as the
    paper's contingency tables.
    """
    for name, value in (("a", a), ("b", b), ("c", c), ("d", d)):
        if value < 0:
            raise ValueError(f"cell {name} must be non-negative, got {value}")
    n = a + b + c + d
    if n == 0:
        raise ValueError("table is empty")

    row1, row2 = a + b, c + d
    col1 = a + c

    cross1, cross2 = a * d, b * c
    if cross2 == 0:
        odds_ratio = math.nan if cross1 == 0 else math.inf
    else:
        odds_ratio = cross1 / cross2

    lo = max(0, col1 - row2)
    hi = min(col1, row1)
    observed_logp = _log_hypergeometric(a, row1, row2, col1, n)
    # Sum point probabilities <= the observed one (with a standard
    # relative tolerance to absorb floating-point noise).
    total = 0.0
    threshold = observed_logp + 1e-7
    for k in range(lo, hi + 1):
        logp = _log_hypergeometric(k, row1, row2, col1, n)
        if logp <= threshold:
            total += math.exp(logp)
    return FisherResult(p_value=min(total, 1.0), odds_ratio=odds_ratio)
