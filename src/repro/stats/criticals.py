"""Critical values for the chi-squared test.

The paper works "from widely available tables for the chi-squared
distribution" and quotes 3.84 as the 95% cutoff at one degree of
freedom.  We keep a small table of the classical cutoffs for exactness
and fall back to :func:`repro.stats.chi2.ppf` for anything else, so any
significance level / degrees-of-freedom combination works.
"""

from __future__ import annotations

from repro.stats import chi2

__all__ = ["critical_value", "CHI2_95_DF1"]

# The cutoff the paper uses throughout: 95% significance, 1 dof.
CHI2_95_DF1 = 3.841458820694124

# Precomputed full-precision cutoffs (significance level -> df -> value)
# for the common settings, so repeated significance tests skip the
# quantile solve entirely.
_TABLE: dict[float, dict[int, float]] = {
    0.90: {
        1: 2.705543454095404,
        2: 4.605170185988092,
        3: 6.251388631170325,
        4: 7.779440339734858,
        5: 9.236356899781123,
    },
    0.95: {
        1: 3.841458820694124,
        2: 5.991464547107979,
        3: 7.814727903251179,
        4: 9.487729036781154,
        5: 11.070497693516351,
    },
    0.99: {
        1: 6.6348966010212145,
        2: 9.21034037197618,
        3: 11.344866730144373,
        4: 13.276704135987622,
        5: 15.08627246938899,
    },
}


def critical_value(significance: float = 0.95, df: int = 1) -> float:
    """The chi-squared cutoff for the given significance level.

    ``significance`` is the paper's alpha-complement convention: a value
    of 0.95 means "reject independence when the statistic exceeds the
    95th percentile of the null distribution".
    """
    if not 0.0 < significance < 1.0:
        raise ValueError(f"significance must be in (0, 1), got {significance}")
    by_df = _TABLE.get(round(significance, 10))
    if by_df is not None:
        cutoff = by_df.get(df)
        if cutoff is not None:
            return cutoff
    return chi2.ppf(significance, df)
