"""The chi-squared distribution.

Provides cdf / sf (survival function) / ppf (quantile) for the
chi-squared distribution with ``df`` degrees of freedom, built on the
incomplete gamma functions in :mod:`repro.stats.gamma`.

The paper's significance decisions all reduce to one comparison —
``statistic >= ppf(0.95, df)`` — but we expose the full distribution so
users can report p-values and work at any significance level.  Theorem 1
of the paper treats the binomial contingency tables as having a single
degree of freedom, and :func:`degrees_of_freedom` encodes the general
multinomial rule ``(u1-1)(u2-1)...(uk-1)`` from Appendix A.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.stats.gamma import lower_regularized, upper_regularized

__all__ = ["cdf", "sf", "pdf", "ppf", "degrees_of_freedom", "wilson_hilferty_ppf"]


def _validate(df: float, x: float | None = None) -> None:
    if df <= 0:
        raise ValueError(f"degrees of freedom must be positive, got {df}")
    if x is not None and x < 0:
        raise ValueError(f"chi-squared statistic must be non-negative, got {x}")


def cdf(x: float, df: float) -> float:
    """P[X <= x] for X ~ chi-squared(df)."""
    _validate(df, x)
    if x == 0:
        return 0.0
    return lower_regularized(df / 2.0, x / 2.0)


def sf(x: float, df: float) -> float:
    """The p-value P[X >= x] for X ~ chi-squared(df).

    Computed as the upper regularized gamma directly, so tiny tail
    probabilities (e.g. the census pair i4,i5 with chi-squared 18504)
    do not round to zero prematurely.
    """
    _validate(df, x)
    if x == 0:
        return 1.0
    return upper_regularized(df / 2.0, x / 2.0)


def pdf(x: float, df: float) -> float:
    """Density of the chi-squared distribution at ``x``."""
    _validate(df, x)
    if x == 0:
        if df < 2:
            return math.inf
        if df == 2:
            return 0.5
        return 0.0
    half_df = df / 2.0
    log_density = (
        (half_df - 1.0) * math.log(x) - x / 2.0 - half_df * math.log(2.0) - math.lgamma(half_df)
    )
    return math.exp(log_density)


def wilson_hilferty_ppf(probability: float, df: float) -> float:
    """Approximate quantile via the Wilson-Hilferty cube transform.

    Used only to seed the Newton iteration in :func:`ppf`; accurate to a
    few percent on its own.
    """
    # Rational approximation of the standard normal quantile
    # (Peter Acklam's algorithm, max relative error ~1.15e-9).
    p = probability
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        z = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    elif p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        z = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        )
    else:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        z = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    term = 1.0 - 2.0 / (9.0 * df) + z * math.sqrt(2.0 / (9.0 * df))
    return max(df * term**3, 0.0)


def ppf(probability: float, df: float) -> float:
    """Quantile function: the x with ``cdf(x, df) == probability``.

    Wilson-Hilferty seed refined by Newton's method with a bisection
    safeguard; converges to ~1e-12 relative accuracy in a handful of
    iterations.
    """
    _validate(df)
    if not 0.0 <= probability < 1.0:
        raise ValueError(f"probability must be in [0, 1), got {probability}")
    if probability == 0.0:
        return 0.0

    x = wilson_hilferty_ppf(probability, df)
    if x <= 0.0:
        x = df * 1e-8

    low, high = 0.0, math.inf
    for _ in range(200):
        error = cdf(x, df) - probability
        if error > 0:
            high = min(high, x)
        else:
            low = max(low, x)
        density = pdf(x, df)
        if density > 0 and math.isfinite(density):
            step = error / density
            candidate = x - step
        else:
            candidate = -1.0  # force bisection
        if not (low < candidate < high):
            candidate = (low + high) / 2.0 if math.isfinite(high) else x * 2.0
        if abs(candidate - x) <= 1e-14 * max(1.0, abs(x)):
            return candidate
        x = candidate
    return x


def degrees_of_freedom(category_counts: Iterable[int]) -> int:
    """Degrees of freedom of a contingency table.

    For a k-dimensional table where variable ``j`` takes ``u_j`` values,
    the chi-squared statistic has ``(u_1 - 1)(u_2 - 1)...(u_k - 1)``
    degrees of freedom (paper, Appendix A).  For the binary tables the
    paper mines this is always 1, regardless of how many items are in
    the itemset.
    """
    df = 1
    for count in category_counts:
        if count < 2:
            raise ValueError(f"each variable needs at least 2 categories, got {count}")
        df *= count - 1
    return df
