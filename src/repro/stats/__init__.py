"""Statistical substrate: chi-squared distribution, exact tests, G-test.

Everything here is implemented from first principles (incomplete gamma
series / continued fractions, hypergeometric enumeration) so the mining
library runs without scipy; the test suite cross-validates against scipy
when it is available.
"""

from repro.stats.binomial import (
    binomial_cdf,
    binomial_pmf,
    chi_squared_from_binomial,
    de_moivre_laplace_pmf,
    normal_cdf,
    normal_pdf,
    standardized_count,
)
from repro.stats.chi2 import cdf, degrees_of_freedom, pdf, ppf, sf
from repro.stats.criticals import CHI2_95_DF1, critical_value
from repro.stats.exact import PermutationResult, permutation_p_value
from repro.stats.fisher import FisherResult, fisher_exact_2x2
from repro.stats.gamma import log_gamma, lower_regularized, upper_regularized
from repro.stats.gtest import g_statistic

__all__ = [
    "binomial_cdf",
    "binomial_pmf",
    "chi_squared_from_binomial",
    "de_moivre_laplace_pmf",
    "normal_cdf",
    "normal_pdf",
    "standardized_count",
    "cdf",
    "sf",
    "pdf",
    "ppf",
    "degrees_of_freedom",
    "critical_value",
    "CHI2_95_DF1",
    "PermutationResult",
    "permutation_p_value",
    "FisherResult",
    "fisher_exact_2x2",
    "log_gamma",
    "lower_regularized",
    "upper_regularized",
    "g_statistic",
]
