"""Regularized incomplete gamma functions.

The chi-squared distribution function is a regularized incomplete gamma
function: ``P(k/2, x/2)``.  We implement ``P`` and ``Q`` from scratch
(series expansion for ``x < a + 1``, Lentz continued fraction otherwise)
so that the library has no hard runtime dependency on scipy; the test
suite cross-checks every value against ``scipy.special`` when scipy is
installed.

The algorithms follow the classical presentations (Abramowitz & Stegun
§6.5; Numerical Recipes §6.2) and are accurate to ~1e-12 over the ranges
a data miner will ever see (degrees of freedom up to millions, statistics
up to ~1e9).
"""

from __future__ import annotations

import math

__all__ = ["lower_regularized", "upper_regularized", "log_gamma"]

# Convergence controls shared by the series and the continued fraction.
_MAX_ITERATIONS = 10_000
_EPSILON = 1e-15
_TINY = 1e-300


def log_gamma(a: float) -> float:
    """Natural log of the gamma function for ``a > 0``.

    Thin wrapper over :func:`math.lgamma` kept as a named seam so the
    stats package has a single gamma entry point.
    """
    if a <= 0:
        raise ValueError(f"log_gamma requires a > 0, got {a}")
    return math.lgamma(a)


def _lower_series(a: float, x: float) -> float:
    """P(a, x) by the power series, valid and fast for x < a + 1."""
    term = 1.0 / a
    total = term
    denominator = a
    for _ in range(_MAX_ITERATIONS):
        denominator += 1.0
        term *= x / denominator
        total += term
        if abs(term) < abs(total) * _EPSILON:
            break
    else:
        raise ArithmeticError(f"incomplete gamma series failed to converge (a={a}, x={x})")
    log_prefactor = -x + a * math.log(x) - log_gamma(a)
    return total * math.exp(log_prefactor)


def _upper_continued_fraction(a: float, x: float) -> float:
    """Q(a, x) by the Lentz continued fraction, valid for x >= a + 1."""
    b = x + 1.0 - a
    c = 1.0 / _TINY
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITERATIONS + 1):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < _TINY:
            d = _TINY
        c = b + an / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPSILON:
            break
    else:
        raise ArithmeticError(
            f"incomplete gamma continued fraction failed to converge (a={a}, x={x})"
        )
    log_prefactor = -x + a * math.log(x) - log_gamma(a)
    return math.exp(log_prefactor) * h


def lower_regularized(a: float, x: float) -> float:
    """The regularized lower incomplete gamma function P(a, x).

    ``P(a, x) = gamma(a, x) / Gamma(a)``; this is the CDF of a Gamma(a, 1)
    random variable evaluated at ``x``.
    """
    if a <= 0:
        raise ValueError(f"shape parameter must be positive, got a={a}")
    if x < 0:
        raise ValueError(f"argument must be non-negative, got x={x}")
    if x == 0:
        return 0.0
    if x < a + 1.0:
        return _lower_series(a, x)
    return 1.0 - _upper_continued_fraction(a, x)


def upper_regularized(a: float, x: float) -> float:
    """The regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).

    Computed directly by continued fraction when ``x >= a + 1`` so tail
    probabilities keep full relative precision (important for the extreme
    chi-squared statistics the census data produces, where ``1 - P``
    would round to 0).
    """
    if a <= 0:
        raise ValueError(f"shape parameter must be positive, got a={a}")
    if x < 0:
        raise ValueError(f"argument must be non-negative, got x={x}")
    if x == 0:
        return 1.0
    if x < a + 1.0:
        return 1.0 - _lower_series(a, x)
    return _upper_continued_fraction(a, x)
