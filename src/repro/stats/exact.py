"""Exact and Monte-Carlo independence tests for k-way tables (§3.3).

Section 3.3: the chi-squared approximation "breaks down when the
expected values are small.  The solution to this problem is to use an
exact calculation for the probability ... The establishment of such a
formula is still, unfortunately, a research problem in the statistics
community, and more accurate approximations are prohibitively
expensive."

Two answers, both classical by now:

* For 2x2 tables, :func:`repro.stats.fisher.fisher_exact_2x2` is the
  exact conditional test.
* For general k-way binary tables, :func:`permutation_p_value`
  estimates the exact conditional p-value by **Monte Carlo**: simulate
  tables with the observed single-item margins under independence and
  report the fraction whose chi-squared statistic reaches the observed
  one.  The estimate converges to the exact unconditional p-value at
  ``O(1/sqrt(rounds))`` and is valid at any cell expectation, rare
  events included — the case §3.3 rules chi-squared out of.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.contingency import ContingencyTable
from repro.core.correlation import chi_squared
from repro.core.itemsets import Itemset

__all__ = ["PermutationResult", "permutation_p_value"]


@dataclass(frozen=True, slots=True)
class PermutationResult:
    """Monte-Carlo estimate of an exact independence p-value.

    Attributes:
        observed_statistic: chi-squared of the real table.
        p_value: (1 + #{simulated >= observed}) / (1 + rounds) — the
            add-one estimator, unbiased against zero p-values.
        rounds: number of simulated tables.
        standard_error: binomial standard error of the estimate.
    """

    observed_statistic: float
    p_value: float
    rounds: int

    @property
    def standard_error(self) -> float:
        import math

        return math.sqrt(self.p_value * (1.0 - self.p_value) / self.rounds)


def _simulate_statistic(
    rng: random.Random, n: int, probabilities: tuple[float, ...], itemset: Itemset
) -> float:
    """Chi-squared of one table sampled under full independence."""
    k = len(probabilities)
    counts: dict[int, int] = {}
    # Sample each basket's pattern as k independent Bernoullis.  The
    # cell distribution is multinomial over 2^k cells; building it per
    # basket keeps memory at O(occupied).
    for _ in range(n):
        cell = 0
        for j in range(k):
            if rng.random() < probabilities[j]:
                cell |= 1 << j
        counts[cell] = counts.get(cell, 0) + 1
    table = ContingencyTable(itemset, counts, n=n)
    return chi_squared(table)


def permutation_p_value(
    table: ContingencyTable,
    rounds: int = 1000,
    seed: int = 0,
) -> PermutationResult:
    """Monte-Carlo exact test of independence for a binary k-way table.

    Simulates ``rounds`` tables with the observed item probabilities and
    the same ``n``, and counts how often the simulated chi-squared
    statistic reaches the observed one.  Usable where §3.3 forbids the
    chi-squared approximation (tiny expected counts); costs
    ``O(rounds * n * k)``.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    n = table.n
    if n != int(n):
        raise ValueError("the permutation test needs integer basket counts")
    observed = chi_squared(table)
    probabilities = table.marginal_probabilities()
    rng = random.Random(seed)
    at_least = 0
    for _ in range(rounds):
        simulated = _simulate_statistic(rng, int(n), probabilities, table.itemset)
        if simulated >= observed - 1e-12:
            at_least += 1
    p_value = (1.0 + at_least) / (1.0 + rounds)
    return PermutationResult(
        observed_statistic=observed, p_value=p_value, rounds=rounds
    )
