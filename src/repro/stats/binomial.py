"""Binomial machinery behind the chi-squared statistic (Appendix A).

The appendix grounds the chi-squared test in the classical chain:
a Bernoulli count ``X ~ Binomial(N, p)`` is asymptotically normal
(de Moivre [21], Laplace [19]), the standardised variable
``z = (X - Np) / sqrt(Np(1-p))`` is standard normal, and its square

    z^2 = (X1 - E[X1])^2 / E[X1] + (X0 - E[X0])^2 / E[X0]

is exactly the one-degree-of-freedom chi-squared statistic of the
success/failure table.  This module provides those pieces — binomial
pmf/cdf, the normal distribution, the de Moivre-Laplace approximation,
and the squared-z identity — so the library's statistical claims are
testable from first principles rather than taken on faith.
"""

from __future__ import annotations

import math

__all__ = [
    "binomial_pmf",
    "binomial_cdf",
    "normal_pdf",
    "normal_cdf",
    "de_moivre_laplace_pmf",
    "standardized_count",
    "chi_squared_from_binomial",
]


def _validate_binomial(n: int, p: float, k: int | None = None) -> None:
    if n < 0:
        raise ValueError(f"number of trials must be non-negative, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"success probability must be in [0, 1], got {p}")
    if k is not None and not 0 <= k <= n:
        raise ValueError(f"count must be in [0, {n}], got {k}")


def binomial_pmf(k: int, n: int, p: float) -> float:
    """P[X = k] for X ~ Binomial(n, p), computed in log space."""
    _validate_binomial(n, p, k)
    if p == 0.0:
        return 1.0 if k == 0 else 0.0
    if p == 1.0:
        return 1.0 if k == n else 0.0
    log_pmf = (
        math.lgamma(n + 1)
        - math.lgamma(k + 1)
        - math.lgamma(n - k + 1)
        + k * math.log(p)
        + (n - k) * math.log1p(-p)
    )
    return math.exp(log_pmf)


def binomial_cdf(k: int, n: int, p: float) -> float:
    """P[X <= k] for X ~ Binomial(n, p) by direct summation.

    Intended for the moderate ``n`` of statistical validation; the
    summation is exact to double precision, not fast.
    """
    _validate_binomial(n, p)
    if k < 0:
        return 0.0
    if k >= n:
        return 1.0
    return min(1.0, sum(binomial_pmf(i, n, p) for i in range(k + 1)))


def normal_pdf(x: float, mean: float = 0.0, deviation: float = 1.0) -> float:
    """Density of the normal distribution."""
    if deviation <= 0:
        raise ValueError(f"deviation must be positive, got {deviation}")
    z = (x - mean) / deviation
    return math.exp(-0.5 * z * z) / (deviation * math.sqrt(2.0 * math.pi))


def normal_cdf(x: float, mean: float = 0.0, deviation: float = 1.0) -> float:
    """P[X <= x] for a normal variable, via the error function."""
    if deviation <= 0:
        raise ValueError(f"deviation must be positive, got {deviation}")
    return 0.5 * (1.0 + math.erf((x - mean) / (deviation * math.sqrt(2.0))))


def de_moivre_laplace_pmf(k: int, n: int, p: float) -> float:
    """The normal approximation to the binomial pmf (with continuity).

    ``P[X = k] ~ Phi(k + 1/2) - Phi(k - 1/2)`` for the normal with the
    binomial's mean and variance — the approximation Appendix A cites as
    the foundation of the chi-squared statistic, and whose breakdown at
    small expectations is exactly §3.3's warning.
    """
    _validate_binomial(n, p, k)
    if p in (0.0, 1.0):
        return binomial_pmf(k, n, p)
    mean = n * p
    deviation = math.sqrt(n * p * (1.0 - p))
    return normal_cdf(k + 0.5, mean, deviation) - normal_cdf(k - 0.5, mean, deviation)


def standardized_count(successes: int, n: int, p: float) -> float:
    """z = (X - Np) / sqrt(Np(1-p)) — asymptotically standard normal."""
    _validate_binomial(n, p, successes)
    variance = n * p * (1.0 - p)
    if variance == 0.0:
        raise ValueError("degenerate distribution (p is 0 or 1) has no z-score")
    return (successes - n * p) / math.sqrt(variance)


def chi_squared_from_binomial(successes: int, n: int, p: float) -> float:
    """The Appendix A identity: z^2 written as the two-cell chi-squared sum.

    Returns ``(X1 - Np)^2/(Np) + (X0 - N(1-p))^2/(N(1-p))``, which
    equals ``standardized_count(...)**2`` exactly — the bridge between
    the normal theory and the contingency-table statistic.
    """
    _validate_binomial(n, p, successes)
    expected_success = n * p
    expected_failure = n * (1.0 - p)
    if expected_success == 0.0 or expected_failure == 0.0:
        raise ValueError("degenerate distribution (p is 0 or 1)")
    failures = n - successes
    return (
        (successes - expected_success) ** 2 / expected_success
        + (failures - expected_failure) ** 2 / expected_failure
    )
