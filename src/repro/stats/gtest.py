"""The likelihood-ratio G-test for independence.

An alternative to Pearson's chi-squared with the same null distribution
(chi-squared with the same degrees of freedom) but better behaviour when
cell counts are moderate.  The paper's framework is parameterised by "a
measure that is upward closed"; the G statistic shares the additivity
that drives Theorem 1's closure argument, so the miner can swap it in
via the ``statistic`` hook.

``G = 2 * sum_r O(r) * ln(O(r) / E[r])`` over cells with ``O(r) > 0``.
Like the paper's sparse chi-squared evaluation, the sum naturally skips
empty cells, so it is ``O(min(n, 2^k))`` per table.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

__all__ = ["g_statistic"]


def g_statistic(cells: Iterable[tuple[float, float]]) -> float:
    """Compute the G statistic from ``(observed, expected)`` pairs.

    Pairs with ``observed == 0`` contribute nothing and may be omitted
    (the sparse representation does omit them).  Expected values must be
    positive for any cell with a positive observed count.
    """
    total = 0.0
    for observed, expected in cells:
        if observed < 0:
            raise ValueError(f"observed count must be non-negative, got {observed}")
        if observed == 0:
            continue
        if expected <= 0:
            raise ValueError(
                f"expected value must be positive where observed > 0, got {expected}"
            )
        total += observed * math.log(observed / expected)
    return 2.0 * total
