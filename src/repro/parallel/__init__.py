"""Sharded parallel counting (`repro.parallel`).

The scaling subsystem for the counting layer: row-shard a basket
database, count per-shard contingency cells across worker processes,
merge by the shard-sum identity, and memoise finished tables in a
bounded LRU cache.  :class:`ParallelCountingEngine` is the entry point;
the chi-squared-support miner reaches it through
``counting="parallel"``.
"""

from repro.parallel.cache import TableCache
from repro.parallel.engine import CountingError, ParallelCountingEngine
from repro.parallel.sharding import Shard, merge_shard_counts, shard_database

__all__ = [
    "CountingError",
    "ParallelCountingEngine",
    "Shard",
    "TableCache",
    "merge_shard_counts",
    "shard_database",
]
