"""Zero-copy shared-memory transport for the packed bitmap index.

The pickle path ships every shard's basket tuples to each worker at
pool-init time — O(database) bytes serialised per worker, then each
worker re-packs its own bitmaps.  This module replaces that with one
copy total: the parent materialises the database's
:class:`~repro.kernels.packed.PackedBitmapIndex` into a
``multiprocessing.shared_memory`` segment, and workers attach by name
and build NumPy views over the shared buffer.  A worker's shard is then
nothing but a *word range* — because shard boundaries fall on 64-basket
word boundaries, a shard-local index is a zero-copy column slice
``packed[:, w0:w1]`` of the shared matrix, and the shard-merge identity
(cell counts sum over row shards) holds exactly as for pickled shards.

Ownership and cleanup: the parent-side :class:`SharedPackedIndex` is
the sole owner of the segment.  It unlinks in :meth:`close` (idempotent,
called from the engine's ``close()``/``__exit__`` and from the engine's
pool-failure path, so crash and timeout recovery release the segment),
and registers an ``atexit`` backstop for interpreter exit with the
engine still open.  Workers deliberately *unregister* their attachment
from ``multiprocessing.resource_tracker``: Python's tracker registers
shared memory on attach as well as create, and a tracked worker exit
would otherwise unlink the segment out from under its siblings.

Everything here degrades gracefully: when NumPy is missing the engine
never asks for this module, and any failure to create the segment makes
the engine fall back to the pickle path (``pool_events{kind=
"shm_unavailable"}``).
"""

from __future__ import annotations

import atexit
from collections.abc import Sequence
from multiprocessing import resource_tracker, shared_memory
from typing import NamedTuple

from repro.kernels.autotune import KernelDispatcher
from repro.kernels.packed import HAS_NUMPY, PackedBitmapIndex, popcount

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised in minimal installs
    np = None  # type: ignore[assignment]

__all__ = [
    "PackedShard",
    "SharedIndexSpec",
    "SharedPackedIndex",
    "shard_shared_index",
]


class SharedIndexSpec(NamedTuple):
    """The picklable coordinates of a shared packed index.

    Everything a worker needs to rebuild a view: the segment name plus
    the matrix shape.  The dtype is always ``uint64`` (the packed word
    format) and the per-item counts are recomputed per shard slice, so
    they never travel.
    """

    name: str
    n_items: int
    n_words: int
    n_baskets: int


class SharedPackedIndex:
    """Parent-side owner of a packed index in a shared-memory segment.

    Copies ``index.packed`` into a freshly created segment once;
    :attr:`spec` is what travels to workers.  The owner is a context
    manager and :meth:`close` is idempotent — close + unlink exactly
    once, with an ``atexit`` backstop for paths that never reach a
    ``finally``.
    """

    def __init__(self, index: PackedBitmapIndex) -> None:
        if not HAS_NUMPY:
            raise RuntimeError("shared-memory counting requires numpy")
        packed = index.packed
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, packed.nbytes)
        )
        try:
            view = np.ndarray(packed.shape, dtype=np.uint64, buffer=self._shm.buf)
            view[:] = packed
            del view
            self.spec = SharedIndexSpec(
                self._shm.name, packed.shape[0], packed.shape[1], index.n_baskets
            )
        except BaseException:
            self._shm.close()
            self._shm.unlink()
            raise
        self._closed = False
        atexit.register(self.close)

    @property
    def name(self) -> str:
        """The shared-memory segment name workers attach to."""
        return self.spec.name

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        try:
            self._shm.close()
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # replint: disable=RPR006 -- unlink racing another cleanup path (atexit vs close) is benign; the segment is already gone
                pass

    def __enter__(self) -> "SharedPackedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"SharedPackedIndex(name={self.spec.name!r}, {state})"


# Worker-side attachment caches: one segment handle per name, one
# shard-local index per (name, word range).  Process-lifetime state —
# the OS reclaims the mappings when the worker exits; the parent owns
# the segment itself.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}
_LOCAL_INDEXES: dict[tuple[str, int, int], PackedBitmapIndex] = {}

# Per-worker kernel dispatchers, one per dispatch mode, so each worker
# learns from its own shard timings.
_DISPATCHERS: dict[str, KernelDispatcher] = {}


def _worker_dispatcher(mode: str, metrics=None) -> KernelDispatcher:
    """The worker's cached dispatcher, pointed at this task's registry.

    Workers are single-threaded, so rebinding ``metrics`` per task is
    race-free: each counting task hands in its own fresh registry (see
    ``repro.parallel.engine._count_task``), records its autotune
    decisions there, and ships the snapshot back with its results.  The
    learned unit costs live on the cached dispatcher and keep
    accumulating across tasks regardless of which registry is bound.
    """
    dispatcher = _DISPATCHERS.get(mode)
    if dispatcher is None:
        dispatcher = _DISPATCHERS[mode] = KernelDispatcher(mode=mode)
    dispatcher.metrics = metrics
    return dispatcher


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering as its owner.

    Python (< 3.13) registers shared memory with the resource tracker on
    *attach* as well as create, so an attaching worker's exit would
    unlink the segment out from under the parent and its siblings.
    Python 3.13 grew ``track=False`` for exactly this; on older versions
    the registration is suppressed for the duration of the attach (the
    worker is single-threaded at attach time, so this is race-free).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Python < 3.13 has no track= parameter: suppress the tracker's
        # register for the duration of the attach instead.
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _attached_index(
    spec: SharedIndexSpec, word_start: int, word_stop: int, n_local: int
) -> PackedBitmapIndex:
    """A shard-local index over a zero-copy slice of the shared matrix."""
    key = (spec.name, word_start, word_stop)
    cached = _LOCAL_INDEXES.get(key)
    if cached is not None:
        return cached
    handle = _ATTACHED.get(spec.name)
    if handle is None:
        handle = _attach_untracked(spec.name)
        _ATTACHED[spec.name] = handle
    full = np.ndarray(
        (spec.n_items, spec.n_words), dtype=np.uint64, buffer=handle.buf
    )
    local = full[:, word_start:word_stop]
    counts = popcount(local).sum(axis=1, dtype=np.int64)
    index = PackedBitmapIndex(local, counts, n_local)
    _LOCAL_INDEXES[key] = index
    return index


class PackedShard:
    """A word-aligned shard of a shared packed index.

    Duck-types :class:`repro.parallel.sharding.Shard` for the engine —
    same ``index``/``start``/``n_baskets``/``count_cells`` surface —
    but its pickled form is just the :class:`SharedIndexSpec` plus a
    word range: attaching workers never receive basket data at all.
    Counting runs :func:`repro.kernels.count_cells_batch_packed` over
    the shard's column slice with a worker-local dispatcher, so the
    blocked/Möbius/scan routing happens per shard exactly as it does
    serially.

    ``kernel`` here is a dispatch mode (``"auto"`` or a forced kernel
    name); ``fault`` is the same failure-injection hook as on
    :class:`Shard` so the resilience tests cover this path too.
    """

    __slots__ = (
        "index",
        "spec",
        "word_start",
        "word_stop",
        "start",
        "_n_baskets",
        "kernel",
        "fault",
        "_local",
    )

    def __init__(
        self,
        index: int,
        spec: SharedIndexSpec,
        word_start: int,
        word_stop: int,
        kernel: str = "auto",
        fault: str | None = None,
    ) -> None:
        self.index = index
        self.spec = spec
        self.word_start = word_start
        self.word_stop = word_stop
        self.start = word_start * 64
        self._n_baskets = max(
            0, min(spec.n_baskets, word_stop * 64) - self.start
        )
        self.kernel = kernel
        self.fault = fault
        self._local: PackedBitmapIndex | None = None

    # -- pickling (exclude the attached local index) --------------------------

    def __getstate__(self) -> tuple:
        return (
            self.index,
            self.spec,
            self.word_start,
            self.word_stop,
            self.kernel,
            self.fault,
        )

    def __setstate__(self, state: tuple) -> None:
        index, spec, word_start, word_stop, kernel, fault = state
        self.__init__(index, spec, word_start, word_stop, kernel, fault)

    # -- counting -------------------------------------------------------------

    @property
    def n_baskets(self) -> int:
        """Number of baskets covered by this shard's word range."""
        return self._n_baskets

    def local_index(self) -> PackedBitmapIndex:
        """The shard's zero-copy index slice (attached once per worker)."""
        if self._local is None:
            self._local = _attached_index(
                self.spec, self.word_start, self.word_stop, self._n_baskets
            )
        return self._local

    def count_cells(
        self, candidates: Sequence[tuple[int, ...]], metrics=None
    ) -> list[dict[int, int]]:
        """Sparse shard-local cell counts, one dict per candidate.

        ``metrics`` (a :class:`repro.obs.MetricsRegistry`) receives the
        worker-side ``kernel_dispatch``/``kernel_autotune`` counters for
        this task; the caller ships its snapshot back to the parent.
        """
        if self.fault == "crash":
            raise RuntimeError(f"injected crash in shard {self.index}")
        if self.fault == "hang":  # pragma: no cover - timing-dependent
            import time

            time.sleep(30.0)
        from repro.kernels import count_cells_batch_packed

        mode = self.kernel if self.kernel in ("blocked", "moebius", "scan") else "auto"
        record = None
        if metrics is not None:
            def record(path: str, n: int) -> None:
                metrics.counter("kernel_dispatch", path=path).inc(n)
        return count_cells_batch_packed(
            self.local_index(),
            candidates,
            dispatcher=_worker_dispatcher(mode, metrics=metrics),
            record=record,
        )

    def __repr__(self) -> str:
        return (
            f"PackedShard(index={self.index}, words=[{self.word_start}, "
            f"{self.word_stop}), baskets={self._n_baskets})"
        )


def shard_shared_index(
    shared: SharedPackedIndex, n_shards: int, kernel: str = "auto"
) -> list[PackedShard]:
    """Partition a shared index into word-aligned column shards.

    Word ranges differ by at most one word, never overlap, and cover
    ``[0, n_words)`` in order — the same determinism contract as
    :func:`repro.parallel.sharding.shard_database`, with boundaries
    rounded to 64-basket words so every shard is a zero-copy slice.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    spec = shared.spec
    n_words = spec.n_words
    n_shards = min(n_shards, max(n_words, 1))
    base, extra = divmod(n_words, n_shards)
    shards: list[PackedShard] = []
    word = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        shards.append(
            PackedShard(index, spec, word, word + size, kernel=kernel)
        )
        word += size
    return shards
