"""The sharded parallel counting engine.

:class:`ParallelCountingEngine` is the scaling layer between a
:class:`~repro.data.basket.BasketDatabase` and anything that needs
contingency tables — the chi-squared-support miner's
``counting="parallel"`` backend, rule ranking, interactive probes.  It
has four moving parts:

1. **Sharding** — the database is partitioned once into contiguous row
   shards, in one of two transports: **shared memory**
   (:mod:`repro.parallel.shm`; the default whenever NumPy is present),
   where the packed bitmap matrix lives in one
   ``multiprocessing.shared_memory`` segment and each shard is a
   zero-copy word-aligned column slice workers attach to by name, or
   **pickle** (:mod:`repro.parallel.sharding`), where each shard's
   basket tuples ship to workers at pool-init time — the pure-Python
   fallback.  Either way each shard counts cells on its own with the
   kernel the ``kernel`` knob selects.
2. **A worker pool** — created once and reused across every
   ``count_tables()`` call (and across successive ``mine()`` runs when
   the engine is injected into the miner); a counting batch fans one
   task per shard out and merges the returned sparse dicts, exploiting
   that any cell count is a sum over shards.
3. **Adaptive dispatch** — parallelism has real dispatch cost, so the
   engine only fans out when it can pay off: batches below
   ``min_parallel_batch`` run serially, as does everything when fewer
   than two effective workers exist (``workers`` capped by CPU count),
   and observed per-itemset serial vs parallel timings steer later
   batches toward whichever mode is measured faster (with periodic
   re-probes).  ``min_parallel_batch=0`` forces the pool path — the
   failure-injection tests rely on that.
4. **A bounded LRU table cache** (`repro.parallel.cache`) keyed by
   itemset, so repeated probes skip recounting entirely.  Batches
   larger than the cache bypass it wholesale instead of churning
   evictions.

Failure semantics: a crashed worker or a task outliving ``task_timeout``
raises :class:`CountingError` (never hangs).  With ``fallback_serial``
(the default) the engine logs the failure, permanently degrades to the
serial path, and still returns exact results; with it disabled the error
propagates to the caller.  In every failure path — and on ``close()``,
``__exit__``, and interpreter ``atexit`` — the shared-memory segment is
released and unlinked exactly once.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from collections.abc import Iterable, Sequence

from repro.core.contingency import ContingencyTable, count_cells
from repro.core.itemsets import Itemset
from repro.data.basket import BasketDatabase
from repro.kernels.autotune import DISPATCH_MODES, KernelDispatcher
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.parallel.cache import TableCache
from repro.parallel.sharding import merge_shard_counts, shard_database

__all__ = ["CountingError", "DEFAULT_MIN_PARALLEL_BATCH", "ParallelCountingEngine"]

logger = logging.getLogger("repro.parallel")

# Smallest batch worth a trip through the worker pool when the caller
# leaves min_parallel_batch adaptive: below this, per-task dispatch and
# result pickling dominate any conceivable counting speedup.
DEFAULT_MIN_PARALLEL_BATCH = 64

# With adaptive dispatch settled on serial, retry the pool every Nth
# batch so a transiently slow pool can win back the work.
_REPROBE_EVERY = 8

# Kernel names the engine (and both shard types) accept: the classic
# pair plus the forced dispatcher modes of repro.kernels.autotune.
_KERNELS = ("auto", "bitmap", "vectorized") + tuple(
    mode for mode in DISPATCH_MODES if mode != "auto"
)

# Itemsets wider than this cannot ride the packed shared-memory shards
# (cell ids overflow int64); such batches run serially over the database.
_MAX_PACKED_ITEMS = 63


class CountingError(RuntimeError):
    """A parallel counting batch failed (worker crash, timeout, broken pool)."""


# Worker-side state: the shard list arrives once via the pool initializer
# so per-batch messages carry only a shard index and the candidate tuples.
_WORKER_SHARDS: list = []


def _init_worker(shards: list) -> None:
    global _WORKER_SHARDS
    _WORKER_SHARDS = shards


def _count_task(shard_index: int, candidates: Sequence[tuple[int, ...]]):
    """Count one shard's cells and ship a worker metrics snapshot back.

    Each task records into a fresh worker-local registry — what the
    shard's kernels dispatched (``kernel_dispatch``), the autotuner's
    decisions (``kernel_autotune``), and its own bookkeeping
    (``worker_tasks``, ``worker_itemsets``) — and returns its snapshot
    alongside the counts so the parent can fold it into the run's
    registry (:meth:`repro.obs.MetricsRegistry.merge`).  Registries do
    not cross process boundaries; snapshots do.
    """
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("worker_tasks").inc()
    registry.counter("worker_itemsets").inc(len(candidates))
    counts = _WORKER_SHARDS[shard_index].count_cells(candidates, metrics=registry)
    return counts, registry.snapshot()


class ParallelCountingEngine:
    """Sharded, cached contingency-table counting over one database.

    Parameters:
        db: the database to count over (immutable for the engine's life).
        workers: worker processes; ``None`` means ``os.cpu_count()``.
            ``1`` selects the deterministic in-process serial path.
        n_shards: row shards; defaults to ``workers`` (capped at the
            basket count).  More shards than workers smooths load
            imbalance at the cost of more merge work.
        cache_size: LRU capacity in tables; ``0`` disables caching.
        task_timeout: seconds a single batch may take before the engine
            declares the pool poisoned; ``None`` waits forever.
        fallback_serial: on pool failure, degrade to serial counting
            instead of raising :class:`CountingError`.
        mp_context: a ``multiprocessing`` context (or start-method name)
            to use instead of the default (``fork`` where available).
        kernel: the counting kernel each shard (and the serial path)
            runs — ``"bitmap"`` for the pure-Python big-int kernels,
            ``"vectorized"`` for the NumPy packed-bitmap kernels with
            autotuned dispatch, one of ``"blocked"``/``"moebius"``/
            ``"scan"`` to force that vectorized kernel everywhere it is
            legal, or ``"auto"`` (default) for
            vectorized-when-NumPy-imports.  Every kernel produces
            bit-identical tables.
        shared_memory: ``"auto"`` (default) ships shards as zero-copy
            shared-memory slices whenever NumPy is present and the
            kernel is vectorized, falling back to pickled shards
            otherwise; ``"on"`` requires shared memory (raises without
            NumPy); ``"off"`` always pickles.  Booleans are accepted as
            aliases for on/off.
        min_parallel_batch: smallest batch dispatched to the pool.
            ``None`` (default) is adaptive: a built-in floor of
            ``DEFAULT_MIN_PARALLEL_BATCH`` plus measured serial-versus-
            parallel steering; ``0`` forces every batch through the
            pool (tests and benchmarks); any other value replaces the
            floor.
        telemetry: a :class:`repro.obs.Telemetry` bundle; when given,
            the engine records per-batch spans and timing histograms
            (``count_batch_seconds{mode=...}``, per-shard
            ``shard_task_seconds``), worker-pool event counters
            (``pool_events{kind=...}``), kernel autotuner decisions
            (``kernel_autotune{...}``), and cache counters.  Defaults
            to the no-op bundle.  Only the parent process records —
            worker processes run un-instrumented.

    >>> db = BasketDatabase.from_baskets([["a", "b"]] * 3 + [["a"]] * 2 + [[]] * 5)
    >>> with ParallelCountingEngine(db, workers=1) as engine:
    ...     table = engine.table_for(Itemset([0, 1]))
    >>> dict(table.nonzero_counts()) == {0b11: 3, 0b01: 2, 0b00: 5}
    True
    """

    def __init__(
        self,
        db: BasketDatabase,
        workers: int | None = None,
        n_shards: int | None = None,
        cache_size: int = 256,
        task_timeout: float | None = 120.0,
        fallback_serial: bool = True,
        mp_context=None,
        kernel: str = "auto",
        shared_memory: str | bool = "auto",
        min_parallel_batch: int | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if workers is None:
            workers = multiprocessing.cpu_count()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if n_shards is not None and n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {task_timeout}")
        if kernel not in _KERNELS:
            raise ValueError(f"unknown counting kernel {kernel!r}")
        if isinstance(shared_memory, bool):
            shared_memory = "on" if shared_memory else "off"
        if shared_memory not in ("auto", "on", "off"):
            raise ValueError(
                f"shared_memory must be 'auto', 'on', or 'off', got {shared_memory!r}"
            )
        if min_parallel_batch is not None and min_parallel_batch < 0:
            raise ValueError(
                f"min_parallel_batch must be >= 0, got {min_parallel_batch}"
            )
        self.db = db
        self.workers = workers
        self.kernel = kernel
        self.shared_memory = shared_memory
        self.min_parallel_batch = min_parallel_batch
        self.task_timeout = task_timeout
        self.fallback_serial = fallback_serial
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.cache = TableCache(cache_size, metrics=self.telemetry.metrics)
        self._mp_context = mp_context
        self._shards: list | None = None
        self._n_shards = n_shards if n_shards is not None else workers
        self._pool = None
        self._pool_broken = False
        self._shared_index = None
        self.degraded = False
        # The parent-side kernel dispatcher: serial batches run through
        # it, so its cost model learns across every level of a mine.
        # It shares the telemetry clock so learned choices are
        # deterministic under a FakeClock.
        self.dispatcher = KernelDispatcher(
            mode=self._dispatch_mode(),
            metrics=self.telemetry.metrics,
            clock=self.telemetry.clock,
        )
        # Measured seconds-per-itemset by mode, steering adaptive dispatch.
        self._mode_unit: dict[str, float | None] = {"serial": None, "parallel": None}
        self._settled_serial = 0
        if shared_memory == "on" and not self._kernel_is_vectorized():
            raise ValueError(
                "shared_memory='on' requires NumPy and a vectorized kernel"
            )
        # Observability counters for benchmarks and the CLI.
        self.tasks_dispatched = 0
        self.parallel_batches = 0
        self.serial_batches = 0
        self.fallbacks = 0

    # -- lifecycle ------------------------------------------------------------

    def _dispatch_mode(self) -> str:
        return self.kernel if self.kernel in DISPATCH_MODES else "auto"

    def _kernel_is_vectorized(self) -> bool:
        """Whether the resolved kernel family is the NumPy one."""
        if self.kernel == "bitmap":
            return False
        from repro.kernels import HAS_NUMPY

        return HAS_NUMPY

    @property
    def shards(self) -> list:
        """The shards (built lazily, before any pool exists).

        Shared-memory slices when the transport allows it, pickled row
        shards otherwise; creation failures fall back to pickling with
        a ``pool_events{kind="shm_unavailable"}`` counter (unless
        ``shared_memory="on"``, which propagates the error).
        """
        if self._shards is None:
            if self._use_shared_memory():
                try:
                    self._shards = self._build_shared_shards()
                except Exception as error:
                    if self.shared_memory == "on":
                        raise
                    logger.warning(
                        "shared-memory shards unavailable (%s); pickling shards",
                        error,
                    )
                    self.telemetry.metrics.counter(
                        "pool_events", kind="shm_unavailable"
                    ).inc()
                    self._close_shared_index()
            if self._shards is None:
                self._shards = shard_database(
                    self.db, self._n_shards, kernel=self.kernel
                )
        return self._shards

    def _use_shared_memory(self) -> bool:
        if self.shared_memory == "off":
            return False
        return self._kernel_is_vectorized()

    def _build_shared_shards(self) -> list:
        from repro.parallel import shm

        self._shared_index = shm.SharedPackedIndex(self.db.packed_index())
        shards = shm.shard_shared_index(
            self._shared_index, self._n_shards, kernel=self.kernel
        )
        self.telemetry.metrics.counter("pool_events", kind="shm_created").inc()
        return shards

    def _close_shared_index(self) -> None:
        if self._shared_index is not None:
            self._shared_index.close()
            self._shared_index = None

    def _context(self):
        if self._mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            return multiprocessing.get_context("fork" if "fork" in methods else None)
        if isinstance(self._mp_context, str):
            return multiprocessing.get_context(self._mp_context)
        return self._mp_context

    def _ensure_pool(self):
        """The worker pool, created on first use; ``None`` if unusable."""
        if self._pool is not None:
            return self._pool
        if self._pool_broken:
            return None
        try:
            context = self._context()
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(self.shards,),
            )
            self.telemetry.metrics.counter("pool_events", kind="pool_created").inc()
        except Exception as error:  # pool creation can fail in sandboxes
            logger.warning("worker pool unavailable (%s); using serial counting", error)
            self.telemetry.metrics.counter("pool_events", kind="pool_unavailable").inc()
            self._pool_broken = True
            self._pool = None
        return self._pool

    def _discard_pool(self) -> None:
        """Tear the pool down after a failure; the segment goes with it."""
        try:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None
        finally:
            self._pool_broken = True
            # Degraded counting is serial over the parent's own index;
            # nothing will attach to the segment again.
            self._close_shared_index()

    def close(self) -> None:
        """Shut the pool down and unlink shared memory (idempotent).

        The engine stays usable after ``close()`` — the next counting
        batch lazily rebuilds whatever it needs — so a miner borrowing
        an injected engine can be conservative about closing.
        """
        try:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None
        finally:
            self._close_shared_index()
            self._shards = None

    def __enter__(self) -> "ParallelCountingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:  # replint: disable=RPR006 -- finalizer during interpreter teardown must never raise; the pool is dying with the process anyway
            pass

    # -- counting -------------------------------------------------------------

    def table_for(self, itemset: Itemset) -> ContingencyTable:
        """The contingency table of one itemset (cache, then count)."""
        return self.count_tables([itemset])[itemset]

    def count_tables(
        self, itemsets: Iterable[Itemset]
    ) -> dict[Itemset, ContingencyTable]:
        """Contingency tables for a batch of itemsets.

        Cached tables are returned immediately; the rest are counted in
        one sharded batch (or serially — see the class docstring for the
        degradation rules) and inserted into the cache, unless the batch
        exceeds the cache capacity, in which case the cache is bypassed
        (``cache_events{kind="bypass"}``) rather than churned.  The
        returned dict preserves first-seen input order.
        """
        ordered: list[Itemset] = []
        results: dict[Itemset, ContingencyTable] = {}
        missing: list[Itemset] = []
        for itemset in itemsets:
            if itemset in results:
                continue
            ordered.append(itemset)
            cached = self.cache.get(itemset)
            if cached is not None:
                results[itemset] = cached
            else:
                missing.append(itemset)

        if missing:
            populate = len(missing) <= self.cache.capacity
            if not populate and self.cache.capacity > 0:
                self.cache.note_bypass(len(missing))
            for itemset, table in zip(missing, self._count_batch(missing)):
                if populate:
                    self.cache.put(itemset, table)
                results[itemset] = table
        return {itemset: results[itemset] for itemset in ordered}

    # -- internals ------------------------------------------------------------

    def _count_batch(self, itemsets: Sequence[Itemset]) -> list[ContingencyTable]:
        if self.workers == 1 or self._pool_broken or self.degraded:
            return self._timed_batch("serial", self._count_serial, itemsets)
        if not self._worth_parallel(itemsets):
            return self._timed_batch("serial", self._count_serial, itemsets)
        try:
            return self._timed_batch("parallel", self._count_parallel, itemsets)
        except CountingError as error:
            if not self.fallback_serial:
                raise
            logger.warning("parallel counting failed (%s); falling back to serial", error)
            self.fallbacks += 1
            self.telemetry.metrics.counter("pool_events", kind="fallback").inc()
            self.degraded = True
            return self._timed_batch("serial", self._count_serial, itemsets)

    def _worth_parallel(self, itemsets: Sequence[Itemset]) -> bool:
        """Whether fanning this batch out beats counting it in-process."""
        if self._shared_index is not None or self._use_shared_memory():
            # Packed shards cannot count past the int64 cell-id ceiling.
            if any(len(itemset) > _MAX_PACKED_ITEMS for itemset in itemsets):
                self.telemetry.metrics.counter(
                    "pool_events", kind="wide_candidates"
                ).inc()
                return False
        if self.min_parallel_batch == 0:
            return True
        effective = min(self.workers, os.cpu_count() or 1)
        if effective <= 1:
            self.telemetry.metrics.counter(
                "pool_events", kind="undersubscribed"
            ).inc()
            return False
        floor = (
            self.min_parallel_batch
            if self.min_parallel_batch is not None
            else DEFAULT_MIN_PARALLEL_BATCH
        )
        if len(itemsets) < floor:
            self.telemetry.metrics.counter("pool_events", kind="small_batch").inc()
            return False
        parallel_unit = self._mode_unit["parallel"]
        serial_unit = self._mode_unit["serial"]
        if parallel_unit is None:
            return True  # never measured: probe the pool
        if serial_unit is not None and serial_unit <= parallel_unit:
            self._settled_serial += 1
            if self._settled_serial % _REPROBE_EVERY == 0:
                return True
            self.telemetry.metrics.counter(
                "pool_events", kind="adaptive_serial"
            ).inc()
            return False
        return True

    def _timed_batch(self, mode, count, itemsets: Sequence[Itemset]) -> list[ContingencyTable]:
        """Run one counting batch under a span + duration histogram."""
        with self.telemetry.tracer.span(
            "count.batch", mode=mode, n_itemsets=len(itemsets)
        ) as batch_span:
            tables = count(itemsets)
        self.telemetry.metrics.histogram("count_batch_seconds", mode=mode).observe(
            batch_span.duration
        )
        unit = batch_span.duration / max(1, len(itemsets))
        previous = self._mode_unit.get(mode)
        self._mode_unit[mode] = (
            unit if previous is None else 0.3 * unit + 0.7 * previous
        )
        return tables

    def _count_serial(self, itemsets: Sequence[Itemset]) -> list[ContingencyTable]:
        """In-process counting over the full database (the reference path)."""
        self.serial_batches += 1
        self.telemetry.metrics.counter("pool_events", kind="serial_batch").inc()
        n = self.db.n_baskets
        if self._kernel_is_vectorized():
            from repro.kernels import count_tables_vectorized

            tables = count_tables_vectorized(
                self.db,
                itemsets,
                metrics=self.telemetry.metrics,
                dispatcher=self.dispatcher,
            )
            return [tables[itemset] for itemset in itemsets]
        return [
            ContingencyTable.from_cell_counts(itemset, count_cells(self.db, itemset), n)
            for itemset in itemsets
        ]

    def _count_parallel(self, itemsets: Sequence[Itemset]) -> list[ContingencyTable]:
        """One task per shard, merged by the shard-sum identity."""
        pool = self._ensure_pool()
        if pool is None:
            raise CountingError("worker pool could not be created")
        metrics = self.telemetry.metrics
        clock = self.telemetry.clock
        candidates = [itemset.items for itemset in itemsets]
        # Deadlines stay on the real monotonic clock on purpose: a hung
        # worker must still time out when tests inject a FakeClock.
        deadline = (
            time.monotonic() + self.task_timeout  # replint: disable=RPR013 -- pool timeouts must track real elapsed time even under an injected FakeClock
            if self.task_timeout is not None
            else None
        )
        try:
            dispatched_at = clock()
            pending = [
                pool.apply_async(_count_task, (shard.index, candidates))
                for shard in self.shards
            ]
            self.tasks_dispatched += len(pending)
            metrics.counter("pool_events", kind="task_dispatched").inc(len(pending))
            per_shard: list[list[dict[int, int]]] = []
            for shard, result in zip(self.shards, pending):
                if deadline is None:
                    counts, worker_snapshot = result.get()
                else:
                    remaining = deadline - time.monotonic()  # replint: disable=RPR013 -- pool timeouts must track real elapsed time even under an injected FakeClock
                    if remaining <= 0:
                        raise multiprocessing.TimeoutError
                    counts, worker_snapshot = result.get(timeout=remaining)
                per_shard.append(counts)
                # The task's worker-side counters (kernel_dispatch,
                # kernel_autotune, worker_*) fold into the parent
                # registry here, with matching parent-side bookkeeping
                # for Telemetry.reconcile_workers to check against.
                metrics.merge(worker_snapshot)
                metrics.counter("pool_events", kind="task_merged").inc()
                metrics.counter("worker_itemsets_expected").inc(len(candidates))
                # Per-shard wall time is the parent-side dispatch-to-
                # arrival wait (queueing included), not in-worker CPU.
                metrics.histogram("shard_task_seconds", shard=shard.index).observe(
                    clock() - dispatched_at
                )
        except multiprocessing.TimeoutError:
            self._discard_pool()
            metrics.counter("pool_events", kind="failure").inc()
            raise CountingError(
                f"counting batch exceeded task_timeout={self.task_timeout}s "
                f"(shard hung or pool starved)"
            ) from None
        except CountingError:
            raise
        except Exception as error:
            self._discard_pool()
            metrics.counter("pool_events", kind="failure").inc()
            raise CountingError(f"worker failed while counting: {error}") from error
        self.parallel_batches += 1
        metrics.counter("pool_events", kind="parallel_batch").inc()
        merged = merge_shard_counts(per_shard)
        n = self.db.n_baskets
        return [
            ContingencyTable.from_cell_counts(itemset, cells, n)
            for itemset, cells in zip(itemsets, merged)
        ]
