"""The sharded parallel counting engine.

:class:`ParallelCountingEngine` is the scaling layer between a
:class:`~repro.data.basket.BasketDatabase` and anything that needs
contingency tables — the chi-squared-support miner's
``counting="parallel"`` backend, rule ranking, interactive probes.  It
has three moving parts:

1. **Sharding** — the database is partitioned once into contiguous row
   shards (`repro.parallel.sharding`), each able to count cells for a
   batch of itemsets on its own vertical bitmaps — with either the
   pure-Python big-int kernels or the NumPy packed-bitmap kernels of
   :mod:`repro.kernels` (the ``kernel`` knob; ``"auto"`` picks
   vectorized whenever NumPy imports), so the parallel and vectorized
   backends compose.
2. **A worker pool** — shards are shipped to ``multiprocessing`` workers
   once (pool initializer) and afterwards addressed by index; a counting
   batch fans one task per shard out and merges the returned sparse
   dicts, exploiting that any cell count is a sum over shards.  With
   ``workers=1``, or whenever a pool cannot be created or misbehaves,
   counting runs in-process over the full database — the deterministic
   serial path, which produces bit-identical tables.
3. **A bounded LRU table cache** (`repro.parallel.cache`) keyed by
   itemset, so repeated probes skip recounting entirely.

Failure semantics: a crashed worker or a task outliving ``task_timeout``
raises :class:`CountingError` (never hangs).  With ``fallback_serial``
(the default) the engine logs the failure, permanently degrades to the
serial path, and still returns exact results; with it disabled the error
propagates to the caller.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
from collections.abc import Iterable, Sequence

from repro.core.contingency import ContingencyTable, count_cells
from repro.core.itemsets import Itemset
from repro.data.basket import BasketDatabase
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.parallel.cache import TableCache
from repro.parallel.sharding import (
    Shard,
    merge_shard_counts,
    resolve_kernel,
    shard_database,
)

__all__ = ["CountingError", "ParallelCountingEngine"]

logger = logging.getLogger("repro.parallel")


class CountingError(RuntimeError):
    """A parallel counting batch failed (worker crash, timeout, broken pool)."""


# Worker-side state: the shard list arrives once via the pool initializer
# so per-batch messages carry only a shard index and the candidate tuples.
_WORKER_SHARDS: list[Shard] = []


def _init_worker(shards: list[Shard]) -> None:
    global _WORKER_SHARDS
    _WORKER_SHARDS = shards


def _count_task(shard_index: int, candidates: Sequence[tuple[int, ...]]):
    return _WORKER_SHARDS[shard_index].count_cells(candidates)


class ParallelCountingEngine:
    """Sharded, cached contingency-table counting over one database.

    Parameters:
        db: the database to count over (immutable for the engine's life).
        workers: worker processes; ``None`` means ``os.cpu_count()``.
            ``1`` selects the deterministic in-process serial path.
        n_shards: row shards; defaults to ``workers`` (capped at the
            basket count).  More shards than workers smooths load
            imbalance at the cost of more merge work.
        cache_size: LRU capacity in tables; ``0`` disables caching.
        task_timeout: seconds a single batch may take before the engine
            declares the pool poisoned; ``None`` waits forever.
        fallback_serial: on pool failure, degrade to serial counting
            instead of raising :class:`CountingError`.
        mp_context: a ``multiprocessing`` context (or start-method name)
            to use instead of the default (``fork`` where available).
        kernel: the counting kernel each shard (and the serial path)
            runs — ``"bitmap"`` for the pure-Python big-int kernels,
            ``"vectorized"`` for the NumPy packed-bitmap kernels of
            :mod:`repro.kernels`, or ``"auto"`` (default) for
            vectorized-when-NumPy-imports.  This is how the parallel
            and vectorized backends compose; every kernel produces
            bit-identical tables.
        telemetry: a :class:`repro.obs.Telemetry` bundle; when given,
            the engine records per-batch spans and timing histograms
            (``count_batch_seconds{mode=...}``, per-shard
            ``shard_task_seconds``), worker-pool event counters
            (``pool_events{kind=...}``), and cache hit/miss/evict
            counters.  Defaults to the no-op bundle.  Only the parent
            process records — worker processes run un-instrumented.

    >>> db = BasketDatabase.from_baskets([["a", "b"]] * 3 + [["a"]] * 2 + [[]] * 5)
    >>> with ParallelCountingEngine(db, workers=1) as engine:
    ...     table = engine.table_for(Itemset([0, 1]))
    >>> dict(table.nonzero_counts()) == {0b11: 3, 0b01: 2, 0b00: 5}
    True
    """

    def __init__(
        self,
        db: BasketDatabase,
        workers: int | None = None,
        n_shards: int | None = None,
        cache_size: int = 256,
        task_timeout: float | None = 120.0,
        fallback_serial: bool = True,
        mp_context=None,
        kernel: str = "auto",
        telemetry: Telemetry | None = None,
    ) -> None:
        if workers is None:
            workers = multiprocessing.cpu_count()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if n_shards is not None and n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {task_timeout}")
        if kernel not in ("auto", "bitmap", "vectorized"):
            raise ValueError(f"unknown counting kernel {kernel!r}")
        self.db = db
        self.workers = workers
        self.kernel = kernel
        self.task_timeout = task_timeout
        self.fallback_serial = fallback_serial
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.cache = TableCache(cache_size, metrics=self.telemetry.metrics)
        self._mp_context = mp_context
        self._shards: list[Shard] | None = None
        self._n_shards = n_shards if n_shards is not None else workers
        self._pool = None
        self._pool_broken = False
        self.degraded = False
        # Observability counters for benchmarks and the CLI.
        self.tasks_dispatched = 0
        self.parallel_batches = 0
        self.serial_batches = 0
        self.fallbacks = 0

    # -- lifecycle ------------------------------------------------------------

    @property
    def shards(self) -> list[Shard]:
        """The row shards (built lazily, before any pool exists)."""
        if self._shards is None:
            self._shards = shard_database(self.db, self._n_shards, kernel=self.kernel)
        return self._shards

    def _context(self):
        if self._mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            return multiprocessing.get_context("fork" if "fork" in methods else None)
        if isinstance(self._mp_context, str):
            return multiprocessing.get_context(self._mp_context)
        return self._mp_context

    def _ensure_pool(self):
        """The worker pool, created on first use; ``None`` if unusable."""
        if self._pool is not None:
            return self._pool
        if self._pool_broken:
            return None
        try:
            context = self._context()
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(self.shards,),
            )
        except Exception as error:  # pool creation can fail in sandboxes
            logger.warning("worker pool unavailable (%s); using serial counting", error)
            self.telemetry.metrics.counter("pool_events", kind="pool_unavailable").inc()
            self._pool_broken = True
            self._pool = None
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._pool_broken = True

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelCountingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:  # replint: disable=RPR006 -- finalizer during interpreter teardown must never raise; the pool is dying with the process anyway
            pass

    # -- counting -------------------------------------------------------------

    def table_for(self, itemset: Itemset) -> ContingencyTable:
        """The contingency table of one itemset (cache, then count)."""
        return self.count_tables([itemset])[itemset]

    def count_tables(
        self, itemsets: Iterable[Itemset]
    ) -> dict[Itemset, ContingencyTable]:
        """Contingency tables for a batch of itemsets.

        Cached tables are returned immediately; the rest are counted in
        one sharded batch (or serially — see the class docstring for the
        degradation rules) and inserted into the cache.  The returned
        dict preserves first-seen input order.
        """
        ordered: list[Itemset] = []
        results: dict[Itemset, ContingencyTable] = {}
        missing: list[Itemset] = []
        for itemset in itemsets:
            if itemset in results:
                continue
            ordered.append(itemset)
            cached = self.cache.get(itemset)
            if cached is not None:
                results[itemset] = cached
            else:
                missing.append(itemset)

        if missing:
            for itemset, table in zip(missing, self._count_batch(missing)):
                self.cache.put(itemset, table)
                results[itemset] = table
        return {itemset: results[itemset] for itemset in ordered}

    # -- internals ------------------------------------------------------------

    def _count_batch(self, itemsets: Sequence[Itemset]) -> list[ContingencyTable]:
        if self.workers == 1 or self._pool_broken or self.degraded:
            return self._timed_batch("serial", self._count_serial, itemsets)
        try:
            return self._timed_batch("parallel", self._count_parallel, itemsets)
        except CountingError as error:
            if not self.fallback_serial:
                raise
            logger.warning("parallel counting failed (%s); falling back to serial", error)
            self.fallbacks += 1
            self.telemetry.metrics.counter("pool_events", kind="fallback").inc()
            self.degraded = True
            return self._timed_batch("serial", self._count_serial, itemsets)

    def _timed_batch(self, mode, count, itemsets: Sequence[Itemset]) -> list[ContingencyTable]:
        """Run one counting batch under a span + duration histogram."""
        with self.telemetry.tracer.span(
            "count.batch", mode=mode, n_itemsets=len(itemsets)
        ) as batch_span:
            tables = count(itemsets)
        self.telemetry.metrics.histogram("count_batch_seconds", mode=mode).observe(
            batch_span.duration
        )
        return tables

    def _count_serial(self, itemsets: Sequence[Itemset]) -> list[ContingencyTable]:
        """In-process counting over the full database (the reference path)."""
        self.serial_batches += 1
        self.telemetry.metrics.counter("pool_events", kind="serial_batch").inc()
        n = self.db.n_baskets
        if resolve_kernel(self.kernel) == "vectorized":
            from repro.kernels import count_cells_batch

            cell_batches = count_cells_batch(
                self.db, itemsets, metrics=self.telemetry.metrics
            )
            return [
                ContingencyTable.from_cell_counts(itemset, cells, n)
                for itemset, cells in zip(itemsets, cell_batches)
            ]
        return [
            ContingencyTable.from_cell_counts(itemset, count_cells(self.db, itemset), n)
            for itemset in itemsets
        ]

    def _count_parallel(self, itemsets: Sequence[Itemset]) -> list[ContingencyTable]:
        """One task per shard, merged by the shard-sum identity."""
        pool = self._ensure_pool()
        if pool is None:
            raise CountingError("worker pool could not be created")
        metrics = self.telemetry.metrics
        clock = self.telemetry.clock
        candidates = [itemset.items for itemset in itemsets]
        deadline = (
            time.monotonic() + self.task_timeout if self.task_timeout is not None else None
        )
        try:
            dispatched_at = clock()
            pending = [
                pool.apply_async(_count_task, (shard.index, candidates))
                for shard in self.shards
            ]
            self.tasks_dispatched += len(pending)
            metrics.counter("pool_events", kind="task_dispatched").inc(len(pending))
            per_shard: list[list[dict[int, int]]] = []
            for shard, result in zip(self.shards, pending):
                if deadline is None:
                    per_shard.append(result.get())
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise multiprocessing.TimeoutError
                    per_shard.append(result.get(timeout=remaining))
                # Workers run un-instrumented, so per-shard time is the
                # parent-side dispatch-to-arrival wait (queueing included).
                metrics.histogram("shard_task_seconds", shard=shard.index).observe(
                    clock() - dispatched_at
                )
        except multiprocessing.TimeoutError:
            self._discard_pool()
            metrics.counter("pool_events", kind="failure").inc()
            raise CountingError(
                f"counting batch exceeded task_timeout={self.task_timeout}s "
                f"(shard hung or pool starved)"
            ) from None
        except CountingError:
            raise
        except Exception as error:
            self._discard_pool()
            metrics.counter("pool_events", kind="failure").inc()
            raise CountingError(f"worker failed while counting: {error}") from error
        self.parallel_batches += 1
        metrics.counter("pool_events", kind="parallel_batch").inc()
        merged = merge_shard_counts(per_shard)
        n = self.db.n_baskets
        return [
            ContingencyTable.from_cell_counts(itemset, cells, n)
            for itemset, cells in zip(itemsets, merged)
        ]
