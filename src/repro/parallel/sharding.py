"""Row sharding of basket databases.

The counting layer's unit of distribution: a :class:`Shard` is a
contiguous slice of a :class:`~repro.data.basket.BasketDatabase`'s rows
that can count contingency-table cells for a batch of itemsets on its
own.  Because every cell count ``O(r)`` is a sum over baskets, it is a
sum over shards::

    O(r)  =  sum_s  O_s(r)        (the shard-merge identity)

so exact global tables are recovered by summing per-shard sparse cell
dictionaries — no approximation, no inter-shard communication.  Shards
are self-contained and picklable, which lets the engine ship them to
worker processes once (via the pool initializer) and afterwards refer to
them by index.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence

from repro.core.contingency import count_cells
from repro.core.itemsets import Itemset, ItemVocabulary
from repro.data.basket import BasketDatabase

__all__ = ["Shard", "resolve_kernel", "shard_database", "merge_shard_counts"]


# Kernel names a shard accepts: bitmap/vectorized plus the forced
# dispatcher modes of repro.kernels.autotune (which imply vectorized).
_SHARD_KERNELS = ("auto", "bitmap", "vectorized", "blocked", "moebius", "scan")


def resolve_kernel(kernel: str) -> str:
    """Resolve a counting-kernel name, mapping ``"auto"`` to the fastest.

    ``"auto"`` means the NumPy packed-bitmap kernels when NumPy is
    importable and the pure-Python big-int path otherwise — resolved at
    call time, so a worker process decides on *its* environment.  The
    forced dispatcher modes (``"blocked"``/``"moebius"``/``"scan"``)
    resolve to themselves; they are vectorized-family kernels.
    """
    if kernel == "auto":
        from repro.kernels import HAS_NUMPY

        return "vectorized" if HAS_NUMPY else "bitmap"
    return kernel


class Shard:
    """A contiguous run of baskets that counts cells independently.

    The shard lazily materialises its own :class:`BasketDatabase` (and
    thus its own per-item vertical bitmaps) on first use; the lazy
    database is dropped from the pickled state so only the raw basket
    tuples travel to worker processes.

    ``kernel`` selects the counting implementation the shard runs over
    its rows: ``"bitmap"`` is the pure-Python big-int path, and
    ``"vectorized"`` the NumPy packed-bitmap kernels of
    :mod:`repro.kernels` — this is how the parallel and vectorized
    backends compose, each worker sweeping its own shard in array form.
    ``"auto"`` (the default) resolves to vectorized when NumPy imports
    on the worker and bitmap otherwise; all three produce bit-identical
    counts.

    ``fault`` is a failure-injection hook used by the resilience tests:
    ``"crash"`` makes :meth:`count_cells` raise, ``"hang"`` makes it
    sleep far past any reasonable task timeout.  Production code never
    sets it.
    """

    __slots__ = ("index", "start", "baskets", "n_items", "kernel", "fault", "_db")

    def __init__(
        self,
        index: int,
        start: int,
        baskets: Sequence[tuple[int, ...]],
        n_items: int,
        kernel: str = "auto",
        fault: str | None = None,
    ) -> None:
        if kernel not in _SHARD_KERNELS:
            raise ValueError(f"unknown counting kernel {kernel!r}")
        self.index = index
        self.start = start
        self.baskets = tuple(baskets)
        self.n_items = n_items
        self.kernel = kernel
        self.fault = fault
        self._db: BasketDatabase | None = None

    # -- pickling (exclude the lazily built database) -------------------------

    def __getstate__(self) -> tuple:
        return (self.index, self.start, self.baskets, self.n_items, self.kernel, self.fault)

    def __setstate__(self, state: tuple) -> None:
        (
            self.index,
            self.start,
            self.baskets,
            self.n_items,
            self.kernel,
            self.fault,
        ) = state
        self._db = None

    # -- counting -------------------------------------------------------------

    @property
    def n_baskets(self) -> int:
        """Number of baskets in this shard."""
        return len(self.baskets)

    def database(self) -> BasketDatabase:
        """The shard's rows as a standalone database (built once)."""
        if self._db is None:
            vocabulary = ItemVocabulary(f"item{i}" for i in range(self.n_items))
            self._db = BasketDatabase(self.baskets, vocabulary)
        return self._db

    def count_cells(
        self, candidates: Sequence[tuple[int, ...]], metrics=None
    ) -> list[dict[int, int]]:
        """Sparse cell counts, one dict per candidate, over this shard only.

        ``candidates`` are plain sorted id-tuples (the cheap wire format);
        each returned dict maps cell index to the shard-local count, the
        counts of any one dict summing to :attr:`n_baskets`.  ``metrics``
        (a :class:`repro.obs.MetricsRegistry`) receives the worker-side
        ``kernel_dispatch``/``kernel_autotune`` counters for this task.
        """
        if self.fault == "crash":
            raise RuntimeError(f"injected crash in shard {self.index}")
        if self.fault == "hang":  # pragma: no cover - timing-dependent
            time.sleep(30.0)
        db = self.database()
        itemsets = [Itemset._from_sorted(items) for items in candidates]
        resolved = resolve_kernel(self.kernel)
        if resolved != "bitmap":
            from repro.kernels import count_cells_batch
            from repro.parallel.shm import _worker_dispatcher

            mode = resolved if resolved in ("blocked", "moebius", "scan") else "auto"
            return count_cells_batch(
                db,
                itemsets,
                metrics=metrics,
                dispatcher=_worker_dispatcher(mode, metrics=metrics),
            )
        return [count_cells(db, itemset) for itemset in itemsets]

    def __repr__(self) -> str:
        return (
            f"Shard(index={self.index}, start={self.start}, "
            f"baskets={self.n_baskets}, items={self.n_items})"
        )


def shard_database(
    db: BasketDatabase, n_shards: int, kernel: str = "auto"
) -> list[Shard]:
    """Partition ``db`` into at most ``n_shards`` contiguous row shards.

    Shard sizes differ by at most one basket, shards never overlap, and
    concatenating them in index order recovers the database's row order
    exactly — the layout is a pure function of ``(n_baskets, n_shards)``
    so repeated runs shard identically.  Databases smaller than
    ``n_shards`` get one shard per basket.  ``kernel`` is stamped on
    every shard (see :class:`Shard`).
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n = db.n_baskets
    n_shards = min(n_shards, max(n, 1))
    baskets = list(db)
    shards: list[Shard] = []
    base, extra = divmod(n, n_shards)
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        shards.append(
            Shard(index, start, baskets[start : start + size], db.n_items, kernel=kernel)
        )
        start += size
    return shards


def merge_shard_counts(
    per_shard: Iterable[Sequence[dict[int, int]]],
) -> list[dict[int, int]]:
    """Sum per-shard cell counts into global counts (the merge identity).

    ``per_shard`` holds one result per shard, each a sequence of sparse
    cell dicts aligned with the candidate order.  Addition of integer
    counts is associative and commutative, so the merge is deterministic
    regardless of which worker finished first.
    """
    merged: list[dict[int, int]] | None = None
    for shard_counts in per_shard:
        if merged is None:
            merged = [dict(cells) for cells in shard_counts]
            continue
        if len(shard_counts) != len(merged):
            raise ValueError(
                f"shard returned {len(shard_counts)} candidate counts, expected {len(merged)}"
            )
        for accumulator, cells in zip(merged, shard_counts):
            for cell, count in cells.items():
                accumulator[cell] = accumulator.get(cell, 0) + count
    if merged is None:
        raise ValueError("cannot merge zero shards")
    return merged
