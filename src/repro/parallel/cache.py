"""A bounded LRU cache for contingency tables.

Rule ranking, ``compare_frameworks``, and interactive CLI re-queries all
probe the same handful of itemsets repeatedly; counting is the expensive
part, so the engine memoises finished tables here.  The cache is a plain
ordered-dict LRU presented as keyed by
:class:`~repro.core.itemsets.Itemset` but *interned* to the itemset's
sorted id tuple internally: tuple keys compare in C, where an
``Itemset`` key pays a bytecode-dispatched ``__eq__`` whenever the
probe object is equal to but not identical with the stored key — the
common case here, since callers construct fresh ``Itemset`` objects per
query (~1.4x on a fresh-object probe loop; see the benchmark note in
``docs/algorithm.md``).  Safe because ``Itemset`` equality is
defined as tuple equality and both key and cached
:class:`ContingencyTable` are immutable, and the engine is bound to a
single (immutable) database, so entries never go stale within an
engine's lifetime.  For the *appendable* database behind the streaming
service, :meth:`TableCache.advance_generation` carries the cache across
an append exactly: tables touching an appended item are invalidated,
all others are patched in place (only their all-absent cell and total
can have changed), so point queries keep hitting across generations.

The cache is fully observable: :attr:`hits`, :attr:`misses`,
:attr:`evictions` and :attr:`bypasses` are read-only counters,
:meth:`stats` snapshots them as a dict, and an optional metrics registry
(:mod:`repro.obs.metrics`) receives one
``cache_events{kind="hit"|"miss"|"evict"|"bypass"}`` increment per event
so cache behaviour shows up in mining run reports.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.core.contingency import ContingencyTable
from repro.core.itemsets import Itemset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["TableCache"]


class TableCache:
    """Bounded LRU mapping of itemset -> contingency table.

    ``capacity <= 0`` disables caching entirely (every lookup misses and
    :meth:`put` is a no-op), which keeps the engine's call sites free of
    conditionals.  ``metrics`` (optional) is a
    :class:`~repro.obs.metrics.MetricsRegistry` that receives
    ``cache_events`` counter increments alongside the local counters.

    >>> from repro.core.itemsets import Itemset
    >>> cache = TableCache(capacity=2)
    >>> t = ContingencyTable(Itemset([0]), {1: 3, 0: 2})
    >>> cache.put(t.itemset, t)
    >>> cache.get(Itemset([0])) is t
    True
    >>> cache.hits, cache.misses
    (1, 0)
    >>> cache.stats()["size"], cache.stats()["generation"]
    (1, 0)
    """

    __slots__ = (
        "capacity",
        "_hits",
        "_misses",
        "_evictions",
        "_bypasses",
        "_invalidations",
        "_refreshes",
        "_generation",
        "_entries",
        "_events",
    )

    def __init__(self, capacity: int = 256, metrics: "MetricsRegistry | None" = None) -> None:
        if metrics is None:
            from repro.obs.metrics import NULL_METRICS

            metrics = NULL_METRICS
        self.capacity = capacity
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._bypasses = 0
        self._invalidations = 0
        self._refreshes = 0
        self._generation = 0
        # Interned keys: the itemset's sorted id tuple, never the
        # Itemset itself (C-speed equality on every get/put).
        self._entries: OrderedDict[tuple[int, ...], ContingencyTable] = OrderedDict()
        self._events = {
            "hit": metrics.counter("cache_events", kind="hit"),
            "miss": metrics.counter("cache_events", kind="miss"),
            "evict": metrics.counter("cache_events", kind="evict"),
            "bypass": metrics.counter("cache_events", kind="bypass"),
            "invalidate": metrics.counter("cache_events", kind="invalidate"),
            "refresh": metrics.counter("cache_events", kind="refresh"),
        }

    @property
    def hits(self) -> int:
        """Lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that found nothing (including all lookups at capacity 0)."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Entries dropped to respect the capacity bound."""
        return self._evictions

    @property
    def bypasses(self) -> int:
        """Tables the engine never offered because the batch outsized the cache."""
        return self._bypasses

    @property
    def invalidations(self) -> int:
        """Entries dropped by :meth:`advance_generation` (stale tables)."""
        return self._invalidations

    @property
    def refreshes(self) -> int:
        """Entries exactly patched by :meth:`advance_generation`."""
        return self._refreshes

    @property
    def generation(self) -> int:
        """Database generation the cached tables describe."""
        return self._generation

    def stats(self) -> dict[str, int]:
        """Counter snapshot plus the current occupancy."""
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "generation": self._generation,
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "bypasses": self._bypasses,
            "invalidations": self._invalidations,
            "refreshes": self._refreshes,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, itemset: Itemset) -> bool:
        return itemset.items in self._entries

    def get(self, itemset: Itemset) -> ContingencyTable | None:
        """Return the cached table (refreshing recency) or ``None``."""
        key = itemset.items
        table = self._entries.get(key)
        if table is None:
            self._misses += 1
            self._events["miss"].inc()
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        self._events["hit"].inc()
        return table

    def put(self, itemset: Itemset, table: ContingencyTable) -> None:
        """Insert a table, evicting the least recently used beyond capacity."""
        if self.capacity <= 0:
            return
        key = itemset.items
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = table
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1
            self._events["evict"].inc()

    def note_bypass(self, n: int) -> None:
        """Record ``n`` tables that skipped the cache wholesale."""
        self._bypasses += n
        self._events["bypass"].inc(n)

    def advance_generation(self, touched_items: Iterable[int], delta_count: int) -> None:
        """Carry the cache across a database append, exactly.

        ``touched_items`` are the item ids occurring in the appended
        baskets, ``delta_count`` the number of baskets appended.  Two
        disjoint cases cover every entry:

        * a table sharing an item with the delta may have any cell
          changed — it is **invalidated** (dropped);
        * a table touching none of the appended items is **refreshed**
          in place: every appended basket lands in its all-absent cell,
          so the only exact changes are ``cell 0 += delta_count`` and
          ``n += delta_count`` (the marginals are untouched).  The
          rebuilt table is bit-identical to a fresh count over the grown
          database.

        Recency order is preserved.  Generation advances even for an
        empty delta, keeping the counter aligned with the database's.
        """
        if delta_count < 0:
            raise ValueError(f"delta_count must be non-negative, got {delta_count}")
        touched = frozenset(touched_items)
        self._generation += 1
        if not self._entries:
            return
        survivors: OrderedDict[tuple[int, ...], ContingencyTable] = OrderedDict()
        for key, table in self._entries.items():
            if touched.intersection(key):
                self._invalidations += 1
                self._events["invalidate"].inc()
                continue
            if delta_count:
                cells = dict(table.nonzero_counts())
                cells[0] = cells.get(0, 0) + delta_count
                table = ContingencyTable.from_cell_counts(
                    table.itemset, cells, table.n + delta_count
                )
                self._refreshes += 1
                self._events["refresh"].inc()
            survivors[key] = table
        self._entries = survivors

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"TableCache(capacity={self.capacity}, size={len(self._entries)}, "
            f"hits={self._hits}, misses={self._misses}, evictions={self._evictions})"
        )
