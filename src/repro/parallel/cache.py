"""A bounded LRU cache for contingency tables.

Rule ranking, ``compare_frameworks``, and interactive CLI re-queries all
probe the same handful of itemsets repeatedly; counting is the expensive
part, so the engine memoises finished tables here.  The cache is a plain
ordered-dict LRU presented as keyed by
:class:`~repro.core.itemsets.Itemset` but *interned* to the itemset's
sorted id tuple internally: tuple keys compare in C, where an
``Itemset`` key pays a bytecode-dispatched ``__eq__`` whenever the
probe object is equal to but not identical with the stored key — the
common case here, since callers construct fresh ``Itemset`` objects per
query (~1.4x on a fresh-object probe loop; see the benchmark note in
``docs/algorithm.md``).  Safe because ``Itemset`` equality is
defined as tuple equality and both key and cached
:class:`ContingencyTable` are immutable, and the engine is bound to a
single (immutable) database, so entries never go stale within an
engine's lifetime.

The cache is fully observable: :attr:`hits`, :attr:`misses`,
:attr:`evictions` and :attr:`bypasses` are read-only counters,
:meth:`stats` snapshots them as a dict, and an optional metrics registry
(:mod:`repro.obs.metrics`) receives one
``cache_events{kind="hit"|"miss"|"evict"|"bypass"}`` increment per event
so cache behaviour shows up in mining run reports.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.core.contingency import ContingencyTable
from repro.core.itemsets import Itemset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["TableCache"]


class TableCache:
    """Bounded LRU mapping of itemset -> contingency table.

    ``capacity <= 0`` disables caching entirely (every lookup misses and
    :meth:`put` is a no-op), which keeps the engine's call sites free of
    conditionals.  ``metrics`` (optional) is a
    :class:`~repro.obs.metrics.MetricsRegistry` that receives
    ``cache_events`` counter increments alongside the local counters.

    >>> from repro.core.itemsets import Itemset
    >>> cache = TableCache(capacity=2)
    >>> t = ContingencyTable(Itemset([0]), {1: 3, 0: 2})
    >>> cache.put(t.itemset, t)
    >>> cache.get(Itemset([0])) is t
    True
    >>> cache.hits, cache.misses
    (1, 0)
    >>> cache.stats()
    {'capacity': 2, 'size': 1, 'hits': 1, 'misses': 0, 'evictions': 0, 'bypasses': 0}
    """

    __slots__ = (
        "capacity",
        "_hits",
        "_misses",
        "_evictions",
        "_bypasses",
        "_entries",
        "_events",
    )

    def __init__(self, capacity: int = 256, metrics: "MetricsRegistry | None" = None) -> None:
        if metrics is None:
            from repro.obs.metrics import NULL_METRICS

            metrics = NULL_METRICS
        self.capacity = capacity
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._bypasses = 0
        # Interned keys: the itemset's sorted id tuple, never the
        # Itemset itself (C-speed equality on every get/put).
        self._entries: OrderedDict[tuple[int, ...], ContingencyTable] = OrderedDict()
        self._events = {
            "hit": metrics.counter("cache_events", kind="hit"),
            "miss": metrics.counter("cache_events", kind="miss"),
            "evict": metrics.counter("cache_events", kind="evict"),
            "bypass": metrics.counter("cache_events", kind="bypass"),
        }

    @property
    def hits(self) -> int:
        """Lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that found nothing (including all lookups at capacity 0)."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Entries dropped to respect the capacity bound."""
        return self._evictions

    @property
    def bypasses(self) -> int:
        """Tables the engine never offered because the batch outsized the cache."""
        return self._bypasses

    def stats(self) -> dict[str, int]:
        """Counter snapshot plus the current occupancy."""
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "bypasses": self._bypasses,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, itemset: Itemset) -> bool:
        return itemset.items in self._entries

    def get(self, itemset: Itemset) -> ContingencyTable | None:
        """Return the cached table (refreshing recency) or ``None``."""
        key = itemset.items
        table = self._entries.get(key)
        if table is None:
            self._misses += 1
            self._events["miss"].inc()
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        self._events["hit"].inc()
        return table

    def put(self, itemset: Itemset, table: ContingencyTable) -> None:
        """Insert a table, evicting the least recently used beyond capacity."""
        if self.capacity <= 0:
            return
        key = itemset.items
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = table
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1
            self._events["evict"].inc()

    def note_bypass(self, n: int) -> None:
        """Record ``n`` tables that skipped the cache wholesale."""
        self._bypasses += n
        self._events["bypass"].inc(n)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"TableCache(capacity={self.capacity}, size={len(self._entries)}, "
            f"hits={self._hits}, misses={self._misses}, evictions={self._evictions})"
        )
