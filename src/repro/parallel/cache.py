"""A bounded LRU cache for contingency tables.

Rule ranking, ``compare_frameworks``, and interactive CLI re-queries all
probe the same handful of itemsets repeatedly; counting is the expensive
part, so the engine memoises finished tables here.  The cache is a plain
ordered-dict LRU keyed by :class:`~repro.core.itemsets.Itemset` — safe
because both the key and the cached :class:`ContingencyTable` are
immutable, and the engine is bound to a single (immutable) database, so
entries never go stale within an engine's lifetime.

The cache is fully observable: :attr:`hits`, :attr:`misses` and
:attr:`evictions` are read-only counters, :meth:`stats` snapshots them
as a dict, and an optional metrics registry (:mod:`repro.obs.metrics`)
receives one ``cache_events{kind="hit"|"miss"|"evict"}`` increment per
event so cache behaviour shows up in mining run reports.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.core.contingency import ContingencyTable
from repro.core.itemsets import Itemset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["TableCache"]


class TableCache:
    """Bounded LRU mapping of itemset -> contingency table.

    ``capacity <= 0`` disables caching entirely (every lookup misses and
    :meth:`put` is a no-op), which keeps the engine's call sites free of
    conditionals.  ``metrics`` (optional) is a
    :class:`~repro.obs.metrics.MetricsRegistry` that receives
    ``cache_events`` counter increments alongside the local counters.

    >>> from repro.core.itemsets import Itemset
    >>> cache = TableCache(capacity=2)
    >>> t = ContingencyTable(Itemset([0]), {1: 3, 0: 2})
    >>> cache.put(t.itemset, t)
    >>> cache.get(Itemset([0])) is t
    True
    >>> cache.hits, cache.misses
    (1, 0)
    >>> cache.stats()
    {'capacity': 2, 'size': 1, 'hits': 1, 'misses': 0, 'evictions': 0}
    """

    __slots__ = ("capacity", "_hits", "_misses", "_evictions", "_entries", "_events")

    def __init__(self, capacity: int = 256, metrics: "MetricsRegistry | None" = None) -> None:
        if metrics is None:
            from repro.obs.metrics import NULL_METRICS

            metrics = NULL_METRICS
        self.capacity = capacity
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._entries: OrderedDict[Itemset, ContingencyTable] = OrderedDict()
        self._events = {
            "hit": metrics.counter("cache_events", kind="hit"),
            "miss": metrics.counter("cache_events", kind="miss"),
            "evict": metrics.counter("cache_events", kind="evict"),
        }

    @property
    def hits(self) -> int:
        """Lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that found nothing (including all lookups at capacity 0)."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Entries dropped to respect the capacity bound."""
        return self._evictions

    def stats(self) -> dict[str, int]:
        """Counter snapshot plus the current occupancy."""
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, itemset: Itemset) -> bool:
        return itemset in self._entries

    def get(self, itemset: Itemset) -> ContingencyTable | None:
        """Return the cached table (refreshing recency) or ``None``."""
        table = self._entries.get(itemset)
        if table is None:
            self._misses += 1
            self._events["miss"].inc()
            return None
        self._entries.move_to_end(itemset)
        self._hits += 1
        self._events["hit"].inc()
        return table

    def put(self, itemset: Itemset, table: ContingencyTable) -> None:
        """Insert a table, evicting the least recently used beyond capacity."""
        if self.capacity <= 0:
            return
        if itemset in self._entries:
            self._entries.move_to_end(itemset)
        self._entries[itemset] = table
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1
            self._events["evict"].inc()

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"TableCache(capacity={self.capacity}, size={len(self._entries)}, "
            f"hits={self._hits}, misses={self._misses}, evictions={self._evictions})"
        )
