"""A bounded LRU cache for contingency tables.

Rule ranking, ``compare_frameworks``, and interactive CLI re-queries all
probe the same handful of itemsets repeatedly; counting is the expensive
part, so the engine memoises finished tables here.  The cache is a plain
ordered-dict LRU keyed by :class:`~repro.core.itemsets.Itemset` — safe
because both the key and the cached :class:`ContingencyTable` are
immutable, and the engine is bound to a single (immutable) database, so
entries never go stale within an engine's lifetime.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.contingency import ContingencyTable
from repro.core.itemsets import Itemset

__all__ = ["TableCache"]


class TableCache:
    """Bounded LRU mapping of itemset -> contingency table.

    ``capacity <= 0`` disables caching entirely (every lookup misses and
    :meth:`put` is a no-op), which keeps the engine's call sites free of
    conditionals.

    >>> from repro.core.itemsets import Itemset
    >>> cache = TableCache(capacity=2)
    >>> t = ContingencyTable(Itemset([0]), {1: 3, 0: 2})
    >>> cache.put(t.itemset, t)
    >>> cache.get(Itemset([0])) is t
    True
    >>> cache.hits, cache.misses
    (1, 0)
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_entries")

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[Itemset, ContingencyTable] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, itemset: Itemset) -> bool:
        return itemset in self._entries

    def get(self, itemset: Itemset) -> ContingencyTable | None:
        """Return the cached table (refreshing recency) or ``None``."""
        table = self._entries.get(itemset)
        if table is None:
            self.misses += 1
            return None
        self._entries.move_to_end(itemset)
        self.hits += 1
        return table

    def put(self, itemset: Itemset, table: ContingencyTable) -> None:
        """Insert a table, evicting the least recently used beyond capacity."""
        if self.capacity <= 0:
            return
        if itemset in self._entries:
            self._entries.move_to_end(itemset)
        self._entries[itemset] = table
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"TableCache(capacity={self.capacity}, size={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )
