"""repro — correlation rule mining beyond market baskets.

A complete reproduction of Brin, Motwani & Silverstein, *Beyond Market
Baskets: Generalizing Association Rules to Correlations* (SIGMOD 1997):
the chi-squared correlation test over itemset contingency tables, the
interest measure, cell-based support, the level-wise border-mining
algorithm of Figure 1, a random-walk border sampler, the
support-confidence baselines (Apriori, PCY), and the paper's three
evaluation datasets (reconstructed census, synthetic news corpus, IBM
Quest market baskets).

Quickstart::

    from repro import BasketDatabase, mine_correlations

    db = BasketDatabase.from_baskets(
        [["tea", "coffee"]] * 20 + [["coffee"]] * 70 + [["tea"]] * 5 + [[]] * 5)
    result = mine_correlations(db, significance=0.95, support_count=5)
    for rule in result.rules:
        print(rule.describe(db.vocabulary))
"""

from repro.algorithms import (
    AprioriResult,
    ChiSquaredSupportMiner,
    LevelStats,
    MiningResult,
    PCYResult,
    RandomWalkMiner,
    RandomWalkResult,
    SamplingResult,
    apriori,
    generate_rules,
    mine_significant_itemsets,
    pcy,
    toivonen_sample_mine,
)
from repro.core import (
    AssociationRule,
    Border,
    CategoricalResult,
    CategoricalTable,
    categorical_chi_squared_test,
    CellInterest,
    ContingencyTable,
    CorrelationResult,
    CorrelationRule,
    CorrelationTest,
    FrameworkComparison,
    Itemset,
    ItemVocabulary,
    chi_squared,
    compare_frameworks,
    correlation_rule,
    interest,
    interest_table,
    mine_correlations,
    mining_result_to_dict,
    most_extreme_cell,
    PairScreen,
    pairwise_screen,
    render_contingency,
    render_contingency_2x2,
    render_level_stats,
    render_rules,
    rule_to_dict,
)
from repro.data import BasketDatabase, CountDatacube
from repro.measures import AntiSupport, CellSupport
from repro.obs import Telemetry

__version__ = "1.0.0"

__all__ = [
    "AprioriResult",
    "ChiSquaredSupportMiner",
    "LevelStats",
    "MiningResult",
    "PCYResult",
    "RandomWalkMiner",
    "RandomWalkResult",
    "SamplingResult",
    "apriori",
    "generate_rules",
    "mine_significant_itemsets",
    "pcy",
    "toivonen_sample_mine",
    "AssociationRule",
    "Border",
    "CategoricalResult",
    "CategoricalTable",
    "categorical_chi_squared_test",
    "CellInterest",
    "ContingencyTable",
    "CorrelationResult",
    "CorrelationRule",
    "CorrelationTest",
    "FrameworkComparison",
    "Itemset",
    "ItemVocabulary",
    "chi_squared",
    "compare_frameworks",
    "correlation_rule",
    "interest",
    "interest_table",
    "mine_correlations",
    "mining_result_to_dict",
    "most_extreme_cell",
    "PairScreen",
    "pairwise_screen",
    "render_contingency",
    "render_contingency_2x2",
    "render_level_stats",
    "render_rules",
    "rule_to_dict",
    "BasketDatabase",
    "CountDatacube",
    "AntiSupport",
    "CellSupport",
    "Telemetry",
    "__version__",
]
