"""RPR002 — unguarded top-level NumPy imports outside ``kernels/``.

The core miner is pure Python; NumPy is the optional ``[fast]`` extra.
Every layer except :mod:`repro.kernels` must import cleanly when NumPy
is absent, which means module-level ``import numpy`` anywhere else must
sit inside a ``try``/``except ImportError`` guard (or move into the
function that needs it).  A single unguarded import in, say, the data
layer makes ``import repro.data`` — and everything above it — explode on
a NumPy-less install, defeating the pure-Python fallback the
backend-equivalence suite certifies.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.framework import LintModule, Rule, Violation, register
from repro.analysis.model.project import ProjectModel

_GUARD_EXCEPTIONS = {"ImportError", "ModuleNotFoundError", "Exception", "BaseException"}


def _handler_guards_import(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare except guards, however inadvisable
        return True
    names = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for name in names:
        if isinstance(name, ast.Attribute):
            name = ast.Name(id=name.attr)
        if isinstance(name, ast.Name) and name.id in _GUARD_EXCEPTIONS:
            return True
    return False


def _imports_numpy(node: ast.stmt) -> bool:
    if isinstance(node, ast.Import):
        return any(alias.name.split(".")[0] == "numpy" for alias in node.names)
    if isinstance(node, ast.ImportFrom):
        return node.level == 0 and (node.module or "").split(".")[0] == "numpy"
    return False


@register
class NumpyGuardRule(Rule):
    id = "RPR002"
    name = "unguarded-numpy-import"
    rationale = (
        "NumPy is the optional [fast] extra; outside kernels/, module import "
        "must succeed without it so the pure-Python fallback stays reachable."
    )
    dir_scope = ("src/",)
    dir_exempt = ("src/repro/kernels/",)

    def check_module(self, module: LintModule, project: ProjectModel) -> Iterator[Violation]:
        yield from self._scan(module, module.tree.body, guarded=False)

    def _scan(
        self, module: LintModule, body: list[ast.stmt], guarded: bool
    ) -> Iterator[Violation]:
        """Walk module-level statements only — function bodies are lazy."""
        for node in body:
            if _imports_numpy(node) and not guarded:
                yield Violation(
                    module.rel_path,
                    node.lineno,
                    node.col_offset,
                    self.id,
                    "top-level NumPy import without an ImportError guard; "
                    "wrap in try/except or import inside the function that needs it",
                )
            elif isinstance(node, ast.Try):
                covered = guarded or any(
                    _handler_guards_import(handler) for handler in node.handlers
                )
                yield from self._scan(module, node.body, covered)
                for handler in node.handlers:
                    yield from self._scan(module, handler.body, guarded)
                yield from self._scan(module, node.orelse, guarded)
                yield from self._scan(module, node.finalbody, guarded)
            elif isinstance(node, ast.If):
                yield from self._scan(module, node.body, guarded)
                yield from self._scan(module, node.orelse, guarded)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                yield from self._scan(module, node.body, guarded)
