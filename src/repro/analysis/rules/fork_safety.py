"""RPR011 — fork-unsafe state captured into worker tasks.

The parallel engine forks (where the platform allows), and fork copies
the parent's memory wholesale — including state that must never be
duplicated into a child:

* **locks and other synchronization primitives** — a lock held by
  another parent thread at fork time is copied *held* and deadlocks the
  child forever;
* **open file handles** — parent and child now share one file offset
  and interleave writes;
* **tracers / telemetry bundles** — the observability contract is that
  workers run un-instrumented (one tracer belongs to one thread of one
  process; see ``docs/observability.md``);
* **live SharedMemory handles** — workers must *attach by name* via a
  picklable spec (:class:`repro.parallel.shm.SharedIndexSpec`), never
  receive the parent's handle, whose resource-tracker registration
  would unlink the segment when the first worker exits.

The rule inspects every pool submission site (``apply_async``, ``map``,
``submit``, …, plus ``initializer=``/``initargs=``) and flags captured
state of those kinds, resolving each captured name three ways: local
variables (assigned from an acquiring call in the same function),
``self`` attributes (assigned in any method of the enclosing class),
and module-level globals.  It then walks the *call graph* from the
submitted task function: a task that transitively calls a function
reading a module-global lock/handle in any project module smuggles the
same hazard in through the back door, so those are flagged too.

``cacheable = False``: the verdict on a submission site changes when
the task's callees — usually in other files — change.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import call_name, function_scopes
from repro.analysis.framework import LintModule, Rule, Violation, register
from repro.analysis.model.project import ProjectModel
from repro.analysis.model.symbols import ModuleSymbols

_POOL_METHODS = {
    "apply",
    "apply_async",
    "map",
    "map_async",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
    "submit",
}

_LOCK_CONSTRUCTORS = {
    "Lock",
    "RLock",
    "Semaphore",
    "BoundedSemaphore",
    "Condition",
    "Event",
    "Barrier",
}
_TRACER_CONSTRUCTORS = {"Tracer", "Telemetry"}


def _unsafe_kind(value: ast.expr | None) -> str | None:
    """A human label when ``value`` builds fork-unsafe state."""
    if not isinstance(value, ast.Call):
        return None
    name = call_name(value.func)
    if name is None:
        return None
    parts = name.split(".")
    last = parts[0] if len(parts) == 1 else parts[-1]
    if last in _LOCK_CONSTRUCTORS:
        return "synchronization primitive"
    if name == "open":
        return "open file handle"
    if last == "SharedMemory":
        return "live SharedMemory handle"
    if last in _TRACER_CONSTRUCTORS or (
        last == "create" and len(parts) > 1 and parts[-2] in _TRACER_CONSTRUCTORS
    ):
        return "tracer/telemetry bundle"
    return None


def _local_bindings(func: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, str]:
    """Local name -> unsafe kind, from assignments in this function."""
    bindings: dict[str, str] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            kind = _unsafe_kind(node.value)
            if kind is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bindings[target.id] = kind
    return bindings


def _self_attr_bindings(cls: ast.ClassDef) -> dict[str, str]:
    """``self.attr`` name -> unsafe kind, from any method of the class."""
    bindings: dict[str, str] = {}
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            kind = _unsafe_kind(node.value)
            if kind is None:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    bindings[target.attr] = kind
    return bindings


def _module_global_bindings(symbols: ModuleSymbols) -> dict[str, str]:
    bindings: dict[str, str] = {}
    for name, value in symbols.module_assigns.items():
        kind = _unsafe_kind(value)
        if kind is not None:
            bindings[name] = kind
    return bindings


@register
class ForkSafetyRule(Rule):
    id = "RPR011"
    name = "fork-unsafe-capture"
    rationale = (
        "Locks, open files, tracers, and live SharedMemory handles must not "
        "cross the fork into workers: held locks deadlock children, shared "
        "offsets interleave writes, and attached handles unlink segments "
        "out from under their siblings."
    )
    cacheable = False  # the task's callees live in other files

    def check_module(self, module: LintModule, project: ProjectModel) -> Iterator[Violation]:
        symbols = project.symbols.module(module.rel_path)
        if symbols is None:
            return
        globals_map = _module_global_bindings(symbols)
        class_of_func: dict[int, ast.ClassDef] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        class_of_func[id(child)] = node
        for func in function_scopes(module.tree):
            cls = class_of_func.get(id(func))
            locals_map = _local_bindings(func)
            attrs_map = _self_attr_bindings(cls) if cls is not None else {}
            class_name = cls.name if cls is not None else None
            for call in ast.walk(func):
                if not isinstance(call, ast.Call):
                    continue
                submitted = self._submission_parts(call)
                if submitted is None:
                    continue
                task, payload = submitted
                for expr in payload:
                    yield from self._check_captured(
                        module, call, expr, locals_map, attrs_map, globals_map
                    )
                if task is not None:
                    yield from self._check_task_globals(
                        module, project, symbols, call, task, class_name
                    )

    @staticmethod
    def _submission_parts(
        call: ast.Call,
    ) -> tuple[ast.expr | None, list[ast.expr]] | None:
        """``(task callable, captured payload exprs)`` for a submission site."""
        task: ast.expr | None = None
        payload: list[ast.expr] = []
        is_submission = False
        if isinstance(call.func, ast.Attribute) and call.func.attr in _POOL_METHODS:
            is_submission = True
            if call.args:
                task = call.args[0]
                payload.extend(call.args[1:])
            payload.extend(
                keyword.value for keyword in call.keywords if keyword.arg is not None
            )
        for keyword in call.keywords:
            if keyword.arg == "initializer":
                is_submission = True
                if task is None:
                    task = keyword.value
            elif keyword.arg == "initargs":
                is_submission = True
                payload.append(keyword.value)
        if not is_submission:
            return None
        return task, payload

    def _check_captured(
        self,
        module: LintModule,
        call: ast.Call,
        expr: ast.expr,
        locals_map: dict[str, str],
        attrs_map: dict[str, str],
        globals_map: dict[str, str],
    ) -> Iterator[Violation]:
        for node in ast.walk(expr):
            kind: str | None = None
            what = ""
            if isinstance(node, ast.Name):
                kind = locals_map.get(node.id) or globals_map.get(node.id)
                what = node.id
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                kind = attrs_map.get(node.attr)
                what = f"self.{node.attr}"
            if kind is not None:
                yield Violation(
                    module.rel_path,
                    call.lineno,
                    call.col_offset,
                    self.id,
                    f"{what!r} ({kind}) is captured into a worker task; "
                    "fork-unsafe state must stay in the parent — ship a "
                    "picklable spec and rebuild worker-side",
                )

    def _check_task_globals(
        self,
        module: LintModule,
        project: ProjectModel,
        symbols: ModuleSymbols,
        call: ast.Call,
        task: ast.expr,
        class_name: str | None,
    ) -> Iterator[Violation]:
        """Walk the call graph from the task: flag unsafe module globals."""
        name = call_name(task) if not isinstance(task, ast.Lambda) else None
        if name is None:
            return
        info = project.symbols.resolve(symbols, name, class_name=class_name)
        if info is None:
            return
        frontier = [info.qname, *project.calls.reachable_from(info.qname)]
        for qname in frontier:
            callee = project.symbols.by_qname.get(qname)
            if callee is None:
                continue
            callee_symbols = project.symbols.by_module_name.get(callee.module_name)
            if callee_symbols is None:
                continue
            unsafe_globals = _module_global_bindings(callee_symbols)
            if not unsafe_globals:
                continue
            assigned = {
                target.id
                for node in ast.walk(callee.node)
                if isinstance(node, ast.Assign)
                for target in node.targets
                if isinstance(target, ast.Name)
            }
            for node in ast.walk(callee.node):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in unsafe_globals
                    and node.id not in assigned
                ):
                    yield Violation(
                        module.rel_path,
                        call.lineno,
                        call.col_offset,
                        self.id,
                        f"task reaches {qname}(), which reads module-global "
                        f"{node.id!r} ({unsafe_globals[node.id]}) created at "
                        "import; the forked child inherits it live",
                    )
                    break
