"""RPR008 — shared-memory segments created without an unlink path.

``multiprocessing.shared_memory`` segments are *named OS objects*: they
outlive the process that created them unless somebody calls
``unlink()``.  A ``SharedMemory(create=True)`` whose cleanup lives on
the happy path only — or nowhere — leaks ``/dev/shm`` space on every
crash, and the next run's segment names collide with the corpses.  The
engine's contract (and the failure-injection suite's assertion) is that
every creation site releases the segment on *all* exits.

A creation site is considered owned when one of these holds:

* it is the context expression of a ``with`` statement (the
  ``__exit__`` protocol releases it);
* the enclosing function reaches ``close()``/``unlink()`` from a
  ``finally`` block;
* the enclosing class defines an ownership method (``close``,
  ``unlink``, ``shutdown``, ``release``, ``_cleanup``, ``__exit__``,
  ``__del__``) that calls ``unlink()`` — the
  :class:`repro.parallel.shm.SharedPackedIndex` pattern, where
  ``__init__`` creates and a dedicated idempotent ``close`` unlinks.

Attach-side calls (no ``create=True``) are never flagged; attaching
does not own the segment.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.framework import LintModule, Rule, Violation, register
from repro.analysis.model.project import ProjectModel

# Method names that conventionally own resource teardown: a class that
# creates a segment in one method and unlinks it in one of these is a
# well-formed owner.
_OWNERSHIP_METHODS = {
    "close",
    "unlink",
    "shutdown",
    "release",
    "_cleanup",
    "__exit__",
    "__del__",
}

_CLEANUP_CALLS = {"close", "unlink"}


def _is_create_call(node: ast.Call) -> bool:
    """Whether ``node`` is ``SharedMemory(..., create=True)``."""
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name != "SharedMemory":
        return False
    for keyword in node.keywords:
        if keyword.arg == "create":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def _calls_cleanup(nodes: list[ast.stmt], methods: set[str]) -> bool:
    """Whether any statement (transitively) calls one of ``methods``."""
    for statement in nodes:
        for node in ast.walk(statement):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in methods
            ):
                return True
    return False


def _class_has_owner_method(cls: ast.ClassDef) -> bool:
    for statement in cls.body:
        if (
            isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
            and statement.name in _OWNERSHIP_METHODS
            and _calls_cleanup(statement.body, {"unlink"})
        ):
            return True
    return False


@register
class SharedMemoryOwnershipRule(Rule):
    id = "RPR008"
    name = "shared-memory-ownership"
    rationale = (
        "SharedMemory(create=True) makes a named OS object that survives "
        "the process; without an unlink on every exit path the segment "
        "leaks /dev/shm space after a crash."
    )

    def check_module(self, module: LintModule, project: ProjectModel) -> Iterator[Violation]:
        tree = module.tree
        parents: dict[ast.AST, ast.AST] = {}
        with_owned: set[int] = set()
        creates: list[ast.Call] = []
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
            if isinstance(node, (ast.With, ast.AsyncWith)):
                with_owned.update(id(item.context_expr) for item in node.items)
            elif isinstance(node, ast.Call) and _is_create_call(node):
                creates.append(node)
        for call in creates:
            if id(call) in with_owned:
                continue
            if self._site_is_owned(call, parents):
                continue
            yield Violation(
                module.rel_path,
                call.lineno,
                call.col_offset,
                self.id,
                "SharedMemory(create=True) without a matching close()/unlink() "
                "in a finally block, with statement, or ownership method; the "
                "segment leaks on every non-happy exit",
            )

    @staticmethod
    def _site_is_owned(call: ast.Call, parents: dict[ast.AST, ast.AST]) -> bool:
        enclosing_function = None
        enclosing_class = None
        node: ast.AST | None = parents.get(call)
        while node is not None:
            if enclosing_function is None and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                enclosing_function = node
            elif isinstance(node, ast.ClassDef):
                enclosing_class = node
                break  # methods of nested classes stop at their own class
            node = parents.get(node)
        if enclosing_function is not None:
            for inner in ast.walk(enclosing_function):
                if isinstance(inner, ast.Try) and inner.finalbody:
                    if _calls_cleanup(inner.finalbody, _CLEANUP_CALLS):
                        return True
        if enclosing_class is not None and _class_has_owner_method(enclosing_class):
            return True
        return False
