"""RPR006 — generic hygiene: mutable defaults, bare/swallowed excepts.

Three classic Python failure modes with a history of corrupting
long-lived mining state:

* **Mutable default arguments** persist across calls — a default
  ``cache={}`` shared between two miner instances is a cross-request
  correctness bug at production scale.
* **Bare ``except:``** catches ``KeyboardInterrupt``/``SystemExit`` and
  turns an operator's Ctrl-C into a hang inside a worker pool.
* **Swallowed exceptions** (``except ...: pass``) hide real failures;
  the parallel engine's contract is that a worker crash *raises or
  degrades loudly*, never disappears.  Intentional finalizer guards
  carry a suppression with a written justification.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.framework import LintModule, Rule, Violation, register
from repro.analysis.model.project import ProjectModel

_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "Counter", "deque", "bytearray"}


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


def _only_passes(body: list[ast.stmt]) -> bool:
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Constant):
            continue  # docstring or ellipsis
        return False
    return True


@register
class HygieneRule(Rule):
    id = "RPR006"
    name = "hygiene"
    rationale = (
        "Mutable defaults leak state across calls; bare excepts eat Ctrl-C; "
        "silently swallowed exceptions hide worker failures."
    )

    def check_module(self, module: LintModule, project: ProjectModel) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                defaults = [*node.args.defaults, *node.args.kw_defaults]
                for default in defaults:
                    if default is not None and _is_mutable_literal(default):
                        yield Violation(
                            module.rel_path,
                            default.lineno,
                            default.col_offset,
                            self.id,
                            "mutable default argument is shared across calls; "
                            "default to None and construct inside the function",
                        )
            elif isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield Violation(
                        module.rel_path,
                        node.lineno,
                        node.col_offset,
                        self.id,
                        "bare 'except:' catches KeyboardInterrupt/SystemExit; "
                        "name the exceptions this site can actually handle",
                    )
                if _only_passes(node.body):
                    yield Violation(
                        module.rel_path,
                        node.lineno,
                        node.col_offset,
                        self.id,
                        "exception swallowed with 'pass'; handle it, log it, or "
                        "suppress this line with a written justification",
                    )
