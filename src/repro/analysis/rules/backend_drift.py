"""RPR004 — counting-backend name drift across files.

The set of counting backends is spelled out as string literals in three
places that the type system never reconciles: the miner's validation
tuple in ``chi2support.py``, the CLI's ``--counting`` choices in
``cli.py``, and the ``COUNTING_BACKENDS`` tuple the differential
backend-equivalence suite iterates.  A backend added to the miner but
not to the test tuple silently loses its bit-identity guarantee; one
added to the CLI but not the miner is a user-facing crash.  This
project-scope rule parses all three literals and reports every file
whose set disagrees with the miner's (the authoritative source).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import call_name, constant_strings
from repro.analysis.framework import LintModule, Rule, Violation, register
from repro.analysis.model.project import ProjectModel

_MINER_FILE = "chi2support.py"
_CLI_FILE = "cli.py"
_TEST_FILE = "test_backend_equivalence.py"


def _miner_backends(module: LintModule) -> tuple[list[str], int] | None:
    """The tuple in ``if counting not in (...)`` — the validation gate."""
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Compare)
            and len(node.ops) == 1
            and isinstance(node.ops[0], ast.NotIn)
            and isinstance(node.left, ast.Name)
            and node.left.id == "counting"
        ):
            values = constant_strings(node.comparators[0])
            if values is not None:
                return values, node.lineno
    return None


def _cli_backends(module: LintModule) -> tuple[list[str], int] | None:
    """The ``choices=[...]`` of the ``--counting`` argument."""
    for node in ast.walk(module.tree):
        if not (
            isinstance(node, ast.Call)
            and call_name(node.func) is not None
            and call_name(node.func).endswith("add_argument")
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == "--counting"
        ):
            continue
        for keyword in node.keywords:
            if keyword.arg == "choices":
                values = constant_strings(keyword.value)
                if values is not None:
                    return values, node.lineno
    return None


def _test_backends(module: LintModule) -> tuple[list[str], int] | None:
    """The suite's ``COUNTING_BACKENDS = (...)`` assignment."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "COUNTING_BACKENDS":
                    values = constant_strings(node.value)
                    if values is not None:
                        return values, node.lineno
    return None


@register
class BackendDriftRule(Rule):
    id = "RPR004"
    name = "backend-name-drift"
    rationale = (
        "The miner's backend tuple, the CLI choices, and the equivalence "
        "suite's backend list must name the same set, or a backend escapes "
        "its bit-identity guarantee."
    )
    scope = "project"

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        sources: dict[str, tuple[LintModule, list[str], int]] = {}
        modules = project.modules
        extractors = {
            _MINER_FILE: _miner_backends,
            _CLI_FILE: _cli_backends,
            _TEST_FILE: _test_backends,
        }
        for module in modules:
            basename = module.rel_path.rsplit("/", 1)[-1]
            extractor = extractors.get(basename)
            if extractor is None or basename in sources:
                continue
            found = extractor(module)
            if found is not None:
                sources[basename] = (module, found[0], found[1])

        if len(sources) < 2:
            return  # nothing to cross-check against
        # The miner is authoritative; otherwise fall back to the CLI.
        reference_name = _MINER_FILE if _MINER_FILE in sources else _CLI_FILE
        if reference_name not in sources:
            reference_name = next(iter(sources))
        _, reference, _ = sources[reference_name]
        reference_set = set(reference)

        for basename, (module, values, line) in sorted(sources.items()):
            if basename == reference_name:
                continue
            missing = sorted(reference_set - set(values))
            extra = sorted(set(values) - reference_set)
            if not missing and not extra:
                continue
            details = []
            if missing:
                details.append(f"missing {missing}")
            if extra:
                details.append(f"extra {extra}")
            yield Violation(
                module.rel_path,
                line,
                0,
                self.id,
                f"counting backends drifted from {reference_name} "
                f"({', '.join(details)}); keep the three literals in sync",
            )
