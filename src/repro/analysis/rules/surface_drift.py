"""RPR012 — drift between the CLI, the API, and the documented knobs.

RPR004 keeps one tuple — the counting-backend names — in sync across
three files.  This rule generalizes the idea to the miner's *entire
configuration surface*.  Three surfaces must agree:

* the authoritative knob set: ``ChiSquaredSupportMiner.__init__`` in
  ``chi2support.py`` (the constructor parameters, minus internal
  plumbing);
* the convenience API: the explicit keyword parameters of
  ``mine_correlations`` in ``mining.py`` — each must still be a miner
  knob, or a call that type-checks today crashes after a rename;
* the CLI: every ``--flag`` of the ``mine`` subcommand in ``cli.py``
  (minus presentation flags) must map to a miner knob (``-`` ↔ ``_``).

Knobs the CLI does not expose are the *API-only* surface; those must at
least be named somewhere under ``docs/``, or they are undiscoverable —
the drift RPR004 cannot see because no literal tuple ever disagrees.

The composite ``support`` parameter is special: the CLI and
``mine_correlations`` spell it as the pair ``support_count`` /
``support_fraction`` (the ``CellSupport`` members), which this rule
treats as equivalent to the knob.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.astutil import call_name
from repro.analysis.framework import LintModule, Rule, Violation, register
from repro.analysis.model.project import ProjectModel

_MINER_FILE = "chi2support.py"
_MINER_CLASS = "ChiSquaredSupportMiner"
_API_FILE = "mining.py"
_API_FUNCTION = "mine_correlations"
_CLI_FILE = "cli.py"
_CLI_COMMAND = "mine"

# Constructor parameters that are plumbing, not user-facing knobs.
_INTERNAL_PARAMS = {"self", "engine", "telemetry"}
# The composite support threshold and the pair of scalars it travels as.
_COMPOSITE = {"support": ("support_count", "support_fraction")}
# CLI flags that shape input/output, not the mining computation.
_PRESENTATION_FLAGS = {
    "input",
    "numeric",
    "limit",
    "json",
    "telemetry",
    "trace_out",
    "metrics_out",
    "profile",
    "log_level",
}


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = func.args
    return [arg.arg for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]]


def _find_miner_init(
    module: LintModule,
) -> tuple[list[str], int] | None:
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.ClassDef) and node.name == _MINER_CLASS):
            continue
        for child in node.body:
            if isinstance(child, ast.FunctionDef) and child.name == "__init__":
                return _param_names(child), child.lineno
    return None


def _find_api_params(module: LintModule) -> tuple[list[str], int] | None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.FunctionDef) and node.name == _API_FUNCTION:
            return _param_names(node), node.lineno
    return None


def _find_cli_flags(module: LintModule) -> dict[str, int] | None:
    """``--flag`` name (dashes as underscores) -> line, for ``mine``."""
    mine_parser: str | None = None
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and call_name(node.value.func) is not None
            and call_name(node.value.func).endswith("add_parser")
            and node.value.args
            and isinstance(node.value.args[0], ast.Constant)
            and node.value.args[0].value == _CLI_COMMAND
        ):
            mine_parser = node.targets[0].id
    if mine_parser is None:
        return None
    flags: dict[str, int] = {}
    for node in ast.walk(module.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == mine_parser
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value.startswith("--")
        ):
            continue
        flag = node.args[0].value[2:].replace("-", "_")
        flags[flag] = node.lineno
    return flags


def _documented_names(project: ProjectModel) -> set[str] | None:
    """Words of every ``docs/*.md`` file; None when there is no docs tree."""
    if project.root is None:
        return None
    docs = project.root / "docs"
    if not docs.is_dir():
        return None
    text: list[str] = []
    for page in sorted(docs.glob("*.md")):
        try:
            text.append(page.read_text(encoding="utf-8"))
        except OSError:
            continue
    corpus = "\n".join(text)
    return set(_KNOB_WORD_RE.findall(corpus))


_KNOB_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


@register
class SurfaceDriftRule(Rule):
    id = "RPR012"
    name = "surface-drift"
    rationale = (
        "The CLI flags, mine_correlations parameters, and miner constructor "
        "knobs must name one configuration surface; an API-only knob that "
        "no document names is a feature nobody can find."
    )
    scope = "project"

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        miner: tuple[LintModule, list[str], int] | None = None
        api: tuple[LintModule, list[str], int] | None = None
        cli: tuple[LintModule, dict[str, int]] | None = None
        for module in project.modules:
            basename = module.rel_path.rsplit("/", 1)[-1]
            if basename == _MINER_FILE and miner is None:
                found = _find_miner_init(module)
                if found is not None:
                    miner = (module, found[0], found[1])
            elif basename == _API_FILE and api is None:
                found = _find_api_params(module)
                if found is not None:
                    api = (module, found[0], found[1])
            elif basename == _CLI_FILE and cli is None:
                flags = _find_cli_flags(module)
                if flags is not None:
                    cli = (module, flags)
        if miner is None:
            return  # nothing authoritative to check against

        miner_module, params, init_line = miner
        knobs = {name for name in params if name not in _INTERNAL_PARAMS}
        for composite, scalars in _COMPOSITE.items():
            if composite in knobs:
                knobs.discard(composite)
                knobs.update(scalars)

        if api is not None:
            api_module, api_params, api_line = api
            for name in api_params:
                if name in ("db", "telemetry") or name in knobs:
                    continue
                yield Violation(
                    api_module.rel_path,
                    api_line,
                    0,
                    self.id,
                    f"{_API_FUNCTION}() parameter {name!r} matches no "
                    f"{_MINER_CLASS} knob; the call crashes at dispatch",
                )

        cli_names: set[str] = set()
        if cli is not None:
            cli_module, flags = cli
            cli_names = set(flags)
            for flag, line in sorted(flags.items()):
                if flag in _PRESENTATION_FLAGS or flag in knobs:
                    continue
                yield Violation(
                    cli_module.rel_path,
                    line,
                    0,
                    self.id,
                    f"CLI flag --{flag.replace('_', '-')} matches no "
                    f"{_MINER_CLASS} knob; the mine command cannot honour it",
                )

        documented = _documented_names(project)
        if cli is None or documented is None:
            return  # a partial tree (fixtures) checks only what it ships
        for knob in sorted(knobs):
            if knob in cli_names or knob in documented:
                continue
            yield Violation(
                miner_module.rel_path,
                init_line,
                0,
                self.id,
                f"miner knob {knob!r} has no CLI flag and is never named "
                "under docs/; an undiscoverable knob is drift waiting to "
                "happen — expose it or document it",
            )
