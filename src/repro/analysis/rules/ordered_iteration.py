"""RPR003 — unordered iteration feeding order-sensitive accumulation.

Float addition is not associative, and Python gives no iteration-order
promise for sets, while dict order is whatever insertion order the
*caller* happened to produce — which differs between counting backends
(bitmap closed forms, single-pass scans, shard merges).  PR 1 shipped
exactly this bug: ``chi_squared_sparse`` summed occupied cells in dict
order and the backends disagreed in the last ulp.  The invariant since
then: any float accumulation or candidate emission driven by a set or
dict must fix a canonical order first (``sorted(...)``).

The rule infers container kinds from literals, constructor calls, and
annotations (``dict[...]``, ``Mapping``, ``set[...]`` …), then flags

* ``sum(...)`` / ``math.fsum(...)`` whose iterable is unordered (unless
  the summand is an integer literal — pure counting is exact), and
* ``for`` loops over an unordered iterable whose body accumulates via
  ``+=``-style augmented assignment or ``list.append``/``extend``.

Integer-exact accumulations the author can vouch for are suppressed
with a justification, which is the documentation the next reader needs
anyway.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import call_name, unwrap_transparent
from repro.analysis.framework import LintModule, Rule, Violation, register

_SET_TYPES = {"set", "frozenset", "Set", "AbstractSet", "MutableSet", "FrozenSet"}
_DICT_TYPES = {
    "dict",
    "Dict",
    "Mapping",
    "MutableMapping",
    "DefaultDict",
    "defaultdict",
    "Counter",
}
_SUM_FUNCTIONS = {"sum", "fsum", "math.fsum"}
_EMIT_METHODS = {"append", "extend", "insert"}


def _annotation_kind(annotation: ast.expr | None) -> str | None:
    if annotation is None:
        return None
    base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
    name = call_name(base)
    if name is None:
        return None
    last = name.split(".")[-1]
    if last in _SET_TYPES:
        return "set"
    if last in _DICT_TYPES:
        return "dict"
    return None


def _value_kind(value: ast.expr | None) -> str | None:
    if value is None:
        return None
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, ast.Call):
        name = call_name(value.func)
        if name is not None:
            last = name.split(".")[-1]
            if last in ("set", "frozenset"):
                return "set"
            if last in ("dict", "defaultdict", "Counter"):
                return "dict"
    return None


def _scope_statements(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function/class scopes."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Lambda):
                continue
            stack.append(child)


def _infer_kinds(scope: ast.Module | ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, str]:
    kinds: dict[str, str] = {}
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            kind = _annotation_kind(arg.annotation)
            if kind:
                kinds[arg.arg] = kind
    for node in _scope_statements(scope.body):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            kind = _annotation_kind(node.annotation) or _value_kind(node.value)
            if kind:
                kinds[node.target.id] = kind
        elif isinstance(node, ast.Assign):
            kind = _value_kind(node.value)
            if kind:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        kinds[target.id] = kind
    return kinds


def _unordered(expr: ast.expr, kinds: dict[str, str]) -> str | None:
    """A human description of why ``expr`` iterates in no canonical order."""
    expr = unwrap_transparent(expr)
    direct = _value_kind(expr)
    if direct == "set" or isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set expression"
    if isinstance(expr, ast.Name):
        kind = kinds.get(expr.id)
        if kind == "set":
            return f"set {expr.id!r}"
        if kind == "dict":
            return f"dict {expr.id!r} (caller-dependent insertion order)"
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in ("keys", "values", "items")
        and isinstance(expr.func.value, ast.Name)
        and kinds.get(expr.func.value.id) == "dict"
    ):
        owner = expr.func.value.id
        return f"dict {owner!r}.{expr.func.attr}() (caller-dependent insertion order)"
    return None


def _is_int_literal(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Constant) and type(expr.value) is int


def _accumulates(body: list[ast.stmt]) -> bool:
    for node in _scope_statements(body):
        if isinstance(node, ast.AugAssign) and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
        ):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _EMIT_METHODS
        ):
            return True
    return False


@register
class OrderedIterationRule(Rule):
    id = "RPR003"
    name = "unordered-accumulation"
    rationale = (
        "Float sums and candidate emission must run in a canonical order; "
        "set/dict iteration order varies with the producing backend."
    )

    def check_module(self, module: LintModule) -> Iterator[Violation]:
        scopes: list[ast.Module | ast.FunctionDef | ast.AsyncFunctionDef] = [module.tree]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            yield from self._check_scope(module, scope)

    def _check_scope(
        self,
        module: LintModule,
        scope: ast.Module | ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Violation]:
        kinds = _infer_kinds(scope)
        for node in _scope_statements(scope.body):
            if isinstance(node, ast.Call) and call_name(node.func) in _SUM_FUNCTIONS:
                if not node.args:
                    continue
                argument = node.args[0]
                if isinstance(argument, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                    if _is_int_literal(argument.elt):
                        continue  # counting with a literal weight is exact
                    reason = _unordered(argument.generators[0].iter, kinds)
                else:
                    reason = _unordered(argument, kinds)
                if reason:
                    yield Violation(
                        module.rel_path,
                        node.lineno,
                        node.col_offset,
                        self.id,
                        f"order-sensitive sum over {reason}; "
                        "iterate sorted(...) for a canonical summation order",
                    )
            elif isinstance(node, ast.For):
                reason = _unordered(node.iter, kinds)
                if reason and _accumulates(node.body):
                    yield Violation(
                        module.rel_path,
                        node.lineno,
                        node.col_offset,
                        self.id,
                        f"loop over {reason} accumulates order-sensitively; "
                        "iterate sorted(...) for a canonical order",
                    )
