"""RPR003 — unordered iteration feeding order-sensitive accumulation.

Float addition is not associative, and Python gives no iteration-order
promise for sets, while dict order is whatever insertion order the
*caller* happened to produce — which differs between counting backends
(bitmap closed forms, single-pass scans, shard merges).  PR 1 shipped
exactly this bug: ``chi_squared_sparse`` summed occupied cells in dict
order and the backends disagreed in the last ulp.  The invariant since
then: any float accumulation or candidate emission driven by a set or
dict must fix a canonical order first (``sorted(...)``).

The rule infers container kinds from literals, constructor calls, and
annotations (``dict[...]``, ``Mapping``, ``set[...]`` …), then flags

* ``sum(...)`` / ``math.fsum(...)`` whose iterable is unordered (unless
  the summand is an integer literal — pure counting is exact), and
* ``for`` loops over an unordered iterable whose body accumulates via
  ``+=``-style augmented assignment or ``list.append``/``extend``.

This rule is intra-procedural on purpose; its cross-function twin is
RPR010 (:mod:`repro.analysis.rules.nondet_flow`), which chases the same
pattern through the call graph.

Integer-exact accumulations the author can vouch for are suppressed
with a justification, which is the documentation the next reader needs
anyway.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import (
    SUM_FUNCTIONS,
    accumulates,
    call_name,
    infer_kinds,
    is_int_literal,
    scope_statements,
    unordered_reason,
)
from repro.analysis.framework import LintModule, Rule, Violation, register
from repro.analysis.model.project import ProjectModel


@register
class OrderedIterationRule(Rule):
    id = "RPR003"
    name = "unordered-accumulation"
    rationale = (
        "Float sums and candidate emission must run in a canonical order; "
        "set/dict iteration order varies with the producing backend."
    )

    def check_module(self, module: LintModule, project: ProjectModel) -> Iterator[Violation]:
        scopes: list[ast.Module | ast.FunctionDef | ast.AsyncFunctionDef] = [module.tree]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            yield from self._check_scope(module, scope)

    def _check_scope(
        self,
        module: LintModule,
        scope: ast.Module | ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Violation]:
        kinds = infer_kinds(scope)
        for node in scope_statements(scope.body):
            if isinstance(node, ast.Call) and call_name(node.func) in SUM_FUNCTIONS:
                if not node.args:
                    continue
                argument = node.args[0]
                if isinstance(argument, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                    if is_int_literal(argument.elt):
                        continue  # counting with a literal weight is exact
                    reason = unordered_reason(argument.generators[0].iter, kinds)
                else:
                    reason = unordered_reason(argument, kinds)
                if reason:
                    yield Violation(
                        module.rel_path,
                        node.lineno,
                        node.col_offset,
                        self.id,
                        f"order-sensitive sum over {reason}; "
                        "iterate sorted(...) for a canonical summation order",
                    )
            elif isinstance(node, ast.For):
                reason = unordered_reason(node.iter, kinds)
                if reason and accumulates(node.body):
                    yield Violation(
                        module.rel_path,
                        node.lineno,
                        node.col_offset,
                        self.id,
                        f"loop over {reason} accumulates order-sensitively; "
                        "iterate sorted(...) for a canonical order",
                    )
