"""RPR005 — unpicklable callables handed to a multiprocessing pool.

``multiprocessing`` ships tasks by pickling, and pickle resolves
functions by qualified name: lambdas and functions defined inside
another function cannot be resolved from a worker process and fail at
dispatch time — but only on the parallel path, which the serial
fallback then papers over as a mysterious performance regression (every
batch degrades to serial counting).  The engine's task functions must
stay module-level; this rule flags lambdas and locally-defined
functions passed to pool submission methods or as a pool
``initializer``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.framework import LintModule, Rule, Violation, register
from repro.analysis.model.project import ProjectModel

_POOL_METHODS = {
    "apply",
    "apply_async",
    "map",
    "map_async",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
    "submit",
}


def _local_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside another function (unpicklable)."""
    local: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in ast.walk(node):
                if child is not node and isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    local.add(child.name)
    return local


@register
class PicklableTaskRule(Rule):
    id = "RPR005"
    name = "unpicklable-pool-task"
    rationale = (
        "Pool tasks travel by pickle; lambdas and nested functions fail at "
        "dispatch and silently demote the engine to serial counting."
    )

    def check_module(self, module: LintModule, project: ProjectModel) -> Iterator[Violation]:
        local_names = _local_function_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            candidates: list[ast.expr] = []
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_METHODS
                and node.args
            ):
                candidates.append(node.args[0])
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    candidates.append(keyword.value)
            for candidate in candidates:
                problem = self._unpicklable(candidate, local_names)
                if problem:
                    yield Violation(
                        module.rel_path,
                        node.lineno,
                        node.col_offset,
                        self.id,
                        f"{problem} submitted to a worker pool cannot be "
                        "pickled; move the task to module level",
                    )

    @staticmethod
    def _unpicklable(candidate: ast.expr, local_names: set[str]) -> str | None:
        if isinstance(candidate, ast.Lambda):
            return "lambda"
        if isinstance(candidate, ast.Name) and candidate.id in local_names:
            return f"locally-defined function {candidate.id!r}"
        if (
            isinstance(candidate, ast.Call)
            and isinstance(candidate.func, ast.Name)
            and candidate.func.id == "partial"
            and candidate.args
        ):
            return PicklableTaskRule._unpicklable(candidate.args[0], local_names)
        return None
