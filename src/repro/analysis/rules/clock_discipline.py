"""RPR013 — direct clock reads outside the clock module.

The repo's determinism story rests on one discipline: anything that
reads wall time does it through an injectable
:class:`~repro.obs.clock.Clock` (``default_clock()`` in production, a
``FakeClock`` in tests), so spans, histograms, autotune observations
and event timestamps are byte-reproducible under test.  A stray
``time.perf_counter()`` / ``time.time()`` / ``time.monotonic()`` deep
in library code reintroduces real time where a test injected a fake
one, and the resulting flakiness surfaces far from its cause.

The rule flags calls to those three functions anywhere under
``src/repro/`` — alias-aware, so ``import time as t; t.monotonic()``
and ``from time import perf_counter`` are caught too.
``src/repro/obs/clock.py`` is the one legitimate caller (it *is* the
clock abstraction) and is exempt.  ``time.sleep`` is not a clock read
and stays legal.

Sites that genuinely must track real elapsed time regardless of any
injected clock (the parallel pool's task-timeout deadlines) carry an
inline suppression with a justification, which is exactly the audit
trail this rule exists to force.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.framework import LintModule, Rule, Violation, register
from repro.analysis.model.project import ProjectModel

# The banned fully-qualified callables: reads of process/wall time that
# the Clock protocol abstracts over.
_BANNED = {
    "time.perf_counter": "time.perf_counter()",
    "time.time": "time.time()",
    "time.monotonic": "time.monotonic()",
}


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return ".".join(parts)
    return None


@register
class ClockDisciplineRule(Rule):
    id = "RPR013"
    name = "direct-clock-read"
    rationale = (
        "Library code must read time through an injectable Clock "
        "(repro.obs.clock) so runs are deterministic under FakeClock; "
        "direct time.perf_counter()/time.time()/time.monotonic() calls "
        "bypass the injection point."
    )
    dir_scope = ("src/repro/",)
    dir_exempt = ("src/repro/obs/clock.py",)

    def check_module(self, module: LintModule, project: ProjectModel) -> Iterator[Violation]:
        symbols = project.symbols.module(module.rel_path)
        aliases = symbols.imports if symbols is not None else {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            head, _, rest = dotted.partition(".")
            target = aliases.get(head)
            if target is None:
                continue  # not an imported name; locals may shadow freely
            resolved = f"{target}.{rest}" if rest else target
            spelled = _BANNED.get(resolved)
            if spelled is not None:
                yield Violation(
                    module.rel_path,
                    node.lineno,
                    node.col_offset,
                    self.id,
                    f"direct {spelled} call; take a Clock from "
                    "repro.obs.clock (default_clock() / FakeClock) and "
                    "call it instead",
                )
