"""RPR007 — bare ``print(...)`` in library code.

A library that prints is a library an operator cannot silence, redirect,
or structure: output bypasses the observability layer (`repro.obs`) and
stdlib ``logging``, corrupts stdout consumers (the CLI's ``--json`` mode
pipes mining results to tools), and is invisible to the run report.
Library modules under ``src/repro/`` must route human-facing output
through :mod:`logging` (diagnostics) or return strings for a frontend
to display; recording belongs in the telemetry bundle.

The frontends themselves are exempt — the CLI entry points and the
analysis reporters exist to write to the console:

* ``src/repro/cli.py`` and ``src/repro/__main__.py``;
* ``src/repro/analysis/__main__.py`` (the replint CLI).

Tests are held to the same bar — pytest captures stdout, so a printing
test is a debugging leftover.  ``benchmarks/`` stay out of scope on
purpose: they are standalone scripts whose *product* is console output.

Everything else that needs to say something has ``logging`` and the
``repro.obs`` exporters.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.framework import LintModule, Rule, Violation, register
from repro.analysis.model.project import ProjectModel


@register
class NoPrintRule(Rule):
    id = "RPR007"
    name = "print-in-library"
    rationale = (
        "Library output must flow through repro.obs or stdlib logging so it "
        "can be silenced, structured, and kept off stdout; print() is for "
        "the CLI frontends only."
    )
    dir_scope = ("src/", "tests/")
    dir_exempt = (
        "src/repro/cli.py",
        "src/repro/__main__.py",
        "src/repro/analysis/__main__.py",
    )

    def check_module(self, module: LintModule, project: ProjectModel) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield Violation(
                    module.rel_path,
                    node.lineno,
                    node.col_offset,
                    self.id,
                    "print() in library code; use logging for diagnostics, "
                    "return strings for display, or record into repro.obs",
                )
