"""RPR001 — float-literal equality comparisons.

The statistics layers compare floats constantly (``stat >= cutoff``,
validity thresholds) and those are fine; what regresses silently is
``==``/``!=`` against a float *literal*, which only works when the value
is exactly representable and every code path produces it bit-for-bit.
The one idiom the codebase relies on — and therefore allows — is the
sentinel guard against exactly ``0.0`` or ``1.0`` (probabilities and
expectations pinned at the boundary by construction, e.g. the
``expected == 0.0`` structural-zero checks in the chi-squared sums).
Anything else must go through a tolerance or be suppressed with a
justification.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.framework import LintModule, Rule, Violation, register
from repro.analysis.model.project import ProjectModel

_SENTINELS = (0.0, 1.0)


def _float_literal(node: ast.expr) -> float | None:
    """The value of a float constant expression, unary minus included."""
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and type(node.operand.value) is float
    ):
        return -node.operand.value
    return None


@register
class FloatEqualityRule(Rule):
    id = "RPR001"
    name = "float-literal-equality"
    rationale = (
        "Float equality against non-sentinel literals breaks under any "
        "reordering of arithmetic; only exact 0.0/1.0 boundary guards are safe."
    )
    dir_scope = (
        "src/repro/stats",
        "src/repro/core",
        "src/repro/kernels",
        "src/repro/measures",
        "src/repro/algorithms",
    )

    def check_module(self, module: LintModule, project: ProjectModel) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (operands[index], operands[index + 1]):
                    value = _float_literal(side)
                    if value is None or value in _SENTINELS:
                        continue
                    yield Violation(
                        module.rel_path,
                        node.lineno,
                        node.col_offset,
                        self.id,
                        f"equality comparison against float literal {value!r}; "
                        "use a tolerance (only sentinel 0.0/1.0 guards are exact)",
                    )
                    break
