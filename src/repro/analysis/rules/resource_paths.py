"""RPR009 — resources that escape on some control-flow path.

RPR008 asks a *syntactic* question about shared-memory segments: does a
creation site sit near any cleanup at all?  This rule asks the
*path-sensitive* question for every owned resource the miner juggles —
shared-memory segments, worker pools, file handles, tracer spans: is
there a control-flow path (normal or exceptional) from the acquisition
to the function's exit that never runs the cleanup?

It walks the function's CFG (:mod:`repro.analysis.flow.cfg`):

* **normal-path leak** — a path from the acquisition reaches the
  function exit without passing a statement that closes the resource;
* **exception-path leak** — the happy path cleans up, but a statement
  between acquisition and cleanup can raise and no lexically enclosing
  ``try`` runs the cleanup from its ``finally`` (or a handler), so the
  exception edge skips it.

Ownership transfers are not leaks: a resource that is returned,
yielded, stored on ``self`` (when the class has an ownership method —
the RPR008 convention), or deposited into a container has a new owner.
Passing the resource as a call *argument* is borrowing, not transfer —
``do_work(shm)`` followed by a fall-off-the-end return still leaks.

Tracer spans are their own sub-case: a :class:`repro.obs.tracer.Span`
only starts and stops its timer through the context-manager protocol,
so a ``.span(...)`` whose result is discarded, or bound but never
entered, records nothing and dangles in the parent's span stack.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import call_name, function_scopes
from repro.analysis.flow.cfg import CFG, CFGNode
from repro.analysis.framework import LintModule, Rule, Violation, register
from repro.analysis.model.project import ProjectModel

# Resource kinds: constructor name (last dotted segment) -> a human
# label and the method names that release the resource.
_POOL_CONSTRUCTORS = {"Pool", "ThreadPool", "ProcessPoolExecutor", "ThreadPoolExecutor"}
_POOL_CLEANUPS = frozenset({"close", "terminate", "shutdown", "join"})
_FILE_CLEANUPS = frozenset({"close"})
_SHM_CLEANUPS = frozenset({"close", "unlink"})

# Methods that conventionally own teardown for self-attribute resources
# (the RPR008 convention, shared so the two rules agree on ownership).
_OWNERSHIP_METHODS = {
    "close",
    "unlink",
    "shutdown",
    "release",
    "stop",
    "_cleanup",
    "__exit__",
    "__del__",
}

# Storing a resource into a container hands ownership over; merely
# passing it as an argument does not.
_DEPOSIT_METHODS = {"append", "add", "insert", "extend", "register", "setdefault"}


def _acquisition(value: ast.expr) -> tuple[str, frozenset[str]] | None:
    """``(label, cleanup methods)`` when ``value`` acquires a resource."""
    if not isinstance(value, ast.Call):
        return None
    name = call_name(value.func)
    if name is None:
        return None
    last = name.split(".")[-1]
    if last == "SharedMemory":
        for keyword in value.keywords:
            if keyword.arg == "create":
                constant = keyword.value
                if isinstance(constant, ast.Constant) and constant.value is True:
                    return "shared-memory segment", _SHM_CLEANUPS
        return None  # attaching does not own the segment (see RPR008)
    if name == "open":
        return "file handle", _FILE_CLEANUPS
    if last in _POOL_CONSTRUCTORS:
        return "worker pool", _POOL_CLEANUPS
    return None


def _contains_name(expr: ast.expr | None, var: str) -> bool:
    if expr is None:
        return False
    return any(
        isinstance(node, ast.Name) and node.id == var for node in ast.walk(expr)
    )


def _stmt_cleans(stmt: ast.stmt, var: str, cleanups: frozenset[str]) -> bool:
    """Whether ``stmt`` releases ``var`` (method call or ``with var``)."""
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in cleanups
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == var
        ):
            return True
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            context = item.context_expr
            if isinstance(context, ast.Name) and context.id == var:
                return True
    return False


def _block_cleans(body: list[ast.stmt], var: str, cleanups: frozenset[str]) -> bool:
    return any(_stmt_cleans(stmt, var, cleanups) for stmt in body)


class _Tracked:
    """One acquisition bound to a local name, with its CFG node."""

    def __init__(
        self,
        var: str,
        label: str,
        cleanups: frozenset[str],
        stmt: ast.stmt,
        node: CFGNode,
    ) -> None:
        self.var = var
        self.label = label
        self.cleanups = cleanups
        self.stmt = stmt
        self.node = node


@register
class ResourcePathRule(Rule):
    id = "RPR009"
    name = "resource-leak-path"
    rationale = (
        "Shared-memory segments, pools, file handles, and tracer spans must "
        "be released on every control-flow path; a leak on the exception "
        "edge only shows up as /dev/shm corpses after a crash."
    )

    def check_module(self, module: LintModule, project: ProjectModel) -> Iterator[Violation]:
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(module.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for func in function_scopes(module.tree):
            yield from self._check_function(module, project, func, parents)
        yield from self._check_spans(module)

    # -- path-sensitive resource tracking -------------------------------------

    def _check_function(
        self,
        module: LintModule,
        project: ProjectModel,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        parents: dict[ast.AST, ast.AST],
    ) -> Iterator[Violation]:
        cfg = project.cfg(func)
        with_owned = self._with_context_ids(func)
        for node in cfg.nodes:
            stmt = node.stmt
            if stmt is None:
                continue
            if isinstance(stmt, ast.Expr):
                found = _acquisition(stmt.value)
                if found is not None and id(stmt.value) not in with_owned:
                    label, _ = found
                    yield Violation(
                        module.rel_path,
                        stmt.lineno,
                        stmt.col_offset,
                        self.id,
                        f"{label} acquired and immediately discarded; bind it "
                        "and release it, or use a with statement",
                    )
                continue
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            found = _acquisition(stmt.value)
            if found is None or id(stmt.value) in with_owned:
                continue
            label, cleanups = found
            target = stmt.targets[0]
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in ("self", "cls")
            ):
                yield from self._check_class_owned(
                    module, func, parents, stmt, target.attr, label, cleanups
                )
                continue
            if not isinstance(target, ast.Name):
                continue
            tracked = _Tracked(target.id, label, cleanups, stmt, node)
            yield from self._check_tracked(module, cfg, func, tracked)

    @staticmethod
    def _with_context_ids(func: ast.AST) -> set[int]:
        owned: set[int] = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                owned.update(id(item.context_expr) for item in node.items)
        return owned

    def _check_class_owned(
        self,
        module: LintModule,
        func: ast.AST,
        parents: dict[ast.AST, ast.AST],
        stmt: ast.stmt,
        attr: str,
        label: str,
        cleanups: frozenset[str],
    ) -> Iterator[Violation]:
        """``self.x = acquisition`` — the class must own the teardown."""
        node: ast.AST | None = parents.get(func)
        enclosing_class: ast.ClassDef | None = None
        while node is not None:
            if isinstance(node, ast.ClassDef):
                enclosing_class = node
                break
            node = parents.get(node)
        if enclosing_class is not None:
            for statement in enclosing_class.body:
                if (
                    isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and statement.name in _OWNERSHIP_METHODS
                    and _block_cleans_attr(statement.body, attr, cleanups)
                ):
                    return
        yield Violation(
            module.rel_path,
            stmt.lineno,
            stmt.col_offset,
            self.id,
            f"{label} stored on self.{attr} but no ownership method "
            f"({'/'.join(sorted(_OWNERSHIP_METHODS))}) releases it",
        )

    def _check_tracked(
        self,
        module: LintModule,
        cfg: CFG,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        tracked: _Tracked,
    ) -> Iterator[Violation]:
        if self._ownership_transferred(func, tracked):
            return
        cleanup_nodes = {
            node
            for node in cfg.nodes
            if node.stmt is not None
            and node is not tracked.node
            and _stmt_cleans(node.stmt, tracked.var, tracked.cleanups)
        }
        leak_path = self._exit_avoiding(tracked.node, cleanup_nodes, cfg)
        if leak_path:
            yield Violation(
                module.rel_path,
                tracked.stmt.lineno,
                tracked.stmt.col_offset,
                self.id,
                f"{tracked.label} {tracked.var!r} is not released on every "
                f"path to return ({'/'.join(sorted(tracked.cleanups))} "
                "missing on at least one branch)",
            )
            return
        unprotected = self._unprotected_raiser(tracked, cleanup_nodes)
        if unprotected is not None:
            yield Violation(
                module.rel_path,
                tracked.stmt.lineno,
                tracked.stmt.col_offset,
                self.id,
                f"{tracked.label} {tracked.var!r} leaks if line "
                f"{unprotected.lineno} raises; release it from a finally "
                "block or use a with statement",
            )

    @staticmethod
    def _ownership_transferred(
        func: ast.FunctionDef | ast.AsyncFunctionDef, tracked: _Tracked
    ) -> bool:
        """Return/yield/self-storage/container-deposit hands ownership on."""
        for node in ast.walk(func):
            if isinstance(node, ast.Return) and _contains_name(node.value, tracked.var):
                return True
            if isinstance(node, (ast.Yield, ast.YieldFrom)) and _contains_name(
                node.value, tracked.var
            ):
                return True
            if isinstance(node, ast.Assign) and node is not tracked.stmt:
                if isinstance(node.value, ast.Name) and node.value.id == tracked.var:
                    for target in node.targets:
                        if isinstance(target, (ast.Attribute, ast.Subscript)):
                            return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _DEPOSIT_METHODS
                and any(_contains_name(arg, tracked.var) for arg in node.args)
            ):
                return True
        return False

    @staticmethod
    def _exit_avoiding(
        start: CFGNode, cleanup_nodes: set[CFGNode], cfg: CFG
    ) -> bool:
        """Whether the normal exit is reachable without passing a cleanup."""
        seen: set[int] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            for succ in node.succs:
                if succ in cleanup_nodes:
                    continue
                if succ is cfg.exit:
                    return True
                if succ is cfg.raise_exit:
                    continue  # the exception edge is judged structurally
                stack.append(succ)
        return False

    def _unprotected_raiser(
        self, tracked: _Tracked, cleanup_nodes: set[CFGNode]
    ) -> CFGNode | None:
        """A node between acquisition and cleanup whose raise skips cleanup.

        Any statement containing a call can raise; it is protected when
        some lexically enclosing ``try`` (whose body it sits in) runs
        the cleanup from its ``finally`` or a handler.
        """
        seen: set[int] = set()
        stack = list(tracked.node.succs)
        while stack:
            node = stack.pop()
            if id(node) in seen or node in cleanup_nodes:
                continue
            seen.add(id(node))
            stack.extend(node.succs)
            stmt = node.stmt
            if stmt is None or not any(
                isinstance(inner, ast.Call) for inner in ast.walk(stmt)
            ):
                continue
            if not self._raise_protected(node, tracked):
                return node
        return None

    @staticmethod
    def _raise_protected(node: CFGNode, tracked: _Tracked) -> bool:
        for frame in node.enclosing_trys:
            if frame.region not in ("body", "orelse"):
                continue
            statement = frame.statement
            if _block_cleans(statement.finalbody, tracked.var, tracked.cleanups):
                return True
            if frame.region == "body":
                for handler in statement.handlers:
                    if _block_cleans(handler.body, tracked.var, tracked.cleanups):
                        return True
        return False

    # -- tracer spans ----------------------------------------------------------

    def _check_spans(self, module: LintModule) -> Iterator[Violation]:
        """Spans must be entered: ``with tracer.span(...)`` or ``__enter__``."""
        with_owned = self._with_context_ids(module.tree)
        entered: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    context = item.context_expr
                    if isinstance(context, ast.Name):
                        entered.add(context.id)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("__enter__", "__exit__")
                and isinstance(node.func.value, ast.Name)
            ):
                entered.add(node.func.value.id)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Expr) and self._is_span_call(node.value):
                yield Violation(
                    module.rel_path,
                    node.lineno,
                    node.col_offset,
                    self.id,
                    "tracer span discarded without being entered; it records "
                    "nothing — use 'with tracer.span(...)'",
                )
            elif (
                isinstance(node, ast.Assign)
                and self._is_span_call(node.value)
                and id(node.value) not in with_owned
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id not in entered
            ):
                yield Violation(
                    module.rel_path,
                    node.lineno,
                    node.col_offset,
                    self.id,
                    f"tracer span {node.targets[0].id!r} is never entered; "
                    "its timer never starts — use 'with tracer.span(...)'",
                )

    @staticmethod
    def _is_span_call(value: ast.expr) -> bool:
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "span"
        )


def _block_cleans_attr(
    body: list[ast.stmt], attr: str, cleanups: frozenset[str]
) -> bool:
    """Whether any statement calls a cleanup method on ``self.<attr>``."""
    for statement in body:
        for node in ast.walk(statement):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in cleanups
                and isinstance(node.func.value, ast.Attribute)
                and node.func.value.attr == attr
                and isinstance(node.func.value.value, ast.Name)
                and node.func.value.value.id == "self"
            ):
                return True
    return False
