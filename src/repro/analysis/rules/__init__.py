"""The replint rule set — importing this package registers every rule.

Each module houses one ``RPR`` rule; the framework's ``@register``
decorator adds it to :data:`repro.analysis.framework.REGISTRY` at import
time, so dropping a new ``rules/*.py`` file with a decorated class is
all it takes to extend the linter.
"""

from repro.analysis.rules import (  # noqa: F401 - imported for registration
    backend_drift,
    clock_discipline,
    float_equality,
    fork_safety,
    hygiene,
    no_print,
    nondet_flow,
    numpy_guard,
    ordered_iteration,
    picklable,
    resource_paths,
    shared_memory,
    surface_drift,
)
