"""RPR010 — unordered containers flowing across calls into float sums.

RPR003 catches ``sum(float_values)`` over a set or dict *within one
function*: the kinds it knows come from literals, constructors, and
annotations in the same scope.  The bug that survives RPR003 is the
one split across a call boundary — a helper returns a set (or dict),
and the caller, three files away, accumulates floats over it:

    def occupied_cells(table):          # producer (another module)
        return {cell for cell in ...}   # a set

    total = sum(weights[c] for c in occupied_cells(t))   # consumer

The iteration order — and therefore the float sum, and therefore the
last-ulp bit pattern the backend-equivalence suite compares — now
depends on set hashing.  This rule chases the producer through the
project call graph: every project function gets a *returned-kind*
verdict (set / dict / ordered / unknown, from its return annotation
and return statements), and consumers are re-checked with variables
bound from such calls added to the kind environment.

Only call-derived kinds are reported here; anything inferable locally
is RPR003's jurisdiction, so a violation is reported exactly once.
The rule is ``cacheable = False``: its verdict on one file changes
when a *producer* in another file changes.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import (
    SUM_FUNCTIONS,
    accumulates,
    annotation_kind,
    call_name,
    infer_kinds,
    is_int_literal,
    scope_statements,
    unwrap_transparent,
    value_kind,
)
from repro.analysis.framework import LintModule, Rule, Violation, register
from repro.analysis.model.project import ProjectModel
from repro.analysis.model.symbols import FunctionInfo, ModuleSymbols


def _returned_kind(info: FunctionInfo) -> str | None:
    """``"set"``/``"dict"`` when the function's returns are unordered.

    The return annotation wins; otherwise every ``return <value>`` is
    inspected.  A ``sorted(...)`` return is an explicit ordering and
    clears the function even if another branch returns a set — mixed
    returns are ambiguous enough that flagging them would be noise.
    """
    annotated = annotation_kind(info.node.returns)
    if annotated is not None:
        return annotated
    kinds = infer_kinds(info.node)
    verdict: str | None = None
    for node in scope_statements(info.node.body):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        value = node.value
        if isinstance(value, ast.Call) and call_name(value.func) == "sorted":
            return None
        kind = value_kind(value)
        if kind is None and isinstance(value, ast.Name):
            kind = kinds.get(value.id)
        if kind is not None:
            verdict = verdict or kind
    return verdict


def _producer_kinds(project: ProjectModel) -> dict[str, str]:
    """qname -> returned kind, computed once per lint run."""
    cached = getattr(project, "_rpr010_producers", None)
    if cached is None:
        cached = {}
        for qname, info in project.symbols.by_qname.items():
            kind = _returned_kind(info)
            if kind is not None:
                cached[qname] = kind
        project._rpr010_producers = cached  # type: ignore[attr-defined]
    return cached


@register
class NondeterministicFlowRule(Rule):
    id = "RPR010"
    name = "cross-function-unordered-flow"
    rationale = (
        "A float accumulation over a set/dict returned by another function "
        "is order-nondeterministic across backends even when the consumer "
        "file looks clean in isolation."
    )
    cacheable = False  # a producer edit elsewhere changes this file's verdict

    def check_module(self, module: LintModule, project: ProjectModel) -> Iterator[Violation]:
        symbols = project.symbols.module(module.rel_path)
        if symbols is None:
            return
        producers = _producer_kinds(project)
        scopes: list[tuple[ast.AST, str | None]] = [(module.tree, None)]
        for info in symbols.functions.values():
            scopes.append((info.node, info.class_name))
        for scope, class_name in scopes:
            yield from self._check_scope(
                module, project, symbols, producers, scope, class_name
            )

    def _resolve_call(
        self,
        project: ProjectModel,
        symbols: ModuleSymbols,
        producers: dict[str, str],
        expr: ast.expr,
        class_name: str | None,
    ) -> tuple[str, str] | None:
        """``(kind, producer qname)`` when ``expr`` calls an unordered producer."""
        expr = unwrap_transparent(expr)
        if not isinstance(expr, ast.Call):
            return None
        name = call_name(expr.func)
        if name is None:
            return None
        info = project.symbols.resolve(symbols, name, class_name=class_name)
        if info is None:
            return None
        kind = producers.get(info.qname)
        if kind is None:
            return None
        return kind, info.qname

    def _check_scope(
        self,
        module: LintModule,
        project: ProjectModel,
        symbols: ModuleSymbols,
        producers: dict[str, str],
        scope: ast.AST,
        class_name: str | None,
    ) -> Iterator[Violation]:
        body = scope.body if hasattr(scope, "body") else []
        local_kinds = infer_kinds(scope)  # RPR003's jurisdiction
        # Variables bound from calls into unordered producers.
        flowed: dict[str, tuple[str, str]] = {}
        for node in scope_statements(body):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and target.id not in local_kinds:
                    resolved = self._resolve_call(
                        project, symbols, producers, node.value, class_name
                    )
                    if resolved is not None:
                        flowed[target.id] = resolved

        def flowed_reason(expr: ast.expr) -> str | None:
            expr = unwrap_transparent(expr)
            if isinstance(expr, ast.Name) and expr.id in flowed:
                kind, producer = flowed[expr.id]
                return f"{kind} returned by {producer}()"
            direct = self._resolve_call(project, symbols, producers, expr, class_name)
            if direct is not None:
                kind, producer = direct
                return f"{kind} returned by {producer}()"
            return None

        for node in scope_statements(body):
            if isinstance(node, ast.Call) and call_name(node.func) in SUM_FUNCTIONS:
                if not node.args:
                    continue
                argument = node.args[0]
                if isinstance(argument, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                    if is_int_literal(argument.elt):
                        continue  # pure counting is exact in any order
                    reason = flowed_reason(argument.generators[0].iter)
                else:
                    reason = flowed_reason(argument)
                if reason:
                    yield Violation(
                        module.rel_path,
                        node.lineno,
                        node.col_offset,
                        self.id,
                        f"order-sensitive sum over a {reason}; sort before "
                        "summing, or return a canonical order from the producer",
                    )
            elif isinstance(node, ast.For):
                reason = flowed_reason(node.iter)
                if reason and accumulates(node.body):
                    yield Violation(
                        module.rel_path,
                        node.lineno,
                        node.col_offset,
                        self.id,
                        f"loop over a {reason} accumulates order-sensitively; "
                        "iterate sorted(...) for a canonical order",
                    )
