"""Small AST helpers shared by the replint rules."""

from __future__ import annotations

import ast
from collections.abc import Iterator

__all__ = [
    "call_name",
    "constant_strings",
    "function_scopes",
    "unwrap_transparent",
]


def call_name(node: ast.expr) -> str | None:
    """Dotted name of a callable expression (``Name`` / ``Attribute``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = call_name(node.value)
        return f"{base}.{node.attr}" if base is not None else node.attr
    return None


def constant_strings(node: ast.expr) -> list[str] | None:
    """The string elements of a tuple/list literal, or None if not one."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values: list[str] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        values.append(element.value)
    return values


def function_scopes(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in the module, any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def unwrap_transparent(node: ast.expr) -> ast.expr:
    """Strip wrappers that preserve iteration order (list/tuple/enumerate/reversed).

    ``list(s)`` over a set is exactly as unordered as ``s`` itself, so
    rules about unordered iteration must see through such calls.
    ``sorted()`` is *not* transparent — it establishes an order.
    """
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "tuple", "iter", "enumerate", "reversed")
        and node.args
    ):
        node = node.args[0]
    return node
