"""Small AST helpers shared by the replint rules.

Besides the generic name/literal helpers, this module hosts the
container-kind inference (which expressions denote sets and dicts, and
therefore iterate in no canonical order) that both the intra-procedural
RPR003 and the cross-function RPR010 build on.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

__all__ = [
    "DICT_TYPES",
    "EMIT_METHODS",
    "SET_TYPES",
    "SUM_FUNCTIONS",
    "accumulates",
    "annotation_kind",
    "call_name",
    "constant_strings",
    "function_scopes",
    "infer_kinds",
    "is_int_literal",
    "scope_statements",
    "unordered_reason",
    "unwrap_transparent",
    "value_kind",
]

SET_TYPES = {"set", "frozenset", "Set", "AbstractSet", "MutableSet", "FrozenSet"}
DICT_TYPES = {
    "dict",
    "Dict",
    "Mapping",
    "MutableMapping",
    "DefaultDict",
    "defaultdict",
    "Counter",
}
SUM_FUNCTIONS = {"sum", "fsum", "math.fsum"}
EMIT_METHODS = {"append", "extend", "insert"}


def call_name(node: ast.expr) -> str | None:
    """Dotted name of a callable expression (``Name`` / ``Attribute``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = call_name(node.value)
        return f"{base}.{node.attr}" if base is not None else node.attr
    return None


def constant_strings(node: ast.expr) -> list[str] | None:
    """The string elements of a tuple/list literal, or None if not one."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values: list[str] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        values.append(element.value)
    return values


def function_scopes(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in the module, any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def unwrap_transparent(node: ast.expr) -> ast.expr:
    """Strip wrappers that preserve iteration order (list/tuple/enumerate/reversed).

    ``list(s)`` over a set is exactly as unordered as ``s`` itself, so
    rules about unordered iteration must see through such calls.
    ``sorted()`` is *not* transparent — it establishes an order.
    """
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "tuple", "iter", "enumerate", "reversed")
        and node.args
    ):
        node = node.args[0]
    return node


# -- container-kind inference -------------------------------------------------


def annotation_kind(annotation: ast.expr | None) -> str | None:
    """``"set"``/``"dict"`` when an annotation names an unordered container."""
    if annotation is None:
        return None
    base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
    name = call_name(base)
    if name is None:
        return None
    last = name.split(".")[-1]
    if last in SET_TYPES:
        return "set"
    if last in DICT_TYPES:
        return "dict"
    return None


def value_kind(value: ast.expr | None) -> str | None:
    """``"set"``/``"dict"`` when an expression builds an unordered container."""
    if value is None:
        return None
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, ast.Call):
        name = call_name(value.func)
        if name is not None:
            last = name.split(".")[-1]
            if last in ("set", "frozenset"):
                return "set"
            if last in ("dict", "defaultdict", "Counter"):
                return "dict"
    return None


def scope_statements(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function/class scopes."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Lambda):
                continue
            stack.append(child)


def infer_kinds(
    scope: ast.Module | ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, str]:
    """Variable name -> ``"set"``/``"dict"`` from annotations and assignments."""
    kinds: dict[str, str] = {}
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            kind = annotation_kind(arg.annotation)
            if kind:
                kinds[arg.arg] = kind
    for node in scope_statements(scope.body):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            kind = annotation_kind(node.annotation) or value_kind(node.value)
            if kind:
                kinds[node.target.id] = kind
        elif isinstance(node, ast.Assign):
            kind = value_kind(node.value)
            if kind:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        kinds[target.id] = kind
    return kinds


def unordered_reason(expr: ast.expr, kinds: dict[str, str]) -> str | None:
    """A human description of why ``expr`` iterates in no canonical order."""
    expr = unwrap_transparent(expr)
    direct = value_kind(expr)
    if direct == "set" or isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set expression"
    if isinstance(expr, ast.Name):
        kind = kinds.get(expr.id)
        if kind == "set":
            return f"set {expr.id!r}"
        if kind == "dict":
            return f"dict {expr.id!r} (caller-dependent insertion order)"
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in ("keys", "values", "items")
        and isinstance(expr.func.value, ast.Name)
        and kinds.get(expr.func.value.id) == "dict"
    ):
        owner = expr.func.value.id
        return f"dict {owner!r}.{expr.func.attr}() (caller-dependent insertion order)"
    return None


def is_int_literal(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Constant) and type(expr.value) is int


def accumulates(body: list[ast.stmt]) -> bool:
    """Whether a loop body accumulates via ``+=``-style ops or emission."""
    for node in scope_statements(body):
        if isinstance(node, ast.AugAssign) and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
        ):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in EMIT_METHODS
        ):
            return True
    return False
