"""replint — the project's semantic invariant checker.

The miner's guarantees rest on invariants the type system cannot see:
bit-identical contingency tables across all counting backends, canonical
float summation order, a pure-Python core that degrades gracefully when
NumPy is absent, and parallel machinery that never leaks shared-memory
segments or ships fork-unsafe state to workers.  ``replint`` encodes
those invariants as lint rules over the syntax tree *and* over a
project-wide semantic model, so a regression is caught at review time
instead of deep inside a differential test failure.

Architecture (bottom to top):

* :class:`LintModule` — one parsed file plus its suppression directives.
* :class:`~repro.analysis.model.ProjectModel` — the whole-project view:
  symbol table, import graph, approximate call graph, and per-function
  control-flow graphs with reaching definitions
  (:mod:`repro.analysis.model`, :mod:`repro.analysis.flow`).
* :class:`Rule` — one invariant check.  Module-scope rules see one
  file (plus the project model for cross-file context); project-scope
  rules see only the model.  Rules self-register into :data:`REGISTRY`
  via the :func:`register` decorator.
* :func:`lint` — walks a file tree, parses each module once, builds the
  project model, runs every applicable rule (consulting the incremental
  cache when one is given), applies suppressions, and returns a
  :class:`LintReport`.

Suppressions are per line::

    risky_line()  # replint: disable=RPR001 -- why this site is safe

The ``-- justification`` clause is mandatory: a suppression without one
(or one that no longer matches any violation, or one naming a rule id
that no longer exists) is itself reported under the reserved id
``RPR000``, so the tree can never silently accumulate undocumented or
stale escapes.  The comment may also sit alone on the line directly
above the flagged statement.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.model.project import ProjectModel

__all__ = [
    "META_RULE_ID",
    "LintModule",
    "LintReport",
    "Rule",
    "REGISTRY",
    "Suppression",
    "Violation",
    "register",
    "lint",
]

# Reserved id for problems with replint directives themselves
# (undocumented, stale, or unknown-rule suppressions, unparseable files).
META_RULE_ID = "RPR000"

_SUPPRESS_RE = re.compile(
    r"replint:\s*disable=(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"(?:\s+--\s*(?P<why>\S.*?))?\s*$"
)

# Directories never walked into, by name.
_SKIP_DIR_NAMES = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    "build",
    "dist",
    ".eggs",
}

# Tree-relative prefixes excluded from directory walks (fixture files
# violate rules on purpose; explicit file arguments still lint them).
_SKIP_REL_PREFIXES = ("tests/analysis/fixtures",)


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class Suppression:
    """A ``# replint: disable=...`` directive found in one file."""

    line: int
    rules: frozenset[str]
    justification: str
    used: bool = False


class LintModule:
    """One parsed source file plus its replint directives.

    ``parse=False`` builds a lightweight view (suppressions only, no
    AST) — the incremental cache uses it on full-cache hits where no
    rule will run but suppression bookkeeping still must.
    """

    def __init__(self, path: Path, rel_path: str, source: str, parse: bool = True) -> None:
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree: ast.Module = (
            ast.parse(source, filename=rel_path) if parse else None  # type: ignore[assignment]
        )
        self.suppressions = _collect_suppressions(source)

    def suppression_for(self, line: int, rule: str) -> Suppression | None:
        """The directive covering ``rule`` on ``line``, if any.

        A directive applies to its own line or to the line directly
        below it (the standalone-comment-above form).
        """
        for at in (line, line - 1):
            directive = self.suppressions.get(at)
            if directive is not None and rule in directive.rules:
                return directive
        return None


def _collect_suppressions(source: str) -> dict[int, Suppression]:
    """Map line number -> directive, read from the comment tokens.

    Tokenizing (rather than regex-scanning raw lines) means directives
    inside string literals are never mistaken for real ones.
    """
    directives: dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            rules = frozenset(
                part.strip() for part in match.group("rules").split(",") if part.strip()
            )
            directives[token.start[0]] = Suppression(
                line=token.start[0],
                rules=rules,
                justification=(match.group("why") or "").strip(),
            )
    except tokenize.TokenError:
        # Truncated/odd sources: keep the directives seen so far — the
        # AST parse will report anything genuinely broken.
        return directives
    return directives


class Rule:
    """Base class for one invariant check.

    Subclasses set ``id``/``name``/``rationale`` and implement
    :meth:`check_module` (scope ``"module"``) or :meth:`check_project`
    (scope ``"project"``, for cross-file consistency).  Module rules
    receive the :class:`~repro.analysis.model.ProjectModel` alongside
    their file; rules whose verdict on a file can change when *other*
    files change must set ``cacheable = False`` so the incremental
    cache re-runs them on any project change.

    ``dir_scope`` restricts a rule to tree-relative path prefixes;
    ``dir_exempt`` carves exemptions out of that scope.  Files passed
    to the linter explicitly (not discovered by a directory walk)
    bypass the restriction so fixtures and one-off files can exercise
    every rule.
    """

    id: str = ""
    name: str = ""
    rationale: str = ""
    scope: str = "module"
    cacheable: bool = True
    dir_scope: tuple[str, ...] | None = None
    dir_exempt: tuple[str, ...] = ()

    def applies_to(self, rel_path: str, explicit: bool = False) -> bool:
        normalized = rel_path.replace("\\", "/")
        if any(normalized.startswith(prefix) for prefix in self.dir_exempt):
            return False
        if explicit or self.dir_scope is None:
            return True
        return any(normalized.startswith(prefix) for prefix in self.dir_scope)

    def check_module(self, module: LintModule, project: ProjectModel) -> Iterable[Violation]:
        return ()

    def check_project(self, project: ProjectModel) -> Iterable[Violation]:
        return ()


REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (instantiated once) to the registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    REGISTRY[cls.id] = cls()
    return cls


@dataclass
class LintReport:
    """Everything one lint run produced."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    files_reanalyzed: int = 0  # files whose module rules actually ran

    @property
    def clean(self) -> bool:
        return not self.violations

    def counts(self) -> dict[str, int]:
        """Violations per rule id, sorted by id."""
        tally: dict[str, int] = {}
        for violation in self.violations:
            tally[violation.rule] = tally.get(violation.rule, 0) + 1
        return dict(sorted(tally.items()))

    def exit_code(self) -> int:
        return 0 if self.clean else 1


def _iter_files(paths: Sequence[Path], root: Path) -> Iterator[tuple[Path, bool]]:
    """Yield ``(file, explicit)`` pairs; explicit files bypass excludes."""
    for path in paths:
        if path.is_file():
            yield path, True
            continue
        # A directory named on the command line that itself lives inside
        # an excluded subtree (e.g. a fixture directory) was targeted on
        # purpose: walk it anyway and treat its files as explicit, so it
        # cannot silently report clean.
        inside_excluded = any(
            _rel_path(path, root).startswith(prefix)
            for prefix in _SKIP_REL_PREFIXES
        )
        for file in sorted(path.rglob("*.py")):
            if any(
                part in _SKIP_DIR_NAMES or part.startswith(".")
                for part in file.relative_to(path).parts[:-1]
            ):
                continue
            if not inside_excluded and any(
                _rel_path(file, root).startswith(prefix)
                for prefix in _SKIP_REL_PREFIXES
            ):
                continue
            yield file, inside_excluded


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def _resolve_rules(
    select: Iterable[str] | None, ignore: Iterable[str] | None
) -> list[Rule]:
    unknown = (set(select or ()) | set(ignore or ())) - set(REGISTRY)
    if unknown:
        raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
    chosen = set(select) if select is not None else set(REGISTRY)
    chosen -= set(ignore or ())
    return [REGISTRY[rule_id] for rule_id in sorted(chosen)]


def lint(
    paths: Sequence[Path | str] | None = None,
    root: Path | str | None = None,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    strict: bool = False,
    cache_path: Path | str | None = None,
) -> LintReport:
    """Lint files or trees and return the full report.

    ``paths`` defaults to ``root`` (default: the working directory).
    Directory arguments are walked recursively with the standard
    excludes; file arguments are always linted, with every selected
    rule.  ``select``/``ignore`` filter by rule id.

    ``strict`` reports stale suppressions even under ``select``/
    ``ignore`` (normally skipped, since a narrowed run cannot tell a
    stale directive from one whose rule simply did not run).

    ``cache_path`` enables the incremental content-hash cache (see
    :mod:`repro.analysis.incremental`): unchanged files skip their
    module-scope rules, and the project-scope/semantic results are
    reused when *no* file changed.  The cache only engages for full
    default-selection runs; any ``select``/``ignore`` bypasses it.
    """
    from repro.analysis.incremental import LintCache

    root = Path(root) if root is not None else Path.cwd()
    targets = [Path(p) for p in paths] if paths else [root]
    rules = _resolve_rules(select, ignore)

    cache: LintCache | None = None
    if cache_path is not None and select is None and ignore is None and paths is None:
        # The cache models exactly one shape of run: the full default
        # walk with every rule.  Explicit paths or narrowed selections
        # bypass it rather than poison it.
        cache = LintCache.load(Path(cache_path))

    report = LintReport()
    raw: list[Violation] = []
    modules: list[tuple[LintModule, bool]] = []

    # Pass 1: read and hash every file; decide what needs re-analysis.
    sources: list[tuple[Path, str, str, bool]] = []  # (file, rel, source, explicit)
    unreadable: list[Violation] = []
    for file, explicit in _iter_files(targets, root):
        rel = _rel_path(file, root)
        try:
            source = file.read_text(encoding="utf-8")
        except (UnicodeDecodeError, OSError) as error:
            unreadable.append(Violation(rel, 1, 0, META_RULE_ID, f"could not parse file: {error}"))
            report.files_checked += 1
            continue
        sources.append((file, rel, source, explicit))
        report.files_checked += 1
    raw.extend(unreadable)

    file_hashes = {rel: LintCache.content_hash(source) for _, rel, source, _ in sources}
    tree_fresh = (
        cache is not None
        and not unreadable
        and cache.tree_matches(file_hashes)
    )

    # Pass 2: parse.  On a full tree hit nothing semantic will run, so
    # files parse lazily (suppressions only); otherwise everything
    # parses — the project model needs every AST.
    for file, rel, source, explicit in sources:
        cached_entry = cache.file_entry(rel, file_hashes[rel]) if cache else None
        if tree_fresh and cached_entry is not None:
            module = LintModule(file, rel, source, parse=False)
            modules.append((module, explicit))
            raw.extend(cached_entry.violations)
            continue
        try:
            module = LintModule(file, rel, source)
        except SyntaxError as error:
            line = getattr(error, "lineno", None) or 1
            parse_violation = Violation(
                rel, int(line), 0, META_RULE_ID, f"could not parse file: {error}"
            )
            raw.append(parse_violation)
            if cache is not None:
                cache.store_file(rel, file_hashes[rel], [parse_violation], parse_error=True)
            continue
        modules.append((module, explicit))

    project = ProjectModel(
        tuple(module for module, _ in modules if module.tree is not None), root=root
    )

    # Pass 3: module-scope rules (cache-aware per file).
    if not tree_fresh:
        for module, explicit in modules:
            entry = cache.file_entry(module.rel_path, file_hashes[module.rel_path]) if cache else None
            if entry is not None and not explicit:
                raw.extend(entry.violations)
                continue
            found: list[Violation] = []
            for rule in rules:
                if rule.scope != "module" or not rule.cacheable:
                    continue
                if rule.applies_to(module.rel_path, explicit):
                    found.extend(rule.check_module(module, project))
            raw.extend(found)
            report.files_reanalyzed += 1
            if cache is not None and not explicit:
                cache.store_file(module.rel_path, file_hashes[module.rel_path], found)

    # Pass 4: project-scope rules and non-cacheable (semantic) module
    # rules — these see cross-file state, so any change re-runs them all.
    if tree_fresh and cache is not None:
        raw.extend(cache.project_violations())
    else:
        semantic: list[Violation] = []
        for rule in rules:
            if rule.scope == "project":
                semantic.extend(rule.check_project(project))
            elif rule.scope == "module" and not rule.cacheable:
                for module, explicit in modules:
                    if rule.applies_to(module.rel_path, explicit):
                        semantic.extend(rule.check_module(module, project))
        raw.extend(semantic)
        if cache is not None:
            cache.store_project(file_hashes, semantic)

    # Pass 5: suppressions.
    by_rel = {module.rel_path: module for module, _ in modules}
    for violation in raw:
        module = by_rel.get(violation.path)
        directive = (
            module.suppression_for(violation.line, violation.rule) if module else None
        )
        if directive is not None:
            directive.used = True
            continue
        report.violations.append(violation)

    # Directive hygiene: every suppression must carry a justification,
    # name only rules that exist, and still match a violation (else it
    # is stale and misleading).
    check_stale = (select is None and ignore is None) or strict
    for module, _ in modules:
        for directive in module.suppressions.values():
            unknown = directive.rules - set(REGISTRY)
            if unknown:
                report.violations.append(
                    Violation(
                        module.rel_path,
                        directive.line,
                        0,
                        META_RULE_ID,
                        "suppression names unknown rule id(s) "
                        f"(renamed or removed?): {', '.join(sorted(unknown))}",
                    )
                )
            if not directive.justification:
                report.violations.append(
                    Violation(
                        module.rel_path,
                        directive.line,
                        0,
                        META_RULE_ID,
                        "suppression without a '-- justification' clause: "
                        + ", ".join(sorted(directive.rules)),
                    )
                )
            elif not directive.used:
                suppressed_selected = directive.rules & {rule.id for rule in rules}
                if suppressed_selected and check_stale:
                    report.violations.append(
                        Violation(
                            module.rel_path,
                            directive.line,
                            0,
                            META_RULE_ID,
                            "stale suppression (no matching violation): "
                            + ", ".join(sorted(directive.rules)),
                        )
                    )

    if cache is not None:
        cache.save()
    report.violations.sort()
    return report
