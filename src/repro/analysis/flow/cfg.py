"""A statement-level control-flow graph for one function body.

Nodes are statements (compound statements contribute a *header* node
for their test/iterator/context expression, then their bodies hang off
it); edges are the normal control-flow successors.  ``entry`` and
``exit`` are synthetic: ``exit`` is reached by every ``return`` and by
falling off the end, ``raise_exit`` by every explicit ``raise`` that no
lexically enclosing handler region absorbs.

Exception flow is modelled two ways, matching how the rules consume it:

* **edges into handlers** — every node inside a ``try`` body gets an
  edge to each of its handlers (an exception can interrupt any
  statement), so path reachability sees the handler paths;
* **structural protection** — every node records the ``try``
  statements lexically enclosing it and which region of each it sits
  in (:attr:`CFGNode.enclosing_trys`).  A rule asking "if this
  statement raises, does cleanup still run?" checks those frames for a
  ``finally`` (or handler) that performs the cleanup — far more robust
  than trying to materialise an edge for every potential raise.

The graph is deliberately conservative where Python is dynamic: a
``while`` header can always exit the loop, a ``for`` can run zero
times, exceptions can occur at any statement of a ``try`` body.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["CFG", "CFGNode", "TryFrame", "build_cfg"]


@dataclass(frozen=True)
class TryFrame:
    """One ``try`` statement enclosing a node, with the region it is in.

    ``region`` is ``"body"`` (handlers and finally both apply),
    ``"orelse"`` (only finally applies), ``"handler"`` or
    ``"finally"`` (only *outer* trys apply).
    """

    statement: ast.Try
    region: str


@dataclass(eq=False)  # identity semantics: nodes live in sets and edge lists
class CFGNode:
    """One statement (or synthetic entry/exit) in the graph."""

    stmt: ast.stmt | None
    kind: str = "stmt"  # "stmt" | "entry" | "exit" | "raise"
    succs: list["CFGNode"] = field(default_factory=list)
    preds: list["CFGNode"] = field(default_factory=list)
    enclosing_trys: tuple[TryFrame, ...] = ()

    @property
    def lineno(self) -> int:
        return self.stmt.lineno if self.stmt is not None else 0

    def link(self, succ: "CFGNode") -> None:
        if succ not in self.succs:
            self.succs.append(succ)
            succ.preds.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.kind if self.stmt is None else type(self.stmt).__name__
        return f"CFGNode({label}@{self.lineno})"


class CFG:
    """The graph for one function: entry, exit, raise-exit, all nodes."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.entry = CFGNode(None, kind="entry")
        self.exit = CFGNode(None, kind="exit")
        self.raise_exit = CFGNode(None, kind="raise")
        self.nodes: list[CFGNode] = [self.entry, self.exit, self.raise_exit]
        self._by_stmt: dict[int, CFGNode] = {}

    def node_of(self, stmt: ast.stmt) -> CFGNode | None:
        """The node created for ``stmt`` (header node for compounds)."""
        return self._by_stmt.get(id(stmt))

    def _new_node(self, stmt: ast.stmt, trys: tuple[TryFrame, ...]) -> CFGNode:
        node = CFGNode(stmt, enclosing_trys=trys)
        self.nodes.append(node)
        self._by_stmt[id(stmt)] = node
        return node


class _LoopFrame:
    """Collects break targets and the continue destination for one loop."""

    def __init__(self, header: CFGNode) -> None:
        self.header = header
        self.breaks: list[CFGNode] = []


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG of one function definition."""
    cfg = CFG(func)
    builder = _Builder(cfg)
    dangling = builder.block(func.body, [cfg.entry], trys=(), loops=[])
    for node in dangling:
        node.link(cfg.exit)
    return cfg


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg

    def block(
        self,
        statements: list[ast.stmt],
        preds: list[CFGNode],
        trys: tuple[TryFrame, ...],
        loops: list[_LoopFrame],
    ) -> list[CFGNode]:
        """Wire ``statements`` after ``preds``; return the dangling exits."""
        current = preds
        for statement in statements:
            if not current:
                break  # unreachable code after return/raise/break
            current = self.statement(statement, current, trys, loops)
        return current

    def statement(
        self,
        stmt: ast.stmt,
        preds: list[CFGNode],
        trys: tuple[TryFrame, ...],
        loops: list[_LoopFrame],
    ) -> list[CFGNode]:
        node = self.cfg._new_node(stmt, trys)
        for pred in preds:
            pred.link(node)

        if isinstance(stmt, ast.Return):
            node.link(self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            self._raise_edges(node, trys)
            return []
        if isinstance(stmt, ast.Break):
            if loops:
                loops[-1].breaks.append(node)
            return []
        if isinstance(stmt, ast.Continue):
            if loops:
                node.link(loops[-1].header)
            return []
        if isinstance(stmt, ast.If):
            then_exits = self.block(stmt.body, [node], trys, loops)
            if stmt.orelse:
                else_exits = self.block(stmt.orelse, [node], trys, loops)
            else:
                else_exits = [node]  # the false branch falls through
            return then_exits + else_exits
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            frame = _LoopFrame(node)
            body_exits = self.block(stmt.body, [node], trys, [*loops, frame])
            for tail in body_exits:
                tail.link(node)  # back edge
            after: list[CFGNode] = [node, *frame.breaks]
            if stmt.orelse:
                after = self.block(stmt.orelse, [node], trys, loops) + frame.breaks
            return after
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.block(stmt.body, [node], trys, loops)
        if isinstance(stmt, ast.Try):
            return self._try_statement(stmt, node, trys, loops)
        # Simple statement: falls through.
        return [node]

    def _raise_edges(self, node: CFGNode, trys: tuple[TryFrame, ...]) -> None:
        """A raise goes to the innermost enclosing handlers, else out."""
        for frame in reversed(trys):
            if frame.region == "body" and frame.statement.handlers:
                for handler in frame.statement.handlers:
                    target = self.cfg.node_of(handler.body[0]) if handler.body else None
                    if target is not None:
                        node.link(target)
                return
        node.link(self.cfg.raise_exit)

    def _try_statement(
        self,
        stmt: ast.Try,
        node: CFGNode,
        trys: tuple[TryFrame, ...],
        loops: list[_LoopFrame],
    ) -> list[CFGNode]:
        body_trys = (*trys, TryFrame(stmt, "body"))
        before = len(self.cfg.nodes)
        body_exits = self.block(stmt.body, [node], body_trys, loops)
        body_nodes = self.cfg.nodes[before:]

        handler_exits: list[CFGNode] = []
        handler_trys = (*trys, TryFrame(stmt, "handler"))
        for handler in stmt.handlers:
            # An exception can interrupt any statement of the body, so
            # every body node is a predecessor of the handler.
            sources = body_nodes or [node]
            exits = self.block(handler.body, list(sources), handler_trys, loops)
            handler_exits.extend(exits)

        orelse_trys = (*trys, TryFrame(stmt, "orelse"))
        orelse_exits = (
            self.block(stmt.orelse, body_exits, orelse_trys, loops)
            if stmt.orelse
            else body_exits
        )

        if stmt.finalbody:
            finally_trys = (*trys, TryFrame(stmt, "finally"))
            sources = orelse_exits + handler_exits
            if not sources:
                sources = [node]  # every path raised/returned; finally still runs
            return self.block(stmt.finalbody, sources, finally_trys, loops)
        return orelse_exits + handler_exits
