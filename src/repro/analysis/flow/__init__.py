"""Intra-procedural control- and data-flow for replint's semantic rules.

* :mod:`repro.analysis.flow.cfg` — a statement-level control-flow graph
  per function, with explicit normal edges (branches, loops, returns,
  raises, break/continue) and *structural* exception information: each
  node knows the ``try`` statements and ``with`` blocks enclosing it,
  which is what the leak rule needs to reason about exception edges
  without modelling every possible raise site as a graph edge.
* :mod:`repro.analysis.flow.dataflow` — reaching definitions over that
  CFG (a standard forward worklist analysis).
"""

from repro.analysis.flow.cfg import CFG, CFGNode, build_cfg
from repro.analysis.flow.dataflow import reaching_definitions

__all__ = ["CFG", "CFGNode", "build_cfg", "reaching_definitions"]
