"""Reaching definitions over the statement CFG.

A *definition* is any statement that binds a name: assignments,
augmented/annotated assignments, ``for`` targets, ``with ... as``
items, and the function's own parameters (attributed to the entry
node).  The analysis is the textbook forward may-analysis: a
definition of ``v`` at node ``d`` reaches node ``n`` if some CFG path
from ``d`` to ``n`` has no intervening redefinition of ``v``.

Rules use this to walk a variable back to the call that produced it —
"which acquisition does ``pool`` name at this submission site?" —
without pretending to be a full interpreter.
"""

from __future__ import annotations

import ast

from repro.analysis.flow.cfg import CFG, CFGNode

__all__ = ["definitions_in", "reaching_definitions"]


def definitions_in(stmt: ast.stmt) -> frozenset[str]:
    """Names the statement (re)binds, compound headers included."""
    names: set[str] = set()
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            names.update(_target_names(target))
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        names.update(_target_names(stmt.target))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        names.update(_target_names(stmt.target))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                names.update(_target_names(item.optional_vars))
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        names.add(stmt.name)
    return frozenset(names)


def _target_names(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for element in target.elts:
            names.update(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return set()  # attribute/subscript targets bind no local name


def reaching_definitions(cfg: CFG) -> dict[CFGNode, dict[str, frozenset[CFGNode]]]:
    """For each node: variable -> the definition nodes reaching its *entry*.

    The function's parameters count as definitions at ``cfg.entry``.
    """
    params: set[str] = set()
    args = cfg.func.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        params.add(arg.arg)
    if args.vararg is not None:
        params.add(args.vararg.arg)
    if args.kwarg is not None:
        params.add(args.kwarg.arg)

    gen: dict[CFGNode, frozenset[str]] = {}
    for node in cfg.nodes:
        if node is cfg.entry:
            gen[node] = frozenset(params)
        elif node.stmt is not None:
            gen[node] = definitions_in(node.stmt)
        else:
            gen[node] = frozenset()

    # in[n] = union over preds p of out[p]; out[n] = gen[n] at n union
    # (in[n] minus kills).  A node kills every older def of the names it
    # generates.
    in_sets: dict[CFGNode, dict[str, frozenset[CFGNode]]] = {
        node: {} for node in cfg.nodes
    }
    out_sets: dict[CFGNode, dict[str, frozenset[CFGNode]]] = {
        node: {} for node in cfg.nodes
    }

    worklist = list(cfg.nodes)
    while worklist:
        node = worklist.pop()
        merged: dict[str, set[CFGNode]] = {}
        for pred in node.preds:
            for var, defs in out_sets[pred].items():
                merged.setdefault(var, set()).update(defs)
        new_in = {var: frozenset(defs) for var, defs in merged.items()}
        new_out = dict(new_in)
        for var in gen[node]:
            new_out[var] = frozenset([node])
        if new_in != in_sets[node] or new_out != out_sets[node]:
            in_sets[node] = new_in
            out_sets[node] = new_out
            worklist.extend(node.succs)
    return in_sets
