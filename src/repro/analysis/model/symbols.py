"""Symbol tables and the import graph.

A :class:`ModuleSymbols` records what one file *defines* (functions,
classes, methods, module-level assignments) and what it *binds from
elsewhere* (the import alias map).  The project-wide
:class:`SymbolTable` stitches those together so a dotted name used in
one module can be resolved to the :class:`FunctionInfo` defining it in
another — the foundation the call graph and the semantic rules build
on.

Resolution is purely lexical: ``import repro.parallel.shm as shm``
makes ``shm.shard_shared_index`` resolvable, ``self.close()`` resolves
against the enclosing class, and anything else (instance attributes of
other classes, dynamic dispatch) is deliberately left unresolved.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "FunctionInfo",
    "ImportGraph",
    "ModuleSymbols",
    "SymbolTable",
    "module_name_for",
]


def module_name_for(rel_path: str) -> str:
    """The dotted module name a tree-relative path denotes.

    ``src/repro/parallel/shm.py`` -> ``repro.parallel.shm``;
    ``tests/core/test_x.py`` -> ``tests.core.test_x``; package
    ``__init__.py`` files name the package itself.
    """
    path = rel_path.replace("\\", "/")
    if path.startswith("src/"):
        path = path[len("src/"):]
    if path.endswith(".py"):
        path = path[: -len(".py")]
    name = path.replace("/", ".")
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition, addressable project-wide."""

    qname: str  # e.g. "repro.parallel.engine.ParallelCountingEngine.close"
    module: str  # tree-relative path of the defining file
    module_name: str  # dotted module name
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None  # enclosing class, methods only

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ModuleSymbols:
    """Everything one module defines and imports, by name."""

    rel_path: str
    module_name: str
    # local name ("func" or "Class.method") -> definition
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    # local alias -> the dotted name it binds ("np" -> "numpy",
    # "shard_shared_index" -> "repro.parallel.shm.shard_shared_index")
    imports: dict[str, str] = field(default_factory=dict)
    # module-level simple assignments: name -> value expression
    module_assigns: dict[str, ast.expr] = field(default_factory=dict)

    @classmethod
    def build(cls, rel_path: str, tree: ast.Module) -> "ModuleSymbols":
        symbols = cls(rel_path=rel_path, module_name=module_name_for(rel_path))
        for node in tree.body:
            symbols._add_statement(node, class_name=None)
        return symbols

    def _add_statement(self, node: ast.stmt, class_name: str | None) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local = f"{class_name}.{node.name}" if class_name else node.name
            self.functions[local] = FunctionInfo(
                qname=f"{self.module_name}.{local}",
                module=self.rel_path,
                module_name=self.module_name,
                node=node,
                class_name=class_name,
            )
        elif isinstance(node, ast.ClassDef) and class_name is None:
            self.classes[node.name] = node
            for statement in node.body:
                self._add_statement(statement, class_name=node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                # "import a.b" binds "a" to package a; "import a.b as c"
                # binds "c" to the full dotted path.
                target = alias.name if alias.asname else alias.name.split(".")[0]
                self.imports[bound] = target
        elif isinstance(node, ast.ImportFrom):
            base = self._resolve_from_base(node)
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                self.imports[bound] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(node, ast.Assign) and class_name is None:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.module_assigns[target.id] = node.value
        elif isinstance(node, ast.AnnAssign) and class_name is None:
            if isinstance(node.target, ast.Name) and node.value is not None:
                self.module_assigns[node.target.id] = node.value
        elif isinstance(node, (ast.Try, ast.If)) and class_name is None:
            # Guarded imports ("try: import numpy") still bind names.
            bodies = [node.body]
            if isinstance(node, ast.Try):
                bodies.extend(handler.body for handler in node.handlers)
                bodies.extend([node.orelse, node.finalbody])
            else:
                bodies.append(node.orelse)
            for body in bodies:
                for statement in body:
                    self._add_statement(statement, class_name=None)

    def _resolve_from_base(self, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        # Relative import: climb from this module's package.
        parts = self.module_name.split(".")
        # A module's package is everything but its own basename.
        package_parts = parts[: len(parts) - 1] if len(parts) > 1 else parts
        climb = node.level - 1
        base_parts = package_parts[: len(package_parts) - climb] if climb else package_parts
        if node.module:
            base_parts = [*base_parts, node.module]
        return ".".join(base_parts)


class ImportGraph:
    """Project-internal import edges between dotted module names."""

    def __init__(self) -> None:
        self._imports: dict[str, set[str]] = {}
        self._importers: dict[str, set[str]] = {}

    def add_edge(self, importer: str, imported: str) -> None:
        self._imports.setdefault(importer, set()).add(imported)
        self._importers.setdefault(imported, set()).add(importer)

    def imports_of(self, module_name: str) -> frozenset[str]:
        """Project modules ``module_name`` imports (directly)."""
        return frozenset(self._imports.get(module_name, ()))

    def importers_of(self, module_name: str) -> frozenset[str]:
        """Project modules that import ``module_name`` (directly)."""
        return frozenset(self._importers.get(module_name, ()))

    @property
    def modules(self) -> frozenset[str]:
        return frozenset(self._imports) | frozenset(self._importers)


class SymbolTable:
    """The project-wide view: every module's symbols plus resolution."""

    def __init__(self, per_module: dict[str, ModuleSymbols]) -> None:
        # keyed by tree-relative path
        self.per_module = per_module
        self.by_module_name: dict[str, ModuleSymbols] = {
            symbols.module_name: symbols for symbols in per_module.values()
        }
        self.by_qname: dict[str, FunctionInfo] = {}
        for symbols in per_module.values():
            self.by_qname.update(
                (info.qname, info) for info in symbols.functions.values()
            )
        self.imports = self._build_import_graph()

    def _build_import_graph(self) -> ImportGraph:
        graph = ImportGraph()
        known = set(self.by_module_name)
        for symbols in self.per_module.values():
            for target in symbols.imports.values():
                # "repro.parallel.shm.shard_shared_index" names a symbol
                # inside a module; walk prefixes until one is a module.
                parts = target.split(".")
                for stop in range(len(parts), 0, -1):
                    candidate = ".".join(parts[:stop])
                    if candidate in known:
                        if candidate != symbols.module_name:
                            graph.add_edge(symbols.module_name, candidate)
                        break
        return graph

    def module(self, rel_path: str) -> ModuleSymbols | None:
        return self.per_module.get(rel_path)

    def resolve(
        self,
        symbols: ModuleSymbols,
        dotted: str,
        class_name: str | None = None,
    ) -> FunctionInfo | None:
        """Resolve a dotted name used inside ``symbols`` to its definition.

        Handles local functions, ``self.method`` (against ``class_name``),
        methods through local class names (``Engine.close``), and names
        reached through the module's import aliases.  Returns ``None``
        for anything dynamic.
        """
        parts = dotted.split(".")
        head = parts[0]

        if head == "self" and class_name is not None and len(parts) == 2:
            return symbols.functions.get(f"{class_name}.{parts[1]}")
        if head == "cls" and class_name is not None and len(parts) == 2:
            return symbols.functions.get(f"{class_name}.{parts[1]}")

        if len(parts) == 1:
            found = symbols.functions.get(head)
            if found is not None:
                return found
        elif head in symbols.classes:
            found = symbols.functions.get(f"{head}.{parts[1]}")
            if found is not None:
                return found

        # Through the import alias map: rewrite the head and look the
        # full dotted name up project-wide.
        target = symbols.imports.get(head)
        if target is None:
            # Maybe the full module path was spelled out directly.
            return self.by_qname.get(dotted)
        rewritten = ".".join([target, *parts[1:]]) if len(parts) > 1 else target
        found = self.by_qname.get(rewritten)
        if found is not None:
            return found
        # "from mod import Class" + "Class.method" or an aliased module
        # with a class attribute: try inserting nothing further — one
        # more hop through the target module's own symbols.
        owner_parts = rewritten.split(".")
        for stop in range(len(owner_parts) - 1, 0, -1):
            owner = ".".join(owner_parts[:stop])
            module = self.by_module_name.get(owner)
            if module is not None:
                local = ".".join(owner_parts[stop:])
                return module.functions.get(local)
        return None
