"""The approximate project call graph.

One edge per syntactic call site whose callee name resolves through the
:class:`~repro.analysis.model.symbols.SymbolTable` — local functions,
``self`` methods, imported module functions.  Call sites that do not
resolve to a project definition (stdlib calls, dynamic dispatch,
attribute chains on unknown objects) are kept as *unresolved* name
strings so rules can still pattern-match on them (e.g. "does anything
this task calls invoke ``.close()``?").

Calls made inside nested functions and lambdas are attributed to the
enclosing top-level function or method: for the rules' purposes
("what runs when I call f?") the nested definitions are part of f's
behaviour.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass

from repro.analysis.astutil import call_name
from repro.analysis.model.symbols import FunctionInfo, SymbolTable

__all__ = ["CallGraph", "CallSite"]


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    caller: str  # qualified name of the enclosing function
    callee: str | None  # qualified name when resolved, else None
    name: str  # the dotted name as written at the call site
    node: ast.Call


class CallGraph:
    """Caller -> callee edges over qualified function names."""

    def __init__(self, symbols: SymbolTable) -> None:
        self.symbols = symbols
        self._callees: dict[str, set[str]] = {}
        self._callers: dict[str, set[str]] = {}
        self._sites: dict[str, list[CallSite]] = {}
        self._build()

    def _build(self) -> None:
        for module_symbols in self.symbols.per_module.values():
            for info in module_symbols.functions.values():
                sites = self._sites.setdefault(info.qname, [])
                for call in self._calls_in(info.node):
                    name = call_name(call.func)
                    if name is None:
                        continue
                    resolved = self.symbols.resolve(
                        module_symbols, name, class_name=info.class_name
                    )
                    callee = resolved.qname if resolved is not None else None
                    sites.append(CallSite(info.qname, callee, name, call))
                    if callee is not None:
                        self._callees.setdefault(info.qname, set()).add(callee)
                        self._callers.setdefault(callee, set()).add(info.qname)

    @staticmethod
    def _calls_in(func: ast.FunctionDef | ast.AsyncFunctionDef):
        """Call nodes in ``func``, nested defs included, methods excluded.

        Nested function bodies belong to the enclosing definition; a
        nested *class* is its own scope and is skipped (its methods are
        indexed separately when the class is at module level).
        """
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.ClassDef):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    # -- queries --------------------------------------------------------------

    def callees(self, qname: str) -> frozenset[str]:
        return frozenset(self._callees.get(qname, ()))

    def callers(self, qname: str) -> frozenset[str]:
        return frozenset(self._callers.get(qname, ()))

    def call_sites(self, qname: str) -> tuple[CallSite, ...]:
        """Every call site inside ``qname`` (resolved or not)."""
        return tuple(self._sites.get(qname, ()))

    def reachable_from(self, qname: str, max_depth: int = 8) -> frozenset[str]:
        """Functions transitively callable from ``qname`` (BFS, bounded)."""
        seen: set[str] = set()
        frontier: deque[tuple[str, int]] = deque([(qname, 0)])
        while frontier:
            current, depth = frontier.popleft()
            if depth >= max_depth:
                continue
            for callee in self._callees.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append((callee, depth + 1))
        return frozenset(seen)

    def function(self, qname: str) -> FunctionInfo | None:
        return self.symbols.by_qname.get(qname)
