"""Project-wide semantic model for replint.

Everything here is derived from the parsed :class:`~repro.analysis
.framework.LintModule` list — no imports are executed, no code runs.
The model is deliberately *approximate*: it resolves the name-based
call and import structure that this codebase actually uses (module
functions, ``self`` methods, ``import x as y`` aliases) and leaves
anything dynamic unresolved rather than guessing.

* :mod:`repro.analysis.model.symbols` — per-module symbol tables, the
  project :class:`SymbolTable`, and the project-internal
  :class:`ImportGraph`;
* :mod:`repro.analysis.model.callgraph` — the approximate
  :class:`CallGraph` over qualified function names;
* :mod:`repro.analysis.model.project` — the :class:`ProjectModel`
  facade the lint framework hands to rules.
"""

from repro.analysis.model.callgraph import CallGraph
from repro.analysis.model.project import ProjectModel
from repro.analysis.model.symbols import (
    FunctionInfo,
    ImportGraph,
    ModuleSymbols,
    SymbolTable,
    module_name_for,
)

__all__ = [
    "CallGraph",
    "FunctionInfo",
    "ImportGraph",
    "ModuleSymbols",
    "ProjectModel",
    "SymbolTable",
    "module_name_for",
]
