"""The :class:`ProjectModel` — what semantic rules see beside the file.

One instance per lint run, built from every successfully parsed
:class:`~repro.analysis.framework.LintModule`.  Construction is cheap
and lazy: the symbol table, import graph, call graph and per-function
CFGs are each computed on first use and cached, so a run that selects
only syntactic rules never pays for the semantic machinery.

Files that failed to parse simply are not in ``modules`` — the
framework reports them as ``RPR000`` parse errors and the model
degrades to whatever did parse, never crashing.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.analysis.flow.cfg import CFG, build_cfg
from repro.analysis.model.callgraph import CallGraph
from repro.analysis.model.symbols import FunctionInfo, ImportGraph, ModuleSymbols, SymbolTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from repro.analysis.framework import LintModule

__all__ = ["ProjectModel"]


class ProjectModel:
    """Project-wide symbols, imports, calls, and flow graphs."""

    def __init__(self, modules: "tuple[LintModule, ...]", root: "Path | None" = None) -> None:
        self.modules = tuple(modules)
        self.root = root
        self._by_rel = {module.rel_path: module for module in self.modules}
        self._symbols: SymbolTable | None = None
        self._calls: CallGraph | None = None
        self._cfgs: dict[int, CFG] = {}

    # -- lookups --------------------------------------------------------------

    def module(self, rel_path: str) -> "LintModule | None":
        return self._by_rel.get(rel_path)

    @property
    def symbols(self) -> SymbolTable:
        if self._symbols is None:
            per_module: dict[str, ModuleSymbols] = {}
            for module in self.modules:
                per_module[module.rel_path] = ModuleSymbols.build(
                    module.rel_path, module.tree
                )
            self._symbols = SymbolTable(per_module)
        return self._symbols

    @property
    def imports(self) -> ImportGraph:
        return self.symbols.imports

    @property
    def calls(self) -> CallGraph:
        if self._calls is None:
            self._calls = CallGraph(self.symbols)
        return self._calls

    def cfg(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
        """The (cached) control-flow graph of one function definition."""
        cached = self._cfgs.get(id(func))
        if cached is None:
            cached = self._cfgs[id(func)] = build_cfg(func)
        return cached

    def function(self, qname: str) -> FunctionInfo | None:
        """Resolve a fully qualified function name project-wide."""
        return self.symbols.by_qname.get(qname)

    def functions_in(self, rel_path: str) -> tuple[FunctionInfo, ...]:
        """Every function/method defined in one file."""
        module_symbols = self.symbols.module(rel_path)
        if module_symbols is None:
            return ()
        return tuple(module_symbols.functions.values())
