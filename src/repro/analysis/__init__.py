"""replint: the project's AST-based invariant checker.

Run it over the tree with ``make lint`` or directly::

    PYTHONPATH=src python -m repro.analysis [paths ...] [--format json]

See :mod:`repro.analysis.framework` for the rule/suppression model and
``docs/static_analysis.md`` for the catalogue of rules and the paper
invariants each one protects.
"""

from repro.analysis import rules  # noqa: F401 - registers the rule set
from repro.analysis.framework import (
    META_RULE_ID,
    REGISTRY,
    LintModule,
    LintReport,
    Rule,
    Suppression,
    Violation,
    lint,
    register,
)
from repro.analysis.reporters import (
    render_json,
    render_rule_list,
    render_sarif,
    render_text,
)

__all__ = [
    "META_RULE_ID",
    "REGISTRY",
    "LintModule",
    "LintReport",
    "Rule",
    "Suppression",
    "Violation",
    "lint",
    "register",
    "render_json",
    "render_rule_list",
    "render_sarif",
    "render_text",
]
