"""The incremental lint cache (``.replint-cache.json``).

``make lint`` on a warm tree should cost what changed, not what exists.
The cache keys three levels of reuse on content hashes:

* **per file** — the raw violations of the *cacheable* module-scope
  rules, keyed by the file's content hash.  An unchanged file skips
  those rules entirely.
* **per tree** — the raw violations of project-scope rules and of
  non-cacheable (semantic) module rules, keyed by the hash of *every*
  file's (path, hash) pair.  These rules see cross-file state — a
  symbol table, the call graph — so any change anywhere invalidates
  them, exactly as the issue demands.
* **per linter** — everything above is guarded by a fingerprint of the
  ``repro.analysis`` package sources themselves, so editing a rule (or
  this file) throws the whole cache away.

Raw (pre-suppression) violations are cached; suppression bookkeeping
re-runs every time from the current sources, which keeps the
stale-suppression check exact.  The file is JSON, gitignored, and safe
to delete at any time.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.framework import Violation

__all__ = ["CachedFile", "LintCache"]

_CACHE_VERSION = 1


def _package_fingerprint() -> str:
    """A hash of the analysis package's own sources.

    Any edit to the linter — a rule, the framework, the model — must
    invalidate every cached result, because the rules themselves are an
    input to the analysis.
    """
    package_root = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for source in sorted(package_root.rglob("*.py")):
        digest.update(source.relative_to(package_root).as_posix().encode())
        digest.update(b"\0")
        digest.update(source.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def _violations_to_json(violations: list[Violation]) -> list[list]:
    return [[v.path, v.line, v.col, v.rule, v.message] for v in violations]


def _violations_from_json(payload: list) -> list[Violation]:
    return [
        Violation(str(path), int(line), int(col), str(rule), str(message))
        for path, line, col, rule, message in payload
    ]


@dataclass
class CachedFile:
    """One file's cached module-rule results."""

    content_hash: str
    violations: list[Violation]
    parse_error: bool = False


class LintCache:
    """Load/consult/update one cache file around a lint run."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.fingerprint = _package_fingerprint()
        self._files: dict[str, CachedFile] = {}
        self._tree_hash: str | None = None
        self._project_violations: list[Violation] = []
        self._dirty = False

    @classmethod
    def load(cls, path: Path) -> "LintCache":
        cache = cls(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache  # absent or corrupt: start cold
        if (
            payload.get("version") != _CACHE_VERSION
            or payload.get("fingerprint") != cache.fingerprint
        ):
            return cache  # the linter itself changed: start cold
        try:
            for rel, entry in payload.get("files", {}).items():
                cache._files[rel] = CachedFile(
                    content_hash=entry["hash"],
                    violations=_violations_from_json(entry["violations"]),
                    parse_error=bool(entry.get("parse_error", False)),
                )
            project = payload.get("project")
            if project is not None:
                cache._tree_hash = project["tree_hash"]
                cache._project_violations = _violations_from_json(project["violations"])
        except (KeyError, TypeError, ValueError):
            return cls(path)  # malformed: start cold
        return cache

    # -- hashing --------------------------------------------------------------

    @staticmethod
    def content_hash(source: str) -> str:
        return hashlib.sha256(source.encode("utf-8")).hexdigest()

    @staticmethod
    def tree_hash(file_hashes: dict[str, str]) -> str:
        digest = hashlib.sha256()
        for rel in sorted(file_hashes):
            digest.update(rel.encode())
            digest.update(b"\0")
            digest.update(file_hashes[rel].encode())
            digest.update(b"\0")
        return digest.hexdigest()

    # -- queries --------------------------------------------------------------

    def tree_matches(self, file_hashes: dict[str, str]) -> bool:
        """Whether the whole tree is unchanged since the cached run."""
        if self._tree_hash != self.tree_hash(file_hashes):
            return False
        return all(
            rel in self._files and self._files[rel].content_hash == digest
            for rel, digest in file_hashes.items()
        )

    def file_entry(self, rel_path: str, content_hash: str) -> CachedFile | None:
        """The cached entry for a file, if its content is unchanged."""
        entry = self._files.get(rel_path)
        if entry is not None and entry.content_hash == content_hash:
            return entry
        return None

    def project_violations(self) -> list[Violation]:
        return list(self._project_violations)

    # -- updates --------------------------------------------------------------

    def store_file(
        self,
        rel_path: str,
        content_hash: str,
        violations: list[Violation],
        parse_error: bool = False,
    ) -> None:
        self._files[rel_path] = CachedFile(content_hash, list(violations), parse_error)
        self._dirty = True

    def store_project(
        self, file_hashes: dict[str, str], violations: list[Violation]
    ) -> None:
        self._tree_hash = self.tree_hash(file_hashes)
        self._project_violations = list(violations)
        # Drop entries for files that no longer exist.
        self._files = {
            rel: entry for rel, entry in self._files.items() if rel in file_hashes
        }
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {
            "version": _CACHE_VERSION,
            "fingerprint": self.fingerprint,
            "files": {
                rel: {
                    "hash": entry.content_hash,
                    "violations": _violations_to_json(entry.violations),
                    **({"parse_error": True} if entry.parse_error else {}),
                }
                for rel, entry in sorted(self._files.items())
            },
            "project": (
                {
                    "tree_hash": self._tree_hash,
                    "violations": _violations_to_json(self._project_violations),
                }
                if self._tree_hash is not None
                else None
            ),
        }
        try:
            self.path.write_text(
                json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
            )
        except OSError:  # replint: disable=RPR006 -- cache persistence is best-effort; a read-only tree just runs uncached next time
            pass
