"""Render a :class:`~repro.analysis.framework.LintReport` for humans or CI."""

from __future__ import annotations

import json

from repro.analysis.framework import REGISTRY, LintReport

__all__ = ["render_text", "render_json", "render_rule_list"]


def render_text(report: LintReport) -> str:
    """One ``path:line:col: RULE message`` line per violation + a summary."""
    lines = [violation.render() for violation in report.violations]
    if report.clean:
        lines.append(f"replint: {report.files_checked} files clean")
    else:
        per_rule = ", ".join(
            f"{rule}={count}" for rule, count in report.counts().items()
        )
        lines.append(
            f"replint: {len(report.violations)} violation(s) in "
            f"{report.files_checked} files ({per_rule})"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report for CI annotation tooling."""
    payload = {
        "files_checked": report.files_checked,
        "clean": report.clean,
        "counts": report.counts(),
        "violations": [
            {
                "path": violation.path,
                "line": violation.line,
                "col": violation.col,
                "rule": violation.rule,
                "message": violation.message,
            }
            for violation in report.violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The registered rules with their one-line rationales."""
    lines = []
    for rule_id in sorted(REGISTRY):
        rule = REGISTRY[rule_id]
        lines.append(f"{rule.id}  {rule.name}")
        lines.append(f"      {rule.rationale}")
    return "\n".join(lines)
