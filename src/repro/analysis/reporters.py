"""Render a :class:`~repro.analysis.framework.LintReport` for humans or CI.

Three machine formats ride alongside the human text: ``json`` (the
project's own schema, for ad-hoc tooling), ``sarif`` (SARIF 2.1.0, the
interchange format GitHub code scanning ingests — ``make lint-sarif``
uploads it so violations annotate pull requests inline), and the rule
catalogue for ``--list-rules``.
"""

from __future__ import annotations

import json

from repro.analysis.framework import META_RULE_ID, REGISTRY, LintReport

__all__ = ["render_text", "render_json", "render_sarif", "render_rule_list"]


def render_text(report: LintReport) -> str:
    """One ``path:line:col: RULE message`` line per violation + a summary."""
    lines = [violation.render() for violation in report.violations]
    reused = report.files_checked - report.files_reanalyzed
    cache_note = (
        f" ({reused} unchanged, from cache)"
        if 0 < reused and report.files_reanalyzed == 0
        else ""
    )
    if report.clean:
        lines.append(f"replint: {report.files_checked} files clean{cache_note}")
    else:
        per_rule = ", ".join(
            f"{rule}={count}" for rule, count in report.counts().items()
        )
        lines.append(
            f"replint: {len(report.violations)} violation(s) in "
            f"{report.files_checked} files ({per_rule})"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report for CI annotation tooling."""
    payload = {
        "files_checked": report.files_checked,
        "clean": report.clean,
        "counts": report.counts(),
        "violations": [
            {
                "path": violation.path,
                "line": violation.line,
                "col": violation.col,
                "rule": violation.rule,
                "message": violation.message,
            }
            for violation in report.violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 — the static-analysis interchange format.

    One run, one driver (``replint``), one rule entry per registered
    rule plus the reserved ``RPR000`` meta-rule.  Violation columns are
    0-based internally and 1-based in SARIF, hence the ``+ 1``.
    """
    rules = [
        {
            "id": rule_id,
            "name": REGISTRY[rule_id].name,
            "shortDescription": {"text": REGISTRY[rule_id].name},
            "fullDescription": {"text": REGISTRY[rule_id].rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id in sorted(REGISTRY)
    ]
    rules.append(
        {
            "id": META_RULE_ID,
            "name": "replint-directive",
            "shortDescription": {"text": "replint-directive"},
            "fullDescription": {
                "text": "Problems with replint itself: unparseable files and "
                "undocumented, stale, or unknown-rule suppressions."
            },
            "defaultConfiguration": {"level": "error"},
        }
    )
    results = [
        {
            "ruleId": violation.rule,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(1, violation.line),
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
        }
        for violation in report.violations
    ]
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "replint",
                        "informationUri": "docs/static_analysis.md",
                        "rules": sorted(rules, key=lambda rule: rule["id"]),
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The registered rules with their one-line rationales."""
    lines = []
    for rule_id in sorted(REGISTRY):
        rule = REGISTRY[rule_id]
        lines.append(f"{rule.id}  {rule.name}")
        lines.append(f"      {rule.rationale}")
    return "\n".join(lines)
