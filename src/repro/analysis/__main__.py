"""``python -m repro.analysis`` — lint the tree, exit non-zero on findings."""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.framework import lint
from repro.analysis.reporters import (
    render_json,
    render_rule_list,
    render_sarif,
    render_text,
)

__all__ = ["main", "build_parser"]

# Default location of the incremental cache (gitignored); the cache
# only engages on full default runs — see repro.analysis.incremental.
DEFAULT_CACHE = ".replint-cache.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="replint",
        description="Semantic invariant checker for the correlation-mining repo",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the project root)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root that relative paths and rule scopes resolve against",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (sarif = SARIF 2.1.0 for GitHub code scanning)",
    )
    parser.add_argument(
        "--select", default=None, help="comma-separated rule ids to run (default: all)"
    )
    parser.add_argument(
        "--ignore", default=None, help="comma-separated rule ids to skip"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="report stale suppressions even under --select/--ignore",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        default=DEFAULT_CACHE,
        help=(
            "incremental cache file, relative to --root "
            f"(default: {DEFAULT_CACHE}; full default runs only)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache for this run",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _split(ids: str | None) -> list[str] | None:
    if ids is None:
        return None
    return [part.strip() for part in ids.split(",") if part.strip()]


_RENDERERS = {"text": render_text, "json": render_json, "sarif": render_sarif}


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        print(render_rule_list())
        return 0
    root = Path(options.root)
    cache_path = None if options.no_cache else root / options.cache
    try:
        report = lint(
            paths=options.paths or None,
            root=root,
            select=_split(options.select),
            ignore=_split(options.ignore),
            strict=options.strict,
            cache_path=cache_path,
        )
    except ValueError as error:
        print(f"replint: error: {error}", file=sys.stderr)
        return 2
    print(_RENDERERS[options.format](report))
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
