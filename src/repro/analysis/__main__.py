"""``python -m repro.analysis`` — lint the tree, exit non-zero on findings."""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.framework import lint
from repro.analysis.reporters import render_json, render_rule_list, render_text

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="replint",
        description="AST-based invariant checker for the correlation-mining repo",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the project root)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root that relative paths and rule scopes resolve against",
    )
    parser.add_argument("--format", choices=["text", "json"], default="text")
    parser.add_argument(
        "--select", default=None, help="comma-separated rule ids to run (default: all)"
    )
    parser.add_argument(
        "--ignore", default=None, help="comma-separated rule ids to skip"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _split(ids: str | None) -> list[str] | None:
    if ids is None:
        return None
    return [part.strip() for part in ids.split(",") if part.strip()]


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        print(render_rule_list())
        return 0
    try:
        report = lint(
            paths=options.paths or None,
            root=Path(options.root),
            select=_split(options.select),
            ignore=_split(options.ignore),
        )
    except ValueError as error:
        print(f"replint: error: {error}", file=sys.stderr)
        return 2
    rendered = render_json(report) if options.format == "json" else render_text(report)
    print(rendered)
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
