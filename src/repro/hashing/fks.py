"""FKS two-level perfect hashing.

Section 4 of the paper proposes implementing the candidate-generation
step "based on perfect hash tables (see [10, 7] ...): there are no
collisions, and insertion, deletion, and lookup all take constant time.
The space used is linear in the size of the data."  [10] is
Fredman-Komlós-Szemerédi static perfect hashing; [7] the
Dietzfelbinger et al. dynamisation.

:class:`FKSTable` is the classical static scheme: a top-level universal
hash function splits ``n`` keys into ``n`` buckets (retrying until the
sum of squared bucket sizes is linear, which a random universal function
achieves with probability >= 1/2), and each bucket of size ``b`` gets a
collision-free second-level function into ``b^2`` slots (again found by
retrying; constant expected attempts).  Lookups probe exactly one slot.

:class:`DynamicFKSTable` adds amortised-O(1) insertion and deletion by
global rebuild on geometric growth, the standard semi-dynamisation of
the static scheme.

Keys are arbitrary non-negative integers (itemsets are serialised to
integers by :mod:`repro.hashing.itemset_table`).
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Iterator

__all__ = ["FKSTable", "DynamicFKSTable"]

# A Mersenne prime comfortably above any key the library produces;
# universal hashing h(x) = ((a x + b) mod p) mod m requires p > max key.
_PRIME = (1 << 61) - 1


class _UniversalHash:
    """h(x) = ((a*x + b) mod p) mod m from the Carter-Wegman family."""

    __slots__ = ("a", "b", "m")

    def __init__(self, rng: random.Random, m: int) -> None:
        self.a = rng.randrange(1, _PRIME)
        self.b = rng.randrange(0, _PRIME)
        self.m = m

    def __call__(self, key: int) -> int:
        return ((self.a * key + self.b) % _PRIME) % self.m


class FKSTable:
    """Static FKS perfect hash table mapping integer keys to values.

    Build cost is expected O(n); lookup is worst-case O(1) with no
    collisions.  The structure is immutable after construction.
    """

    __slots__ = ("_top", "_buckets", "_size")

    # Constant bounding sum(b_i^2); 4n holds with probability >= 1/2 for
    # a random universal function (Markov on E[collisions]).
    _SQUARED_BUDGET_FACTOR = 4

    def __init__(self, items: Iterable[tuple[int, object]], seed: int = 0x5151) -> None:
        pairs = list(items)
        keys = [key for key, _ in pairs]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate keys passed to FKSTable")
        for key in keys:
            if key < 0 or key >= _PRIME:
                raise ValueError(f"keys must be in [0, 2^61 - 1), got {key}")
        rng = random.Random(seed)
        self._size = len(pairs)
        n = max(len(pairs), 1)

        # Top level: retry until the squared bucket sizes are linear.
        for _ in range(64):
            top = _UniversalHash(rng, n)
            bucket_keys: list[list[tuple[int, object]]] = [[] for _ in range(n)]
            for key, value in pairs:
                bucket_keys[top(key)].append((key, value))
            squared = sum(len(b) ** 2 for b in bucket_keys)
            if squared <= self._SQUARED_BUDGET_FACTOR * n:
                break
        else:
            raise RuntimeError("FKS top-level hash selection failed to converge")
        self._top = top

        # Second level: per bucket, a collision-free function into b^2 slots.
        buckets: list[tuple[_UniversalHash, list[tuple[int, object] | None]] | None] = []
        for bucket in bucket_keys:
            if not bucket:
                buckets.append(None)
                continue
            slots_needed = len(bucket) ** 2
            for _ in range(256):
                inner = _UniversalHash(rng, slots_needed)
                slots: list[tuple[int, object] | None] = [None] * slots_needed
                collision = False
                for key, value in bucket:
                    slot = inner(key)
                    if slots[slot] is not None:
                        collision = True
                        break
                    slots[slot] = (key, value)
                if not collision:
                    buckets.append((inner, slots))
                    break
            else:
                raise RuntimeError("FKS second-level hash selection failed to converge")
        self._buckets = buckets

    def __len__(self) -> int:
        return self._size

    def _slot(self, key: int) -> tuple[int, object] | None:
        if self._size == 0:
            return None
        bucket = self._buckets[self._top(key)]
        if bucket is None:
            return None
        inner, slots = bucket
        return slots[inner(key)]

    def __contains__(self, key: int) -> bool:
        entry = self._slot(key)
        return entry is not None and entry[0] == key

    def get(self, key: int, default: object = None) -> object:
        entry = self._slot(key)
        if entry is not None and entry[0] == key:
            return entry[1]
        return default

    def __getitem__(self, key: int) -> object:
        entry = self._slot(key)
        if entry is None or entry[0] != key:
            raise KeyError(key)
        return entry[1]

    def items(self) -> Iterator[tuple[int, object]]:
        for bucket in self._buckets:
            if bucket is None:
                continue
            for entry in bucket[1]:
                if entry is not None:
                    yield entry

    def keys(self) -> Iterator[int]:
        for key, _ in self.items():
            yield key

    def slot_count(self) -> int:
        """Total second-level slots — linear in n by the FKS argument."""
        return sum(len(bucket[1]) for bucket in self._buckets if bucket is not None)


class DynamicFKSTable:
    """Amortised-O(1) insert/delete over :class:`FKSTable`.

    Inserts accumulate in a small overflow area; when the overflow
    reaches a constant fraction of the static part, everything is
    rebuilt into a fresh static table.  Deletions are tombstoned and
    compacted at the next rebuild.  This is the textbook semi-dynamic
    FKS construction; all lookups remain O(1) worst case (one static
    probe plus one overflow probe of bounded size... amortised across
    rebuilds).
    """

    __slots__ = ("_static", "_overflow", "_deleted", "_shadowed", "_seed")

    _OVERFLOW_FRACTION = 0.5

    def __init__(self, items: Iterable[tuple[int, object]] = (), seed: int = 0x5151) -> None:
        self._seed = seed
        self._static = FKSTable(items, seed=seed)
        self._overflow: dict[int, object] = {}
        self._deleted: set[int] = set()
        # Keys living in BOTH the static table and the overflow (an
        # overwrite of a static key); counted once in __len__.
        self._shadowed = 0

    def __len__(self) -> int:
        return len(self._static) - len(self._deleted) + len(self._overflow) - self._shadowed

    def __contains__(self, key: int) -> bool:
        if key in self._deleted:
            return False
        return key in self._overflow or key in self._static

    def get(self, key: int, default: object = None) -> object:
        if key in self._deleted:
            return default
        if key in self._overflow:
            return self._overflow[key]
        return self._static.get(key, default)

    def __getitem__(self, key: int) -> object:
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            raise KeyError(key)
        return value

    def insert(self, key: int, value: object) -> None:
        if key not in self._overflow and key in self._static:
            self._shadowed += 1
        self._deleted.discard(key)
        self._overflow[key] = value
        threshold = max(8, int(self._OVERFLOW_FRACTION * max(len(self._static), 1)))
        if len(self._overflow) > threshold:
            self._rebuild()

    def delete(self, key: int) -> None:
        if key not in self:
            raise KeyError(key)
        if key in self._overflow:
            del self._overflow[key]
            if key in self._static:
                # The static copy must not resurface.
                self._shadowed -= 1
                self._deleted.add(key)
            return
        self._deleted.add(key)

    def _rebuild(self) -> None:
        merged = {
            key: value
            for key, value in self._static.items()
            if key not in self._deleted
        }
        merged.update(self._overflow)
        self._seed += 1
        self._static = FKSTable(merged.items(), seed=self._seed)
        self._overflow = {}
        self._deleted = set()
        self._shadowed = 0

    def items(self) -> Iterator[tuple[int, object]]:
        for key, value in self._static.items():
            if key not in self._deleted and key not in self._overflow:
                yield key, value
        yield from self._overflow.items()
