"""The Apriori hash tree for subset counting (Agrawal–Srikant [5]).

The 1994 Apriori paper — the baseline this paper measures itself
against — counts candidate supports with a *hash tree*: interior nodes
hash the next item of a candidate; leaves hold small buckets of
candidates.  Counting a basket means walking the tree with each
combination prefix and checking only the leaves reached, so a basket
touches a small fraction of a large candidate set.

This module provides that structure for completeness of the baseline
(`repro.algorithms.apriori` defaults to vertical bitmaps, which are
faster in CPython; the hash tree is the faithful 1994 answer and the
right tool when candidates vastly outnumber items).  The public
operation is :meth:`HashTree.count_baskets`, which increments a counter
for every (candidate ⊆ basket) pair.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.itemsets import Itemset

__all__ = ["HashTree"]


class _Node:
    __slots__ = ("children", "bucket")

    def __init__(self) -> None:
        self.children: dict[int, _Node] | None = None  # interior when set
        self.bucket: list[tuple[tuple[int, ...], int]] | None = []  # leaf payload


class HashTree:
    """A hash tree over same-size candidate itemsets with subset counting.

    Args:
        candidates: the itemsets to count (all the same size ``k``).
        leaf_capacity: a leaf splits into an interior node when it holds
            more candidates than this (and depth < k).
        fanout: hash-table width of interior nodes.
    """

    def __init__(
        self,
        candidates: Iterable[Itemset],
        leaf_capacity: int = 8,
        fanout: int = 16,
    ) -> None:
        if leaf_capacity < 1:
            raise ValueError("leaf_capacity must be >= 1")
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self._leaf_capacity = leaf_capacity
        self._fanout = fanout
        self._size = 0
        self._k: int | None = None
        self._root = _Node()
        self._counts: list[int] = []
        self._index: dict[tuple[int, ...], int] = {}
        for candidate in candidates:
            self._insert(candidate)

    def __len__(self) -> int:
        return self._size

    @property
    def candidate_size(self) -> int | None:
        """The common itemset size ``k`` (None while empty)."""
        return self._k

    def _hash(self, item: int) -> int:
        return item % self._fanout

    def _insert(self, candidate: Itemset) -> None:
        items = candidate.items
        if self._k is None:
            if len(items) == 0:
                raise ValueError("candidates must be non-empty")
            self._k = len(items)
        elif len(items) != self._k:
            raise ValueError(
                f"all candidates must have size {self._k}, got {len(items)}"
            )
        if items in self._index:
            return
        slot = len(self._counts)
        self._index[items] = slot
        self._counts.append(0)
        self._size += 1

        node, depth = self._root, 0
        while node.children is not None:
            node = node.children.setdefault(self._hash(items[depth]), _Node())
            depth += 1
        assert node.bucket is not None
        node.bucket.append((items, slot))
        if len(node.bucket) > self._leaf_capacity and depth < self._k:
            self._split(node, depth)

    def _split(self, node: _Node, depth: int) -> None:
        bucket = node.bucket
        assert bucket is not None
        node.children = {}
        node.bucket = None
        for items, slot in bucket:
            child = node.children.setdefault(self._hash(items[depth]), _Node())
            assert child.bucket is not None
            child.bucket.append((items, slot))
        for child in node.children.values():
            assert child.bucket is not None
            if len(child.bucket) > self._leaf_capacity and depth + 1 < (self._k or 0):
                self._split(child, depth + 1)

    # -- counting ---------------------------------------------------------------

    def _count_basket(self, node: _Node, basket: Sequence[int], start: int, basket_set: frozenset[int]) -> None:
        if node.bucket is not None:
            for items, slot in node.bucket:
                if basket_set.issuperset(items):
                    self._counts[slot] += 1
            return
        assert node.children is not None
        # Interior: branch on every remaining basket item, as in AS94.
        seen_hashes = set()
        for position in range(start, len(basket)):
            bucket_hash = self._hash(basket[position])
            if bucket_hash in seen_hashes:
                continue
            seen_hashes.add(bucket_hash)
            child = node.children.get(bucket_hash)
            if child is not None:
                self._count_basket(child, basket, position + 1, basket_set)

    def count_baskets(self, baskets: Iterable[Sequence[int]]) -> None:
        """Add every basket's subset matches to the counters."""
        if self._k is None:
            return
        for basket in baskets:
            if len(basket) < self._k:
                continue
            self._count_basket(self._root, basket, 0, frozenset(basket))

    def counts(self) -> dict[Itemset, int]:
        """Current counters keyed by candidate itemset."""
        return {
            Itemset._from_sorted(items): self._counts[slot]
            for items, slot in self._index.items()
        }

    def count_of(self, candidate: Itemset) -> int:
        """Counter for one candidate; raises KeyError if absent."""
        return self._counts[self._index[candidate.items]]
