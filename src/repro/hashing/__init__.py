"""Perfect hashing substrate (FKS two-level tables) for the miner."""

from repro.hashing.fks import DynamicFKSTable, FKSTable
from repro.hashing.hashtree import HashTree
from repro.hashing.itemset_table import ItemsetTable, itemset_key

__all__ = ["DynamicFKSTable", "FKSTable", "HashTree", "ItemsetTable", "itemset_key"]
