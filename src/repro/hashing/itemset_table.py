"""Itemset-keyed hash tables for the miner's NOTSIG / CAND sets.

The Figure 1 algorithm needs constant-time membership tests on sets of
itemsets ("We can test each one for inclusion in NOTSIG in constant
time").  :class:`ItemsetTable` provides that interface, with two
interchangeable backends:

* ``backend="fks"`` — the paper's choice: itemsets are serialised to
  integers and stored in a :class:`~repro.hashing.fks.DynamicFKSTable`
  (collision-free probes);
* ``backend="dict"`` — a plain Python dict, used as the ablation
  baseline (and the pragmatic default: CPython dicts are themselves
  open-addressed hash tables).

Serialisation packs each item id into 20 bits (item spaces up to ~1M
items), so itemsets up to size 3 fit the 61-bit universal-hashing key
domain directly; larger itemsets are folded with a polynomial rolling
hash, which is collision-free in practice for the key sets a miner
builds and verified at insert time.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.itemsets import Itemset
from repro.hashing.fks import DynamicFKSTable

__all__ = ["ItemsetTable", "itemset_key"]

_ITEM_BITS = 20
_MAX_ITEM = (1 << _ITEM_BITS) - 1
_KEY_SPACE = (1 << 61) - 1
_POLY_BASE = 1_000_003


def itemset_key(itemset: Itemset) -> int:
    """Serialise an itemset to a non-negative integer key.

    Itemsets of up to three items (with ids < 2^20) are packed exactly
    and injectively; wider itemsets fold via a polynomial rolling hash
    modulo a 61-bit prime.  The one extra high bit distinguishes packed
    from folded keys so the two ranges cannot alias.
    """
    items = itemset.items
    if len(items) <= 3 and (not items or items[-1] <= _MAX_ITEM):
        key = 0
        for item in items:
            key = (key << _ITEM_BITS) | (item + 1)
        return key
    key = len(items)
    for item in items:
        key = (key * _POLY_BASE + item + 1) % (_KEY_SPACE - (1 << 60))
    return key | (1 << 60)


class ItemsetTable:
    """A mapping from :class:`Itemset` to values with O(1) operations.

    Behaves like a minimal dict; the backend selects the underlying
    hash structure.  With the FKS backend, original itemsets are kept
    alongside values so key folding can be verified (a fold collision —
    never observed in practice — raises rather than corrupting the
    mining state).
    """

    __slots__ = ("_backend", "_dict", "_fks")

    def __init__(
        self,
        items: Iterable[tuple[Itemset, object]] = (),
        backend: str = "dict",
    ) -> None:
        if backend not in ("dict", "fks"):
            raise ValueError(f"unknown backend {backend!r}; use 'dict' or 'fks'")
        self._backend = backend
        self._dict: dict[Itemset, object] | None = {} if backend == "dict" else None
        self._fks: DynamicFKSTable | None = (
            DynamicFKSTable() if backend == "fks" else None
        )
        for itemset, value in items:
            self.insert(itemset, value)

    @property
    def backend(self) -> str:
        """The backend name this table was built with."""
        return self._backend

    def __len__(self) -> int:
        if self._dict is not None:
            return len(self._dict)
        assert self._fks is not None
        return len(self._fks)

    def __contains__(self, itemset: Itemset) -> bool:
        if self._dict is not None:
            return itemset in self._dict
        assert self._fks is not None
        entry = self._fks.get(itemset_key(itemset))
        return entry is not None and entry[0] == itemset

    def insert(self, itemset: Itemset, value: object = None) -> None:
        if self._dict is not None:
            self._dict[itemset] = value
            return
        assert self._fks is not None
        key = itemset_key(itemset)
        existing = self._fks.get(key)
        if existing is not None and existing[0] != itemset:
            raise RuntimeError(
                f"itemset key fold collision between {existing[0]!r} and {itemset!r}"
            )
        self._fks.insert(key, (itemset, value))

    def get(self, itemset: Itemset, default: object = None) -> object:
        if self._dict is not None:
            return self._dict.get(itemset, default)
        assert self._fks is not None
        entry = self._fks.get(itemset_key(itemset))
        if entry is None or entry[0] != itemset:
            return default
        return entry[1]

    def __getitem__(self, itemset: Itemset) -> object:
        sentinel = object()
        value = self.get(itemset, sentinel)
        if value is sentinel:
            raise KeyError(itemset)
        return value

    def delete(self, itemset: Itemset) -> None:
        if self._dict is not None:
            del self._dict[itemset]
            return
        assert self._fks is not None
        if itemset not in self:
            raise KeyError(itemset)
        self._fks.delete(itemset_key(itemset))

    def items(self) -> Iterator[tuple[Itemset, object]]:
        if self._dict is not None:
            yield from self._dict.items()
            return
        assert self._fks is not None
        for _, entry in self._fks.items():
            yield entry  # (itemset, value)

    def keys(self) -> Iterator[Itemset]:
        for itemset, _ in self.items():
            yield itemset

    def __iter__(self) -> Iterator[Itemset]:
        return self.keys()
