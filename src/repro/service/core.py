"""The mining service: incremental state plus query surface.

:class:`MiningService` owns one
:class:`~repro.core.mining.IncrementalMiner` (the appendable database,
the cumulative cell store, and the current
:class:`~repro.algorithms.chi2support.MiningResult`), a
generation-aware :class:`~repro.parallel.TableCache` for point queries,
and a per-generation FP-tree engine for top-K queries.  All operations
hold one lock, so a query never observes a half-applied append — and
the miner's own two-phase append guarantees that a backend failure
mid-append leaves the previous generation untouched.

Instrumentation rides the existing obs layer on a *service-lifetime*
telemetry bundle: one span per request, a
``service_requests{endpoint,status}`` counter, an ``index_generation``
gauge, per-endpoint latency histograms (``service_seconds{endpoint}``),
and one structured ``service.request`` event per call.  When the HTTP
layer bound a request id for the current context, the root span is
annotated with it and every event emitted while serving the request
carries it automatically.  Mining itself records into a *fresh*
per-append telemetry (so :meth:`Telemetry.reconcile` stays exact per
run); the append response carries that run's reconciliation verdict,
and the run's deterministic kernel/worker counters are folded into the
service-lifetime registry so ``GET /metrics`` sees them.

The completed root span of the most recent request on this context is
published through :func:`last_request_trace` — the HTTP layer reads it
to build flight-recorder entries without reaching into the tracer.

Responses are JSON-compatible dicts containing no timing data, so a
scripted session is byte-reproducible — the golden wire-format tests
rely on this.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.core.correlation import CorrelationTest
from repro.core.contingency import ContingencyTable
from repro.core.itemsets import Itemset
from repro.core.mining import IncrementalMiner
from repro.core.report import rule_to_dict, significance_summary
from repro.obs import NULL_TELEMETRY, Telemetry, current_request_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fptree import FPTreePairEngine

__all__ = ["MiningService", "clear_last_trace", "last_request_trace"]

# The finished span tree of the most recent service call on this
# context.  A ContextVar (not service state) so concurrent handler
# threads each see their own request's trace.
_last_trace_var: ContextVar[dict | None] = ContextVar("repro_last_trace", default=None)

# Counter series from a mining run that are safe to accumulate on the
# service-lifetime registry: pure counts of work done (not timings), so
# the lifetime totals stay meaningful across appends.
_MERGED_COUNTER_PREFIXES = (
    "kernel_dispatch",
    "kernel_autotune",
    "pool_events",
    "worker_",
)


def last_request_trace() -> dict | None:
    """The completed root span of this context's most recent request."""
    return _last_trace_var.get()


def clear_last_trace() -> None:
    """Reset the per-context trace slot (call at request start)."""
    _last_trace_var.set(None)


class MiningService:
    """Thread-safe append/query surface over incremental mining state.

    Args:
        significance: chi-squared significance level alpha'.
        support_count: the cell-support count threshold ``s``.
        support_fraction: the cell-support fraction ``p``.
        max_level: cap on itemset size (``None`` = unbounded).
        counting: table-counting backend for the incremental miner.
        workers: worker processes for ``counting="parallel"``.
        cache_size: point-query table cache capacity.
        telemetry: service-lifetime observability bundle (spans,
            request metrics).  Mining runs get their own fresh bundle
            per append when this one is enabled.
    """

    def __init__(
        self,
        significance: float = 0.95,
        support_count: float = 1,
        support_fraction: float = 0.26,
        max_level: int | None = None,
        counting: str = "bitmap",
        workers: int | None = None,
        cache_size: int = 256,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        mining_telemetry = Telemetry.create if self.telemetry.enabled else None
        self.miner = IncrementalMiner(
            significance=significance,
            support_count=support_count,
            support_fraction=support_fraction,
            max_level=max_level,
            counting=counting,
            workers=workers,
            telemetry_factory=mining_telemetry,
        )
        from repro.parallel import TableCache

        self.cache = TableCache(capacity=cache_size, metrics=self.telemetry.metrics)
        self.test = CorrelationTest(significance=significance)
        self._lock = threading.RLock()
        self._fptree: "FPTreePairEngine | None" = None
        self._fptree_generation = -1
        self._last_reconciliation_agreed = True
        self._generation_gauge = self.telemetry.metrics.gauge("index_generation")
        self._generation_gauge.set(0)

    # -- instrumentation ------------------------------------------------------

    @contextmanager
    def _request(self, endpoint: str) -> Iterator[None]:
        """One span + counter + latency observation per service call.

        The span closes on every path (the tracer finishes it in
        ``__exit__`` even when the body raises); the status label
        records whether the handler succeeded.  The root span carries
        the request id the HTTP layer bound (when any), a structured
        ``service.request`` event is emitted, and the finished span
        tree is published for the flight recorder — on error paths too.
        """
        clock = self.telemetry.clock
        start = clock()
        status = "error"
        request_id = current_request_id()
        span = self.telemetry.tracer.span(f"service.{endpoint}")
        try:
            with span:
                if request_id is not None:
                    span.annotate(request_id=request_id)
                try:
                    yield
                    status = "ok"
                finally:
                    self.telemetry.metrics.counter(
                        "service_requests", endpoint=endpoint, status=status
                    ).inc()
                    self.telemetry.metrics.histogram(
                        "service_seconds", endpoint=endpoint
                    ).observe(clock() - start)
                    self.telemetry.events.emit(
                        "service.request", endpoint=endpoint, status=status
                    )
        finally:
            if self.telemetry.enabled:
                _last_trace_var.set(span.to_dict())

    # -- shared payload pieces ------------------------------------------------

    def _decode(self, itemset: Itemset) -> list[str]:
        return [self.miner.db.vocabulary.name_of(item) for item in itemset]

    def _summary(self) -> dict[str, object]:
        result = self.miner.result
        hypotheses = 0
        discoveries = 0
        if result is not None:
            hypotheses = sum(
                stats.candidates - stats.discarded for stats in result.level_stats
            )
            discoveries = len(result.rules)
        return significance_summary(
            self.miner.significance,
            hypotheses,
            discoveries,
            cumulative_tests=self.miner.cumulative_tests,
        )

    def _absorb_run_metrics(self, run_telemetry: Telemetry) -> None:
        """Fold a mining run's kernel/worker counters into this registry.

        Each append mines with a fresh telemetry bundle so per-run
        reconciliation stays exact; without this fold the worker-side
        ``kernel_dispatch``/``kernel_autotune`` counters the parallel
        engine merged up from its pool would never reach ``/metrics``.
        Only plain work counters travel — per-run gauges and latency
        histograms stay with the run report they describe.
        """
        if not (self.telemetry.enabled and run_telemetry.enabled):
            return
        counters = {
            key: value
            for key, value in run_telemetry.metrics.snapshot()["counters"].items()
            if key.startswith(_MERGED_COUNTER_PREFIXES)
        }
        if counters:
            self.telemetry.metrics.merge({"counters": counters})

    # -- endpoints ------------------------------------------------------------

    def append(
        self,
        baskets: Iterable[Iterable[str]] | Iterable[Iterable[int]],
        numeric: bool = False,
    ) -> dict[str, object]:
        """Append baskets, advance every generation-keyed structure."""
        with self._request("append"), self._lock:
            outcome = self.miner.append(baskets, numeric=numeric)
            self.cache.advance_generation(outcome.touched_items, outcome.n_appended)
            self._generation_gauge.set(outcome.generation)
            if outcome.result is not None:
                report = outcome.result.run_report()
                reconciliation = report["reconciliation"]
                self._last_reconciliation_agreed = bool(reconciliation["agreed"])  # type: ignore[index]
                self._absorb_run_metrics(outcome.result.telemetry)
            self.telemetry.events.emit(
                "service.append",
                generation=outcome.generation,
                appended=outcome.n_appended,
            )
            return {
                "generation": outcome.generation,
                "appended": outcome.n_appended,
                "n_baskets": outcome.n_baskets,
                "n_items": outcome.n_items,
                "new_items": list(outcome.new_items),
                "promoted": [self._decode(itemset) for itemset in outcome.promoted],
                "demoted": [self._decode(itemset) for itemset in outcome.demoted],
                "significant": len(self.miner.border),
                "tables_served": outcome.tables_served,
                "tables_recounted": outcome.tables_recounted,
                "reconciliation_agreed": self._last_reconciliation_agreed,
                "significance_summary": self._summary(),
            }

    def status(self) -> dict[str, object]:
        """Generation, sizes, parameters, and cache health."""
        with self._request("status"), self._lock:
            return {
                "generation": self.miner.generation,
                "n_baskets": self.miner.db.n_baskets,
                "n_items": self.miner.db.n_items,
                "significant": len(self.miner.border),
                "counting": self.miner.counting,
                "significance": self.miner.significance,
                "support": {
                    "count": self.miner.support.count,
                    "fraction": self.miner.support.fraction,
                },
                "cache": self.cache.stats(),
                "reconciliation_agreed": self._last_reconciliation_agreed,
            }

    def significant(self, limit: int | None = None) -> dict[str, object]:
        """The significant itemsets, strongest correlation first."""
        with self._request("significant"), self._lock:
            result = self.miner.result
            rules = [] if result is None else sorted(
                result.rules, key=lambda rule: (-rule.statistic, rule.itemset)
            )
            shown = rules if limit is None else rules[: max(0, limit)]
            return {
                "generation": self.miner.generation,
                "total": len(rules),
                "rules": [
                    rule_to_dict(rule, self.miner.db.vocabulary) for rule in shown
                ],
                "significance_summary": self._summary(),
            }

    def correlation(self, items: Iterable[str | int]) -> dict[str, object]:
        """Point query: the full chi-squared evidence for one itemset.

        Tables come from the generation-aware cache when the itemset was
        queried before and no append touched its items since.
        """
        with self._request("correlation"), self._lock:
            vocabulary = self.miner.db.vocabulary
            resolved: list[int] = []
            for item in items:
                if isinstance(item, str):
                    if item not in vocabulary:
                        raise ValueError(f"unknown item {item!r}")
                    resolved.append(vocabulary.id_of(item))
                elif isinstance(item, int) and not isinstance(item, bool):
                    if not 0 <= item < self.miner.db.n_items:
                        raise ValueError(f"item id {item} out of range")
                    resolved.append(item)
                else:
                    raise ValueError(f"items must be names or ids, got {item!r}")
            itemset = Itemset(resolved)
            if len(itemset) < 2:
                raise ValueError("correlation needs at least two distinct items")
            table = self.cache.get(itemset)
            if table is None:
                table = ContingencyTable.from_database(self.miner.db, itemset)
                self.cache.put(itemset, table)
            evidence = self.test(table)
            border = self.miner.border
            cells = {
                format(cell, f"0{len(itemset)}b")[::-1]: int(count)
                for cell, count in sorted(table.nonzero_counts().items())
            }
            return {
                "generation": self.miner.generation,
                "items": self._decode(itemset),
                "item_ids": list(itemset.items),
                "chi_squared": evidence.statistic,
                "cutoff": evidence.cutoff,
                "correlated": evidence.correlated,
                "p_value": evidence.p_value,
                "reliable": evidence.reliable,
                "minimal": border.is_minimal(itemset),
                "covered_by_border": border.covers(itemset),
                "cells": cells,
                "n": int(table.n),
                "significance_summary": self._summary(),
            }

    def top_k(self, k: int = 10, min_cooccurrence: int = 1) -> dict[str, object]:
        """The K strongest pair correlations via the FP-tree engine.

        The tree is built once per generation and reused until the next
        append — "what's trending" polling never re-mines.
        """
        with self._request("topk"), self._lock:
            if k < 1:
                raise ValueError(f"k must be >= 1, got {k}")
            if self.miner.db.n_baskets == 0:
                return {
                    "generation": self.miner.generation,
                    "k": k,
                    "min_cooccurrence": min_cooccurrence,
                    "n_baskets": 0,
                    "entries": [],
                }
            engine = self._fptree_engine()
            result = engine.top_k(k, min_cooccurrence=min_cooccurrence)
            payload = result.to_dict(self.miner.db.vocabulary)
            payload["generation"] = self.miner.generation
            return payload

    def _fptree_engine(self) -> "FPTreePairEngine":
        if self._fptree is None or self._fptree_generation != self.miner.generation:
            from repro.fptree import FPTreePairEngine

            self._fptree = FPTreePairEngine(self.miner.db)
            self._fptree_generation = self.miner.generation
        return self._fptree

    def backfill(self, path: str, numeric: bool = False) -> dict[str, object]:
        """Replay a basket file as one append (the service's cold start).

        Reads through :class:`~repro.data.streaming.StreamingBasketDatabase`,
        which detects the file changing mid-read and never materialises
        the baskets twice.
        """
        from repro.data.streaming import StreamingBasketDatabase

        source = StreamingBasketDatabase(path, numeric=numeric)
        if numeric:
            baskets: list[tuple] = list(source)
        else:
            decode = source.vocabulary.decode
            baskets = [decode(basket) for basket in source]
        return self.append(baskets, numeric=numeric)

    def metrics_snapshot(self) -> dict[str, object]:
        """The service-lifetime metrics registry, byte-stable keys."""
        with self._lock:
            return self.telemetry.metrics.snapshot()
