"""The long-lived correlation mining service.

The streaming answer to the paper's batch algorithm: an in-memory
:class:`MiningService` accepts basket appends and serves correlation /
top-K queries from incrementally-maintained state
(:class:`~repro.core.mining.IncrementalMiner` + a generation-aware
:class:`~repro.parallel.TableCache`), and :mod:`repro.service.http`
exposes it over a stdlib HTTP server (``python -m repro serve``).

Every response is deterministic canonical JSON, so the wire format is
golden-tested byte for byte, and the incremental state behind it is
provably bit-identical to a cold batch re-mine at every generation.
"""

from repro.service.core import MiningService
from repro.service.http import ServiceServer, serve

__all__ = ["MiningService", "ServiceServer", "serve"]
