"""Stdlib HTTP front-end for :class:`~repro.service.core.MiningService`.

A deliberately small wire surface over ``http.server``:

====== ====================== ===========================================
Method Path                   Meaning
====== ====================== ===========================================
GET    ``/healthz``           liveness + current generation
GET    ``/status``            sizes, parameters, cache health
GET    ``/query/significant`` significant itemsets (``?limit=N``)
GET    ``/query/topk``        top-K pairs (``?k=N&min_cooccurrence=M``)
GET    ``/metrics``           Prometheus text exposition (JSON with
                              ``Accept: application/json``)
GET    ``/debug/flight``      flight-recorder dump of recent requests
GET    ``/debug/profile``     sampling profile (``?seconds=N``, capped)
POST   ``/append``            ``{"baskets": [[...]], "numeric": bool}``
POST   ``/query/itemset``     ``{"items": [...]}`` point correlation
====== ====================== ===========================================

Every request is assigned a sequential request id (``req-%08d``) that
comes back as the ``X-Request-Id`` header on every response, as the
``request_id`` key of every JSON body, on the request's root span, and
on every structured event emitted while serving it — one grep ties a
log line to its wire response.  Each JSON response is also recorded in
the server's :class:`~repro.obs.FlightRecorder` together with the
request's events and finished span tree; an unhandled 5xx additionally
dumps the recorder to ``flight_dump_path`` so the post-mortem ships
with the incident.

Responses are canonical JSON (``sort_keys=True`` + trailing newline) so
identical sessions produce byte-identical transcripts (request ids are
deterministic too).  Failures map to precise statuses — 400 malformed
body or parameters, 404 unknown path, 405 wrong method, 413 oversized
body (checked *before* reading), 500 handler crash — and never leave
the service in a partial state: the service's append is two-phase, so
whatever the handler was doing, the previous generation stays
queryable.

The server is a ``ThreadingHTTPServer``; concurrency safety lives in
:class:`MiningService` (one lock) and the obs layer's locked registry,
not here.
"""

from __future__ import annotations

import json
import logging
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.obs import (
    EXPOSITION_CONTENT_TYPE,
    FlightRecorder,
    RequestIdSource,
    SamplingProfiler,
    render_exposition,
    reset_request_id,
    set_request_id,
)
from repro.service.core import MiningService, clear_last_trace, last_request_trace

__all__ = ["ServiceServer", "serve"]

logger = logging.getLogger("repro.service")

DEFAULT_MAX_BODY_BYTES = 4 * 1024 * 1024

# Hard ceiling on /debug/profile?seconds=N: the handler thread sleeps
# for the whole window, so an unbounded value would pin a thread.
MAX_PROFILE_SECONDS = 30


class _HttpError(Exception):
    """An error with a definite HTTP status."""

    def __init__(self, status: int, message: str, close: bool = False) -> None:
        super().__init__(message)
        self.status = status
        self.close = close


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    # Quiet the default stderr chatter; route it through logging instead.

    server: "ServiceServer"  # type: ignore[assignment]

    # Set per request by _with_request before any routing runs.
    _request_id: str | None = None

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    # -- plumbing -------------------------------------------------------------

    def _with_request(self, route) -> None:
        """Bind a fresh request id for the duration of one request.

        Keep-alive connections reuse the handler thread, so the context
        variable must be reset at request end or the next request on
        the connection would inherit this one's id.
        """
        self._request_id = self.server.request_ids.issue()
        token = set_request_id(self._request_id)
        clear_last_trace()
        try:
            route()
        finally:
            reset_request_id(token)
            self._request_id = None

    def _send(self, status: int, payload: dict[str, object]) -> None:
        if self._request_id is not None and "request_id" not in payload:
            payload = {**payload, "request_id": self._request_id}
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._send_bytes(status, body, "application/json")

    def _send_bytes(self, status: int, body: bytes, content_type: str) -> None:
        """The one choke point every response leaves through.

        Records the request in the flight recorder *before* writing the
        wire bytes (so a client hanging up cannot lose the entry) and
        dumps the recorder to disk on unhandled 5xx responses.
        """
        self._record_flight(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._request_id is not None:
            self.send_header("X-Request-Id", self._request_id)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _record_flight(self, status: int) -> None:
        if self._request_id is None:
            return
        events = self.server.service.telemetry.events.for_request(self._request_id)
        self.server.flight.record(
            self._request_id,
            self.command,
            self.path,
            status,
            events=events,
            trace=last_request_trace(),
        )
        if status >= 500 and self.server.flight_dump_path is not None:
            try:
                self.server.flight.write(self.server.flight_dump_path)
            except OSError:
                logger.exception(
                    "failed to write flight dump to %s", self.server.flight_dump_path
                )

    def _read_json_body(self) -> object:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise _HttpError(411, "Content-Length required")
        try:
            length = int(length_header)
        except ValueError:
            raise _HttpError(400, f"bad Content-Length {length_header!r}") from None
        if length < 0:
            raise _HttpError(400, f"bad Content-Length {length}")
        if length > self.server.max_body_bytes:
            # Refuse before reading; the unread body poisons the
            # keep-alive stream, so close the connection too.
            raise _HttpError(
                413,
                f"body of {length} bytes exceeds the"
                f" {self.server.max_body_bytes}-byte limit",
                close=True,
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise _HttpError(400, f"malformed JSON body: {error}") from None

    def _int_param(self, params: dict[str, list[str]], name: str, default: int) -> int:
        values = params.get(name)
        if not values:
            return default
        try:
            return int(values[-1])
        except ValueError:
            raise _HttpError(400, f"parameter {name}={values[-1]!r} is not an integer") from None

    def _dispatch(self, handler) -> None:
        try:
            status, payload = handler()
        except _HttpError as error:
            if error.close:
                self.close_connection = True
            self._send(error.status, {"error": str(error)})
            return
        except (ValueError, KeyError) as error:
            self._send(400, {"error": str(error)})
            return
        except Exception as error:  # noqa: BLE001 - the wire must answer
            logger.exception("unhandled service error")
            self._send(500, {"error": f"internal error: {error}"})
            return
        self._send(status, payload)

    # -- routing --------------------------------------------------------------

    _GET_PATHS = (
        "/healthz",
        "/status",
        "/query/significant",
        "/query/topk",
        "/metrics",
        "/debug/flight",
        "/debug/profile",
    )
    _POST_PATHS = ("/append", "/query/itemset")

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._with_request(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._with_request(self._route_post)

    def _route_get(self) -> None:
        split = urlsplit(self.path)
        path = split.path
        params = parse_qs(split.query)
        service = self.server.service
        if path == "/healthz":
            self._dispatch(
                lambda: (200, {"status": "ok", "generation": service.miner.generation})
            )
        elif path == "/status":
            self._dispatch(lambda: (200, service.status()))
        elif path == "/query/significant":
            # Parameter parsing must run inside _dispatch so a bad value
            # becomes a 400 response, not an unanswered request.
            self._dispatch(
                lambda: (
                    200,
                    service.significant(limit=self._int_param(params, "limit", 50)),
                )
            )
        elif path == "/query/topk":
            self._dispatch(
                lambda: (
                    200,
                    service.top_k(
                        k=self._int_param(params, "k", 10),
                        min_cooccurrence=self._int_param(params, "min_cooccurrence", 1),
                    ),
                )
            )
        elif path == "/metrics":
            self._serve_metrics()
        elif path == "/debug/flight":
            self._dispatch(lambda: (200, self.server.flight.to_dict()))
        elif path == "/debug/profile":
            self._serve_profile(params)
        elif path in self._POST_PATHS:
            self._send(405, {"error": f"{path} requires POST"})
        else:
            self._send(404, {"error": f"unknown path {path}"})

    def _route_post(self) -> None:
        path = urlsplit(self.path).path
        service = self.server.service
        if path == "/append":
            self._dispatch(lambda: (200, service.append(**_append_args(self._read_json_body()))))
        elif path == "/query/itemset":
            self._dispatch(
                lambda: (200, service.correlation(_itemset_args(self._read_json_body())))
            )
        elif path in self._GET_PATHS:
            self._send(405, {"error": f"{path} requires GET"})
        else:
            self._send(404, {"error": f"unknown path {path}"})

    # -- non-JSON endpoints ----------------------------------------------------

    def _serve_metrics(self) -> None:
        """Prometheus text by default; the JSON snapshot on request.

        Content negotiation is deliberately simple: any ``Accept``
        header naming ``application/json`` gets the structured
        snapshot, everything else (Prometheus sends ``*/*``) gets the
        0.0.4 text exposition.
        """
        accept = self.headers.get("Accept", "")
        if "application/json" in accept:
            self._dispatch(lambda: (200, self.server.service.metrics_snapshot()))
            return
        try:
            text = render_exposition(self.server.service.metrics_snapshot())
        except Exception as error:  # noqa: BLE001 - the wire must answer
            logger.exception("metrics exposition failed")
            self._send(500, {"error": f"internal error: {error}"})
            return
        self._send_bytes(200, text.encode("utf-8"), EXPOSITION_CONTENT_TYPE)

    def _serve_profile(self, params: dict[str, list[str]]) -> None:
        """Run the sampling profiler for a bounded window, return text."""
        try:
            seconds = self._int_param(params, "seconds", 1)
            if seconds < 1:
                raise _HttpError(400, f"seconds must be >= 1, got {seconds}")
            seconds = min(seconds, MAX_PROFILE_SECONDS)
        except _HttpError as error:
            self._send(error.status, {"error": str(error)})
            return
        tracer = self.server.service.telemetry.tracer
        profiler = SamplingProfiler(tracer=tracer if tracer.enabled else None)
        with profiler:
            time.sleep(seconds)
        report = profiler.report()
        self._send_bytes(200, (report + "\n").encode("utf-8"), "text/plain; charset=utf-8")


def _append_args(body: object) -> dict[str, object]:
    if not isinstance(body, dict):
        raise _HttpError(400, "append body must be a JSON object")
    baskets = body.get("baskets")
    if not isinstance(baskets, list) or not all(isinstance(b, list) for b in baskets):
        raise _HttpError(400, 'append body needs "baskets": a list of lists')
    numeric = body.get("numeric", False)
    if not isinstance(numeric, bool):
        raise _HttpError(400, '"numeric" must be a boolean')
    return {"baskets": baskets, "numeric": numeric}


def _itemset_args(body: object) -> list[object]:
    if not isinstance(body, dict):
        raise _HttpError(400, "query body must be a JSON object")
    items = body.get("items")
    if not isinstance(items, list) or not items:
        raise _HttpError(400, 'query body needs "items": a non-empty list')
    return items


class ServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`MiningService`.

    Owns the wire-level observability state: the request-id source
    (sequential, so scripted sessions replay byte-for-byte), the flight
    recorder, and the path an unhandled 5xx dumps it to (``None``
    disables the dump; the recorder itself is always on).
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: MiningService,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        flight_capacity: int = 128,
        flight_dump_path: str | None = None,
    ) -> None:
        self.service = service
        self.max_body_bytes = max_body_bytes
        self.request_ids = RequestIdSource()
        self.flight = FlightRecorder(capacity=flight_capacity)
        self.flight_dump_path = flight_dump_path
        super().__init__(address, _Handler)

    def handle_error(self, request: object, client_address: object) -> None:
        # Clients hanging up mid-keep-alive is routine, not a stack trace.
        import sys

        error = sys.exc_info()[1]
        if isinstance(error, (ConnectionResetError, BrokenPipeError)):
            logger.debug("client %s disconnected: %s", client_address, error)
        else:
            logger.exception("error handling request from %s", client_address)


def serve(
    service: MiningService,
    host: str = "127.0.0.1",
    port: int = 0,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    flight_dump_path: str | None = None,
) -> ServiceServer:
    """Bind a server (``port=0`` picks a free port); caller runs it.

    ``flight_dump_path`` names the file an unhandled 5xx dumps the
    flight recorder to (``None`` disables the automatic dump).

    >>> from repro.service import MiningService, serve
    >>> server = serve(MiningService())           # doctest: +SKIP
    >>> server.serve_forever()                    # doctest: +SKIP
    """
    return ServiceServer(
        (host, port),
        service,
        max_body_bytes=max_body_bytes,
        flight_dump_path=flight_dump_path,
    )
