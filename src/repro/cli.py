"""Command-line interface: ``python -m repro <command>``.

The commands cover the workflows the paper's experiments chain
together:

* ``mine`` — run the chi2-support miner (Figure 1) over a basket file
  and print the significant itemsets with their evidence;
* ``topk`` — rank the K strongest pair correlations with the FP-tree
  branch-and-bound engine (:mod:`repro.fptree`);
* ``apriori`` — run the support-confidence baseline and print the
  accepted association rules;
* ``generate`` — materialise one of the paper's datasets (census /
  quest / corpus) into a basket file;
* ``describe`` — print summary statistics of a basket file;
* ``serve`` — run the streaming mining service (:mod:`repro.service`):
  a long-lived HTTP server accepting basket appends and answering
  correlation / top-K queries from incrementally maintained state.

Basket files are the plain-text formats of :mod:`repro.data.io`: one
basket per line, whitespace-separated item names (default) or integer
ids (``--numeric``).

``mine`` is fully observable: ``--telemetry`` prints the run report
(Table 5 with timings, cache/kernel/pool rollups) on stderr,
``--metrics-out FILE`` writes the metrics snapshot + run report as
JSON, ``--trace-out FILE`` writes a Chrome trace-event file loadable
in ``chrome://tracing``/Perfetto, and ``--profile`` samples the run
with the wall-clock profiler and prints a span-attributed
collapsed-stack report on stderr.  The global ``--log-level``
configures stdlib logging on stderr for every command.
"""

from __future__ import annotations

import argparse
import logging
import sys
from collections.abc import Sequence

from repro.algorithms.apriori import apriori
from repro.algorithms.chi2support import ChiSquaredSupportMiner
from repro.algorithms.rulegen import generate_rules
from repro.data.basket import BasketDatabase
from repro.data.io import (
    read_named_baskets,
    read_numeric_baskets,
    write_named_baskets,
    write_numeric_baskets,
)
from repro.measures.cellsupport import CellSupport

__all__ = ["main", "build_parser"]


def _load(path: str, numeric: bool) -> BasketDatabase:
    if numeric:
        return read_numeric_baskets(path)
    return read_named_baskets(path)


def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", required=True, help="basket file to read")
    parser.add_argument(
        "--numeric",
        action="store_true",
        help="baskets contain integer item ids rather than names",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Correlation rule mining (Brin, Motwani & Silverstein, SIGMOD 1997)",
    )
    parser.add_argument(
        "--log-level",
        choices=["DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"],
        default=None,
        help="configure stdlib logging on stderr (e.g. the parallel engine's warnings)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    mine = commands.add_parser("mine", help="mine significant correlated itemsets")
    _add_input_arguments(mine)
    mine.add_argument("--significance", type=float, default=0.95)
    mine.add_argument("--support-count", type=float, default=1.0, help="cell count threshold s")
    mine.add_argument("--support-fraction", type=float, default=0.26, help="cell fraction p")
    mine.add_argument("--max-level", type=int, default=None)
    mine.add_argument("--statistic", choices=["chi2", "g"], default="chi2")
    mine.add_argument(
        "--counting",
        choices=["bitmap", "single_pass", "cube", "vectorized", "parallel", "fptree"],
        default="bitmap",
        help=(
            "contingency-table counting backend (vectorized = NumPy batch "
            "sweeps, fptree = candidate-generation-free prefix-tree sweep)"
        ),
    )
    mine.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --counting parallel (default: all cores)",
    )
    mine.add_argument(
        "--cache-size",
        type=int,
        default=256,
        help="LRU contingency-table cache capacity for --counting parallel",
    )
    mine.add_argument(
        "--kernel",
        choices=["auto", "blocked", "moebius", "scan", "bitmap"],
        default="auto",
        help=(
            "counting kernel for --counting vectorized/parallel: auto picks "
            "per batch from observed timings; blocked/moebius/scan force one "
            "NumPy kernel; bitmap forces the pure-Python kernels in the "
            "parallel engine (every kernel is bit-identical)"
        ),
    )
    mine.add_argument(
        "--shared-memory",
        choices=["auto", "on", "off"],
        default="auto",
        help=(
            "shard transport for --counting parallel: auto uses zero-copy "
            "shared-memory slices when NumPy allows, on requires them, off "
            "always pickles shards to workers"
        ),
    )
    mine.add_argument("--limit", type=int, default=50, help="print at most this many rules")
    mine.add_argument(
        "--json", action="store_true", help="emit the full result as JSON instead of text"
    )
    mine.add_argument(
        "--telemetry",
        action="store_true",
        help="record spans/metrics and print the run report on stderr",
    )
    mine.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON file (chrome://tracing); implies --telemetry",
    )
    mine.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the metrics snapshot + run report as JSON; implies --telemetry",
    )
    mine.add_argument(
        "--profile",
        action="store_true",
        help=(
            "sample the run with the wall-clock profiler and print a "
            "collapsed-stack report on stderr; implies --telemetry"
        ),
    )

    topk = commands.add_parser(
        "topk", help="the K strongest pair correlations (FP-tree branch-and-bound)"
    )
    _add_input_arguments(topk)
    topk.add_argument("--k", type=int, default=10, help="how many pairs to report")
    topk.add_argument(
        "--min-cooccurrence",
        type=int,
        default=1,
        help="only rank pairs co-occurring at least this often (the search universe)",
    )
    topk.add_argument(
        "--no-prune",
        action="store_true",
        help="disable the branch-and-bound prune (same output, only slower)",
    )
    topk.add_argument(
        "--json", action="store_true", help="emit the ranking as JSON instead of text"
    )
    topk.add_argument(
        "--telemetry",
        action="store_true",
        help="record spans/metrics and print the sweep stats on stderr",
    )
    topk.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON file; implies --telemetry",
    )
    topk.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the metrics snapshot as JSON; implies --telemetry",
    )

    baseline = commands.add_parser("apriori", help="support-confidence baseline")
    _add_input_arguments(baseline)
    baseline.add_argument("--min-support", type=float, default=0.01)
    baseline.add_argument("--min-confidence", type=float, default=0.5)
    baseline.add_argument("--max-size", type=int, default=None)
    baseline.add_argument("--limit", type=int, default=50)

    generate = commands.add_parser("generate", help="materialise a paper dataset")
    generate.add_argument("dataset", choices=["census", "quest", "corpus"])
    generate.add_argument("--output", required=True)
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("--baskets", type=int, default=None, help="quest: transactions")
    generate.add_argument("--items", type=int, default=None, help="quest: item count")

    describe = commands.add_parser("describe", help="summary statistics of a basket file")
    _add_input_arguments(describe)

    negative = commands.add_parser(
        "negative", help="mine negative implications (common items that avoid each other)"
    )
    _add_input_arguments(negative)
    negative.add_argument("--min-item-count", type=int, required=True)
    negative.add_argument("--max-cooccurrence", type=int, required=True)
    negative.add_argument("--significance", type=float, default=0.95)
    negative.add_argument("--limit", type=int, default=50)

    serve = commands.add_parser(
        "serve", help="long-lived mining service: HTTP appends + correlation queries"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8317, help="0 picks a free port")
    serve.add_argument("--significance", type=float, default=0.95)
    serve.add_argument("--support-count", type=float, default=1.0, help="cell count threshold s")
    serve.add_argument("--support-fraction", type=float, default=0.26, help="cell fraction p")
    serve.add_argument("--max-level", type=int, default=None)
    serve.add_argument(
        "--counting",
        choices=["bitmap", "single_pass", "cube", "vectorized", "parallel", "fptree"],
        default="bitmap",
        help="table-counting backend for incremental re-mines",
    )
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument(
        "--cache-size", type=int, default=256, help="point-query table cache capacity"
    )
    serve.add_argument(
        "--backfill",
        metavar="FILE",
        default=None,
        help="replay this basket file as generation 1 before accepting requests",
    )
    serve.add_argument(
        "--numeric",
        action="store_true",
        help="the --backfill file contains integer item ids rather than names",
    )
    serve.add_argument(
        "--max-body-bytes",
        type=int,
        default=None,
        help="reject request bodies larger than this with 413 (default 4 MiB)",
    )
    serve.add_argument(
        "--telemetry",
        action="store_true",
        help="record per-request spans/metrics, served at GET /metrics",
    )
    serve.add_argument(
        "--flight-dump",
        metavar="FILE",
        default="flight-5xx.json",
        help=(
            "write the flight recorder here when a request dies with an "
            "unhandled 5xx ('' disables the automatic dump)"
        ),
    )

    return parser


def _command_mine(args: argparse.Namespace) -> int:
    telemetry = None
    if args.telemetry or args.trace_out or args.metrics_out or args.profile:
        from repro.obs import Telemetry

        telemetry = Telemetry.create()

    db = _load(args.input, args.numeric)
    miner = ChiSquaredSupportMiner(
        significance=args.significance,
        support=CellSupport(count=args.support_count, fraction=args.support_fraction),
        max_level=args.max_level,
        statistic=args.statistic,
        counting=args.counting,
        workers=args.workers,
        cache_size=args.cache_size,
        kernel=args.kernel,
        shared_memory=args.shared_memory,
        telemetry=telemetry,
    )
    profiler = None
    if args.profile:
        from repro.obs import SamplingProfiler

        profiler = SamplingProfiler(
            tracer=telemetry.tracer if telemetry is not None else None
        )
        profiler.start()
    try:
        result = miner.mine(db)
    finally:
        if profiler is not None:
            profiler.stop()

    if telemetry is not None:
        _export_telemetry(telemetry, result, args)
    if profiler is not None:
        print(profiler.report(limit=40), file=sys.stderr)

    if args.json:
        import json

        from repro.core.report import mining_result_to_dict

        print(json.dumps(mining_result_to_dict(result, db.vocabulary), indent=2))
        return 0

    from repro.core.report import render_level_stats, render_rules

    print(
        f"# {db.n_baskets} baskets, {db.n_items} items; "
        f"significance {args.significance}, support s={args.support_count} p={args.support_fraction}"
    )
    print(render_level_stats(result.level_stats))
    ranked = sorted(result.rules, key=lambda r: -r.statistic)
    print(render_rules(ranked, db.vocabulary, limit=args.limit))
    return 0


def _command_topk(args: argparse.Namespace) -> int:
    from repro.fptree import FPTreePairEngine

    telemetry = None
    if args.telemetry or args.trace_out or args.metrics_out:
        from repro.obs import Telemetry

        telemetry = Telemetry.create()

    db = _load(args.input, args.numeric)
    engine = FPTreePairEngine(db, telemetry=telemetry)
    result = engine.top_k(
        args.k, min_cooccurrence=args.min_cooccurrence, prune=not args.no_prune
    )

    if telemetry is not None:
        import json

        if args.trace_out:
            with open(args.trace_out, "w", encoding="utf-8") as handle:
                handle.write(telemetry.tracer.to_chrome_json(indent=2))
                handle.write("\n")
        if args.metrics_out:
            payload = {
                "metrics": telemetry.metrics.snapshot(),
                "sweep": result.stats.to_dict(),
            }
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        stats = result.stats
        print(
            f"fptree: {stats.nodes} nodes over {stats.header_items} items; "
            f"{stats.subtrees_pruned}/{stats.header_items} subtrees pruned, "
            f"{stats.pairs_pruned}/{stats.pairs_discovered} pair evaluations pruned",
            file=sys.stderr,
        )

    if args.json:
        print(result.serialize(db.vocabulary), end="")
        return 0

    print(
        f"# {db.n_baskets} baskets, {db.n_items} items; "
        f"top {args.k} pair correlations with co-occurrence >= {args.min_cooccurrence}"
    )
    for rank, entry in enumerate(result.entries, start=1):
        names = " ".join(db.vocabulary.decode(entry.itemset))
        print(
            f"{rank:>3}. chi2={entry.statistic:<12.4f} "
            f"cooccurrence={entry.cooccurrence:<6} {{{names}}}"
        )
    if not result.entries:
        print("# no pair meets the co-occurrence floor")
    return 0


def _export_telemetry(telemetry, result, args: argparse.Namespace) -> None:
    """Write the requested trace/metrics files; run report goes to stderr.

    stderr keeps the observability output separable from the mining
    results on stdout, so ``repro mine ... > rules.txt`` still works.
    """
    import json

    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(telemetry.tracer.to_chrome_json(indent=2))
            handle.write("\n")
    if args.metrics_out:
        payload = {
            "metrics": telemetry.metrics.snapshot(),
            "run_report": telemetry.run_report(result.level_stats),
        }
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(telemetry.render_summary(result.level_stats), file=sys.stderr)


def _command_apriori(args: argparse.Namespace) -> int:
    db = _load(args.input, args.numeric)
    result = apriori(db, min_support=args.min_support, max_size=args.max_size)
    rules = generate_rules(result, min_confidence=args.min_confidence)
    print(
        f"# {db.n_baskets} baskets, {db.n_items} items; "
        f"{len(result)} frequent itemsets at support >= {args.min_support}"
    )
    shown = sorted(rules, key=lambda r: -r.confidence)[: args.limit]
    for rule in shown:
        print(rule.describe(db.vocabulary))
    remaining = len(rules) - len(shown)
    if remaining > 0:
        print(f"# ... and {remaining} more (raise --limit to see them)")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    if args.dataset == "census":
        from repro.data.census import synthesize_census

        db = synthesize_census()
        write_named_baskets(db, args.output)
    elif args.dataset == "quest":
        from repro.data.quest import QuestParameters, generate_quest

        overrides: dict[str, object] = {}
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.baskets is not None:
            overrides["n_transactions"] = args.baskets
        if args.items is not None:
            overrides["n_items"] = args.items
        db = generate_quest(QuestParameters(**overrides))  # type: ignore[arg-type]
        write_numeric_baskets(db, args.output)
    else:
        from repro.data.corpusgen import NewsCorpusParameters, generate_news_corpus
        from repro.data.text import TextPipeline

        params = (
            NewsCorpusParameters(seed=args.seed)
            if args.seed is not None
            else NewsCorpusParameters()
        )
        db = TextPipeline().run(generate_news_corpus(params))
        write_named_baskets(db, args.output)
    print(f"wrote {db.n_baskets} baskets over {db.n_items} items to {args.output}")
    return 0


def _command_describe(args: argparse.Namespace) -> int:
    db = _load(args.input, args.numeric)
    sizes = sorted(len(basket) for basket in db)
    average = sum(sizes) / len(sizes) if sizes else 0.0
    median = sizes[len(sizes) // 2] if sizes else 0
    print(f"baskets: {db.n_baskets}")
    print(f"items:   {db.n_items}")
    print(f"basket size: avg {average:.2f}, median {median}, max {sizes[-1] if sizes else 0}")
    counts = db.item_counts()
    top = sorted(db.vocabulary.ids(), key=lambda i: -counts[i])[:10]
    print("most frequent items:")
    for item in top:
        print(f"  {db.vocabulary.name_of(item)}: {counts[item]}")
    return 0


def _command_negative(args: argparse.Namespace) -> int:
    from repro.algorithms.negative import mine_negative_implications

    db = _load(args.input, args.numeric)
    results = mine_negative_implications(
        db,
        min_item_count=args.min_item_count,
        max_cooccurrence=args.max_cooccurrence,
        significance=args.significance,
    )
    print(f"# {len(results)} negative implications at significance {args.significance}")
    for implication in results[: args.limit]:
        print(implication.describe(db.vocabulary))
    remaining = len(results) - args.limit
    if remaining > 0:
        print(f"# ... and {remaining} more (raise --limit to see them)")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.service import MiningService
    from repro.service.http import DEFAULT_MAX_BODY_BYTES, serve

    telemetry = None
    if args.telemetry:
        from repro.obs import Telemetry

        telemetry = Telemetry.create()

    service = MiningService(
        significance=args.significance,
        support_count=args.support_count,
        support_fraction=args.support_fraction,
        max_level=args.max_level,
        counting=args.counting,
        workers=args.workers,
        cache_size=args.cache_size,
        telemetry=telemetry,
    )
    if args.backfill:
        outcome = service.backfill(args.backfill, numeric=args.numeric)
        print(
            f"backfilled {outcome['appended']} baskets from {args.backfill}: "
            f"{outcome['significant']} significant itemsets at generation "
            f"{outcome['generation']}"
        )
    max_body = args.max_body_bytes if args.max_body_bytes else DEFAULT_MAX_BODY_BYTES
    server = serve(
        service,
        host=args.host,
        port=args.port,
        max_body_bytes=max_body,
        flight_dump_path=args.flight_dump or None,
    )
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port} (counting={args.counting}; ctrl-c to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
    return 0


_COMMANDS = {
    "mine": _command_mine,
    "topk": _command_topk,
    "apriori": _command_apriori,
    "generate": _command_generate,
    "describe": _command_describe,
    "negative": _command_negative,
    "serve": _command_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level:
        logging.basicConfig(
            level=getattr(logging, args.log_level),
            stream=sys.stderr,
            format="%(levelname)s %(name)s: %(message)s",
        )
    try:
        return _COMMANDS[args.command](args)
    except (FileNotFoundError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
