"""Blocked level-k counting kernel — batched over the candidate axis.

The general successor to the per-itemset Möbius kernel: where
``count_cells_moebius`` walks the subset-support DFS once per candidate
(paying Python loop and dispatch overhead ``2^k`` times per itemset),
this kernel processes a whole same-width batch at once.  The DFS over
item masks runs exactly once; at every mask the running intersection is
a ``(c, n_words)`` *matrix* — one row per candidate — so the AND and
the popcount are single vectorized operations across the entire batch.
The superset-to-cell Möbius inversion then folds the ``(c, 2^k)``
support matrix with one strided subtraction per item, the candidate
axis riding along for free.

Blocking: candidates are processed in chunks sized so the live working
set (the ``k`` gathered item-row blocks plus at most ``k`` path
intersections) stays within :data:`BLOCK_WORDS` words of scratch, i.e.
cache-resident for the levels a miner actually visits, regardless of
how many candidates a level has.

Exactness: every support is an integer popcount summed in ``int64`` and
the inversion is integer subtraction — the same operations in the same
order as the per-itemset kernel — so the resulting cells are
bit-identical to ``count_cells_moebius`` and therefore to the
pure-Python kernels (the differential backend-equivalence suite pins
this down for k = 2..6 explicitly).

The dense ``2^k`` table walk caps the kernel at
:data:`BLOCKED_MAX_ITEMS` items; the dispatcher routes wider itemsets
to the basket-major scan.
"""

from __future__ import annotations

from repro.kernels.packed import PackedBitmapIndex, popcount

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised in minimal installs
    np = None  # type: ignore[assignment]

__all__ = ["BLOCKED_MAX_ITEMS", "BLOCK_WORDS", "count_cells_blocked", "mask_supports"]

# Dense-table ceiling, shared with the Möbius kernels (2^k cells per row).
BLOCKED_MAX_ITEMS = 12

# Scratch budget in uint64 words for one chunk's live arrays (~16 MiB).
BLOCK_WORDS = 1 << 21


def mask_supports(index: PackedBitmapIndex, ids) -> "np.ndarray":
    """``g[i, m]`` = baskets containing every item of mask ``m`` of row ``i``.

    ``ids`` is a ``(c, k)`` integer array of item ids; the result is the
    ``(c, 2^k)`` subset-support matrix (``g[:, 0] = n``).  One DFS over
    the ``2^k`` masks, sharing the running intersection along the path;
    every node costs one batched AND plus one batched popcount.
    """
    c, k = ids.shape
    g = np.empty((c, 1 << k), dtype=np.int64)
    g[:, 0] = index.n_baskets
    if c == 0 or k == 0:
        return g
    packed = index.packed
    gathered = [packed[ids[:, j]] for j in range(k)]

    def descend(mask: int, rows, start: int) -> None:
        for j in range(start, k):
            new_mask = mask | (1 << j)
            new_rows = gathered[j] if rows is None else rows & gathered[j]
            g[:, new_mask] = popcount(new_rows).sum(axis=1, dtype=np.int64)
            if j + 1 < k:
                descend(new_mask, new_rows, j + 1)

    descend(0, None, 0)
    return g


def count_cells_blocked(index: PackedBitmapIndex, candidates) -> list[dict[int, int]]:
    """Sparse cell counts for a same-width batch of sorted item-id tuples.

    All candidates must have the same width ``k`` with
    ``1 <= k <= BLOCKED_MAX_ITEMS``; the dispatcher owns the grouping.
    Results align with the input order.
    """
    n_candidates = len(candidates)
    if n_candidates == 0:
        return []
    ids = np.asarray(candidates, dtype=np.intp).reshape(n_candidates, -1)
    k = ids.shape[1]
    if k > BLOCKED_MAX_ITEMS:
        raise ValueError(
            f"blocked kernel handles at most {BLOCKED_MAX_ITEMS} items, got {k}"
        )
    width = max(1, index.n_words)
    # Live scratch per candidate row: k gathered blocks + <= k path rows.
    step = max(1, BLOCK_WORDS // (width * max(1, 2 * k)))
    results: list[dict[int, int]] = []
    for start in range(0, n_candidates, step):
        g = mask_supports(index, ids[start : start + step])
        # In-place superset Möbius inversion along the cell axis, the
        # candidate axis vectorized: for every mask without bit j,
        # subtract the mask with bit j set.
        chunk = g.shape[0]
        for j in range(k):
            folded = g.reshape(chunk, -1, 2, 1 << j)
            folded[:, :, 0, :] -= folded[:, :, 1, :]
        for row in g.tolist():
            results.append({cell: count for cell, count in enumerate(row) if count})
    return results
