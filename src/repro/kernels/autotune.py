"""Telemetry-driven kernel dispatch (`repro.kernels.autotune`).

:class:`KernelDispatcher` decides, per same-width batch, which counting
kernel runs it: the closed-form grams for pairs/triples, the blocked
level-k kernel, the per-itemset Möbius walk, or the basket-major scan.
The decision combines hard width routing (cell ids overflow each kernel
at known widths) with a learned cost model: every batch a kernel runs
is timed, the observed seconds are divided by that batch's *work* (a
words-touched estimate from the batch shape), and an exponential moving
average of the resulting unit cost drives the next choice.  Before any
observation exists the dispatcher falls back to fixed priors that
encode the static ranking (gram < blocked < moebius << scan for dense
widths), so a cold dispatcher behaves like a sensible static dispatch
table and then sharpens as counters accumulate.

Every decision is recorded as a ``kernel_autotune{k=...,path=...,
reason=...}`` counter on the registry (surfaced in the run report's
``autotune`` section) and appended to :attr:`KernelDispatcher.decisions`
with the predicted costs, so a surprising kernel choice is auditable
after the fact rather than a black box.

The dispatcher is deliberately cheap and unsynchronised: the miner
creates one per run and shares it across levels; each pool worker keeps
its own, learning from its own shard timings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.clock import default_clock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.clock import Clock
    from repro.obs.metrics import MetricsRegistry

__all__ = ["DISPATCH_MODES", "KernelDispatcher"]

# ``auto`` learns; the rest force one kernel family wherever it is legal
# (width routing still applies where a forced kernel cannot count).
DISPATCH_MODES = ("auto", "blocked", "moebius", "scan")

# Dense-table ceiling (2^k cells) shared with the blocked/Möbius kernels
# and the pure-Python dispatcher.
_MAX_DENSE_ITEMS = 12

# Widest itemset whose cell ids fit the scan kernel's int64 arithmetic.
_MAX_SCAN_ITEMS = 63

# Relative unit-cost priors (cost per unit of work before any timing has
# been observed).  Scale is arbitrary but shared, anchored to real
# seconds via _REFERENCE_UNIT so cold priors compare against observed
# EWMA values without a separate code path.
_PRIORS = {"gram": 0.25, "blocked": 1.0, "moebius": 3.0, "scan": 40.0}

# Ballpark seconds per word of packed-bitmap traffic on any recent CPU;
# only the cold-start ordering depends on it, observations take over.
_REFERENCE_UNIT = 2e-9

# EWMA smoothing for observed unit costs.
_ALPHA = 0.3

# Decision log ring size (enough for every level of any realistic run).
_MAX_DECISIONS = 256


def _work(path: str, k: int, count: int, n_words: int) -> float:
    """Words-touched estimate for ``count`` width-``k`` itemsets."""
    words = max(1, n_words)
    if path == "scan":
        # The scan unpacks k rows to bytes once per itemset and bins all
        # baskets; traffic is linear in k, not 2^k.
        return float(count) * max(1, k) * words * 8.0
    if path == "gram":
        return float(count) * 4.0 * words
    # blocked and moebius both materialise the full subset lattice.
    return float(count) * (1 << k) * words


class KernelDispatcher:
    """Pick a counting kernel per batch from width, shape, and history.

    ``mode`` is one of :data:`DISPATCH_MODES`.  ``metrics`` (a
    :class:`repro.obs.MetricsRegistry`) receives one
    ``kernel_autotune{k=...,path=...,reason=...}`` increment per
    decision; pass ``None`` to run silently.  ``clock`` times the
    batches :meth:`timed` observes — injectable so the learning loop is
    deterministic under a ``FakeClock``.

    >>> dispatcher = KernelDispatcher()
    >>> dispatcher.choose(2, count=100, n_words=8)
    'gram'
    >>> dispatcher.choose(5, count=100, n_words=8)
    'blocked'
    >>> dispatcher.choose(20, count=3, n_words=8)
    'scan'
    >>> KernelDispatcher(mode="moebius").choose(5, count=100, n_words=8)
    'moebius'
    """

    __slots__ = ("mode", "metrics", "clock", "decisions", "_units")

    def __init__(
        self,
        mode: str = "auto",
        metrics: "MetricsRegistry | None" = None,
        clock: "Clock | None" = None,
    ) -> None:
        if mode not in DISPATCH_MODES:
            raise ValueError(
                f"unknown dispatch mode {mode!r}; expected one of {DISPATCH_MODES}"
            )
        self.mode = mode
        self.metrics = metrics
        self.clock = clock if clock is not None else default_clock()
        self.decisions: list[dict] = []
        # path -> observed EWMA seconds-per-work (None until observed).
        self._units: dict[str, float | None] = {path: None for path in _PRIORS}

    # -- choosing -------------------------------------------------------------

    def choose(self, k: int, count: int, n_words: int) -> str:
        """The kernel path for a batch of ``count`` width-``k`` itemsets.

        Returns one of ``"unit"``, ``"gram"``, ``"blocked"``,
        ``"moebius"``, ``"scan"``; widths past the scan ceiling are the
        caller's problem (route them to the pure-Python big-int scan).
        """
        if k < 1:
            raise ValueError("a contingency table needs at least one item")
        if k == 1:
            return self._record(k, count, "unit", "width")
        if k > _MAX_SCAN_ITEMS:
            raise ValueError(
                f"packed kernels cap at {_MAX_SCAN_ITEMS} items, got {k}"
            )
        if self.mode != "auto":
            if self.mode == "scan" or k > _MAX_DENSE_ITEMS:
                # Forced dense kernels still can't count past 2^12 cells.
                path = "scan"
                reason = "forced" if self.mode == "scan" else "width"
            else:
                path, reason = self.mode, "forced"
            return self._record(k, count, path, reason)
        if k <= 3:
            return self._record(k, count, "gram", "width")
        if k > _MAX_DENSE_ITEMS:
            return self._record(k, count, "scan", "width")
        path, reason = self._cheapest(("blocked", "moebius", "scan"), k, count, n_words)
        return self._record(k, count, path, reason)

    def _cheapest(
        self, paths: tuple[str, ...], k: int, count: int, n_words: int
    ) -> tuple[str, str]:
        best_path, best_cost, learned = paths[0], None, False
        costs: dict[str, float] = {}
        for path in paths:
            unit = self._units[path]
            if unit is None:
                unit = _PRIORS[path] * _REFERENCE_UNIT
            else:
                learned = True
            cost = unit * _work(path, k, count, n_words)
            costs[path] = cost
            if best_cost is None or cost < best_cost:
                best_path, best_cost = path, cost
        reason = "learned" if learned else "prior"
        self._note(k, count, best_path, reason, costs)
        return best_path, reason

    def _record(self, k: int, count: int, path: str, reason: str) -> str:
        if reason != "learned" and reason != "prior":
            self._note(k, count, path, reason, None)
        if self.metrics is not None:
            self.metrics.counter(
                "kernel_autotune", k=str(k), path=path, reason=reason
            ).inc()
        return path

    def _note(
        self, k: int, count: int, path: str, reason: str, costs: dict | None
    ) -> None:
        if len(self.decisions) >= _MAX_DECISIONS:
            del self.decisions[0]
        decision = {"k": k, "count": count, "path": path, "reason": reason}
        if costs is not None:
            decision["predicted_cost_s"] = {
                p: round(c, 9) for p, c in sorted(costs.items())
            }
        self.decisions.append(decision)

    # -- learning -------------------------------------------------------------

    def observe(
        self, path: str, k: int, count: int, n_words: int, seconds: float
    ) -> None:
        """Fold one timed batch into the unit-cost model for ``path``."""
        if path not in self._units or count <= 0 or seconds < 0:
            return
        unit = seconds / _work(path, k, count, n_words)
        previous = self._units[path]
        if previous is None:
            self._units[path] = unit
        else:
            self._units[path] = _ALPHA * unit + (1.0 - _ALPHA) * previous

    def timed(self, path: str, k: int, count: int, n_words: int):
        """Context manager timing a batch and feeding :meth:`observe`."""
        return _TimedObservation(self, path, k, count, n_words)

    # -- introspection --------------------------------------------------------

    def unit_costs(self) -> dict[str, float | None]:
        """Observed EWMA seconds-per-work per path (``None`` = unobserved)."""
        return dict(self._units)


class _TimedObservation:
    __slots__ = ("_dispatcher", "_path", "_k", "_count", "_n_words", "_start")

    def __init__(self, dispatcher, path, k, count, n_words) -> None:
        self._dispatcher = dispatcher
        self._path = path
        self._k = k
        self._count = count
        self._n_words = n_words
        self._start = 0.0

    def __enter__(self) -> "_TimedObservation":
        self._start = self._dispatcher.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._dispatcher.observe(
                self._path,
                self._k,
                self._count,
                self._n_words,
                self._dispatcher.clock() - self._start,
            )
