"""Vectorized k-item Möbius kernel.

The array-form twin of ``repro.core.contingency._cells_by_moebius``:
walk the DFS over item masks keeping the running intersection as a
``uint64`` row vector instead of a Python big int, take each mask's
support as a vectorized popcount, then invert the superset sums to cell
counts with an in-place Möbius pass that is itself vectorized — axis
``j`` of the length-``2^k`` support array is folded with one strided
subtraction rather than a Python loop over masks.

Exactness: every ``g[m]`` is an integer popcount and the inversion is
integer subtraction, so the resulting cells are bit-identical to the
pure-Python kernel's.
"""

from __future__ import annotations

from repro.kernels.packed import PackedBitmapIndex, popcount

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised in minimal installs
    np = None  # type: ignore[assignment]

__all__ = ["count_cells_moebius"]


def count_cells_moebius(index: PackedBitmapIndex, items) -> dict[int, int]:
    """Sparse ``2^k``-cell counts for one itemset of sorted item ids."""
    k = len(items)
    rows = index.rows(items)
    n_cells = 1 << k
    g = np.zeros(n_cells, dtype=np.int64)
    g[0] = index.n_baskets

    # DFS over masks, sharing intersections along the path: the stack
    # holds (mask, row-intersection-of-mask, next item position); None
    # stands for "all baskets" so the root never materialises a row.
    stack: list[tuple[int, object, int]] = [(0, None, 0)]
    while stack:
        mask, row, start = stack.pop()
        for j in range(start, k):
            new_mask = mask | (1 << j)
            new_row = rows[j] if row is None else row & rows[j]
            g[new_mask] = int(popcount(new_row).sum(dtype=np.int64))
            stack.append((new_mask, new_row, j + 1))

    # In-place superset Möbius inversion, one strided fold per item:
    # for every mask without bit j, subtract the mask with bit j set.
    for j in range(k):
        folded = g.reshape(-1, 2, 1 << j)
        folded[:, 0, :] -= folded[:, 1, :]
    return {cell: count for cell, count in enumerate(g.tolist()) if count}
