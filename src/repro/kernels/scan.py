"""Batched single-pass scan for wide itemsets, basket-major.

Itemsets wider than the Möbius cutoff have too many cells for a dense
``2^k`` table walk, but their *occupied* cells are at most ``n``.  The
pure-Python fallback classifies each basket with a dict probe per item;
this kernel instead unpacks the items' packed bitmap rows to a
``(k, n)`` 0/1 ``uint8`` matrix — basket-major after the transpose the
shifts imply — folds the k presence bits of each basket into its cell
id with vectorized shifts, and reads the sparse table off
``np.unique(..., return_counts=True)``.

Baskets are processed in bounded chunks so the unpacked bit matrix
never exceeds ~:data:`CHUNK_BYTES` of scratch.  Cell ids are built in
``int64``, which caps the kernel at 63 items; the dispatcher routes
anything wider to the pure-Python scan.
"""

from __future__ import annotations

from repro.kernels.packed import PackedBitmapIndex

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised in minimal installs
    np = None  # type: ignore[assignment]

__all__ = ["CHUNK_BYTES", "MAX_SCAN_ITEMS", "count_cells_scan"]

# Scratch budget for one chunk's unpacked (k, chunk_baskets) bit matrix.
CHUNK_BYTES = 1 << 24
# int64 cell ids: bit 63 is the sign bit, so 63 items is the ceiling.
MAX_SCAN_ITEMS = 63


def count_cells_scan(index: PackedBitmapIndex, items) -> dict[int, int]:
    """Sparse cell counts for one wide itemset (``k <= 63``)."""
    k = len(items)
    if k > MAX_SCAN_ITEMS:
        raise ValueError(f"scan kernel handles at most {MAX_SCAN_ITEMS} items, got {k}")
    rows = index.rows(items)
    n = index.n_baskets
    counts: dict[int, int] = {}
    if n == 0:
        return counts

    # Chunk along the word axis: every word is a self-contained run of
    # 64 baskets, so per-chunk cell ids never mix across chunks.
    words_per_chunk = max(1, CHUNK_BYTES // (64 * max(1, k)))
    for word_start in range(0, rows.shape[1], words_per_chunk):
        block = rows[:, word_start : word_start + words_per_chunk]
        as_bytes = np.ascontiguousarray(block).astype("<u8").view(np.uint8)
        bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
        # Padding bits past n_baskets are zero in every row, but they
        # would still count as cell 0 — slice them off.
        basket_start = word_start * 64
        valid = min(n - basket_start, bits.shape[1])
        cells = np.zeros(valid, dtype=np.int64)
        for j in range(k):
            cells |= bits[j, :valid].astype(np.int64) << j
        values, tallies = np.unique(cells, return_counts=True)
        for cell, tally in zip(values.tolist(), tallies.tolist()):
            counts[cell] = counts.get(cell, 0) + tally
    return counts
