"""Vectorized counting kernels (`repro.kernels`).

The NumPy-accelerated counting layer: a :class:`PackedBitmapIndex`
stores the vertical database as a ``(n_items, ceil(n/64))`` ``uint64``
matrix (built once per database, cached on it like the big-int
bitmaps), and three kernels count contingency cells on it —

* a **batched level-2 sweep** (`repro.kernels.sweep`) that counts all
  candidate pairs of a level in one vectorized row-broadcast AND +
  popcount pass (plus a level-3 twin),
* a **vectorized Möbius kernel** (`repro.kernels.moebius`) that walks
  the subset-support DFS with array intersections and inverts with
  strided folds, and
* a **basket-major scan** (`repro.kernels.scan`) that unpacks wide
  itemsets' rows to ``uint8`` chunks and bins cell ids with
  ``np.unique``.

* a **blocked level-k kernel** (`repro.kernels.blocked`) that batches
  the Möbius walk over the candidate axis — one DFS per level instead
  of one per itemset — in cache-resident chunks, and
* a **telemetry-driven dispatcher** (`repro.kernels.autotune`) that
  picks the kernel per batch from width, shape, and observed timings.

Every kernel computes exact integer counts, bit-identical to the
pure-Python kernels in :mod:`repro.core.contingency` (the differential
backend-equivalence suite enforces this).  The miner reaches this layer
through ``counting="vectorized"``; the sharded parallel engine composes
with it by running the same batch entry point per shard — either over a
shard-local database or over a zero-copy slice of the shared-memory
packed index (:mod:`repro.parallel.shm`).

When NumPy is missing, :func:`count_cells_batch` and
:func:`count_tables_vectorized` silently fall back to the pure-Python
kernels, so callers never need to gate on :data:`HAS_NUMPY` themselves.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.core import contingency as _contingency
from repro.core.contingency import ContingencyTable, count_cells
from repro.core.itemsets import Itemset
from repro.data.basket import BasketDatabase
from repro.kernels.autotune import DISPATCH_MODES, KernelDispatcher
from repro.kernels.packed import HAS_NUMPY, PackedBitmapIndex, popcount

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "DISPATCH_MODES",
    "HAS_NUMPY",
    "KernelDispatcher",
    "MOEBIUS_MAX_ITEMS",
    "PackedBitmapIndex",
    "count_cells_batch",
    "count_cells_batch_packed",
    "count_cells_vectorized",
    "count_tables_vectorized",
    "popcount",
]

# Möbius-vs-scan cutoff, shared with the pure-Python dispatcher so both
# paths switch kernels at the same width.
MOEBIUS_MAX_ITEMS = _contingency._MAX_DENSE_ITEMS

# Widest itemset whose cell ids fit the scan kernel's int64 arithmetic.
_MAX_SCAN_ITEMS = 63


def count_cells_batch(
    db: BasketDatabase,
    itemsets: Sequence[Itemset],
    metrics: "MetricsRegistry | None" = None,
    dispatcher: KernelDispatcher | None = None,
) -> list[dict[int, int]]:
    """Exact sparse cell counts for a batch of itemsets, vectorized.

    The batch entry point behind ``counting="vectorized"`` and the
    parallel engine's vectorized shards: itemsets are grouped by width
    and each group is handed to the kernel the dispatcher picks —
    closed-form grams for pairs/triples, the blocked level-k kernel or
    the per-itemset Möbius walk for mid widths, the basket-major scan
    for wide ones.  Results align with the input order and are
    bit-identical to :func:`repro.core.contingency.count_cells` per
    itemset.

    ``dispatcher`` (a :class:`KernelDispatcher`) carries the forced
    mode and the learned cost model; ``None`` creates a cold ``auto``
    dispatcher per call, which reduces to the static dispatch table.
    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) receives one
    ``kernel_dispatch{path=...}`` increment per itemset recording which
    kernel counted it, plus the ``numpy_present`` gauge — the dispatch
    visibility the observability layer surfaces in run reports.
    """
    itemsets = list(itemsets)
    dispatch = _dispatch_recorder(metrics)
    if not HAS_NUMPY:
        dispatch("fallback", len(itemsets))
        return [count_cells(db, itemset) for itemset in itemsets]
    index = db.packed_index()
    results: list[dict[int, int] | None] = [None] * len(itemsets)
    packed_slots: list[int] = []
    packed_items: list[tuple[int, ...]] = []
    for slot, itemset in enumerate(itemsets):
        items = itemset.items
        k = len(items)
        if k == 0:
            raise ValueError("a contingency table needs at least one item")
        if k > _MAX_SCAN_ITEMS:
            # Cell ids overflow int64 past 63 items; the sparse Python
            # scan handles arbitrary widths with big-int cells.
            dispatch("fallback")
            results[slot] = _contingency._cells_by_scan(db, itemset)
        else:
            packed_slots.append(slot)
            packed_items.append(items)
    if packed_items:
        counted = count_cells_batch_packed(
            index, packed_items, dispatcher=dispatcher, record=dispatch
        )
        for slot, cells in zip(packed_slots, counted):
            results[slot] = cells
    return results  # type: ignore[return-value]


def count_cells_batch_packed(
    index: PackedBitmapIndex,
    candidates: Sequence[tuple[int, ...]],
    dispatcher: KernelDispatcher | None = None,
    record=None,
) -> list[dict[int, int]]:
    """Sparse cell counts for sorted item-id tuples over a packed index.

    The database-free core of :func:`count_cells_batch`: everything it
    needs lives in the :class:`PackedBitmapIndex`, so shared-memory pool
    workers call it directly on a zero-copy view of the parent's packed
    matrix.  Candidates are grouped by width, each group counted by the
    kernel ``dispatcher`` chooses (and timed to feed its cost model).
    Widths past the 63-item scan ceiling raise — only a database can
    count those (big-int cell ids); the callers route them beforehand.

    ``record`` is an optional ``(path, n)`` callable receiving one call
    per group, wired to the ``kernel_dispatch`` counters by
    :func:`count_cells_batch`.
    """
    from repro.kernels.blocked import count_cells_blocked
    from repro.kernels.moebius import count_cells_moebius
    from repro.kernels.scan import count_cells_scan
    from repro.kernels.sweep import count_pairs_batch, count_triples_batch

    candidates = list(candidates)
    if dispatcher is None:
        dispatcher = KernelDispatcher()
    results: list[dict[int, int] | None] = [None] * len(candidates)
    groups: dict[int, list[int]] = {}
    for slot, items in enumerate(candidates):
        groups.setdefault(len(items), []).append(slot)
    for k in sorted(groups):
        slots = groups[k]
        group = [candidates[slot] for slot in slots]
        path = dispatcher.choose(k, len(group), index.n_words)
        if record is not None:
            record(path, len(group))
        with dispatcher.timed(path, k, len(group), index.n_words):
            if path == "unit":
                n = index.n_baskets
                counted = []
                for items in group:
                    count = int(index.counts[items[0]])
                    cells = {0b1: count, 0b0: n - count}
                    counted.append({cell: c for cell, c in cells.items() if c})
            elif path == "gram":
                if k == 2:
                    counted = count_pairs_batch(index, group)
                else:
                    counted = count_triples_batch(index, group)
            elif path == "blocked":
                counted = count_cells_blocked(index, group)
            elif path == "moebius":
                counted = [count_cells_moebius(index, items) for items in group]
            else:
                counted = [count_cells_scan(index, items) for items in group]
        for slot, cells in zip(slots, counted):
            results[slot] = cells
    return results  # type: ignore[return-value]


def _dispatch_recorder(metrics: "MetricsRegistry | None"):
    """A ``record(path, n=1)`` closure onto ``kernel_dispatch`` counters.

    Returns a shared no-op when metrics are absent so the dispatch loop
    stays unconditional.  Also stamps the ``numpy_present`` gauge, the
    run report's "which environment actually ran" signal.
    """
    if metrics is None:
        return _NO_DISPATCH
    metrics.gauge("numpy_present").set(1.0 if HAS_NUMPY else 0.0)

    def record(path: str, n: int = 1) -> None:
        metrics.counter("kernel_dispatch", path=path).inc(n)

    return record


def _NO_DISPATCH(path: str, n: int = 1) -> None:
    return None


def count_cells_vectorized(
    db: BasketDatabase,
    itemset: Itemset,
    metrics: "MetricsRegistry | None" = None,
) -> dict[int, int]:
    """Exact sparse cell counts for one itemset via the vectorized kernels."""
    return count_cells_batch(db, [itemset], metrics=metrics)[0]


def count_tables_vectorized(
    db: BasketDatabase,
    itemsets: Iterable[Itemset],
    metrics: "MetricsRegistry | None" = None,
    dispatcher: KernelDispatcher | None = None,
) -> dict[Itemset, ContingencyTable]:
    """Contingency tables for a batch of itemsets via the vectorized kernels.

    The per-level call the miner's ``counting="vectorized"`` backend
    makes — the vectorized analogue of
    :func:`repro.core.contingency.count_tables_single_pass`.  Tables are
    assembled straight from the sweep's cell columns (marginals come
    from the index's item counts), skipping the intermediate dict pass
    the shard wire format needs.  ``metrics`` records per-itemset
    ``kernel_dispatch`` counters exactly as :func:`count_cells_batch`
    does; a ``dispatcher`` with a forced mode reroutes pairs/triples
    through that kernel too (the closed-form columns only serve the
    ``auto`` fast path).
    """
    itemsets = list(itemsets)
    n = db.n_baskets
    dispatch = _dispatch_recorder(metrics)
    if not HAS_NUMPY:
        dispatch("fallback", len(itemsets))
        return {
            itemset: ContingencyTable.from_database(db, itemset)
            for itemset in itemsets
        }
    from repro.kernels.sweep import pair_cell_columns, triple_cell_columns

    index = db.packed_index()
    tables: dict[Itemset, ContingencyTable] = {}
    pair_group: list[Itemset] = []
    triple_group: list[Itemset] = []
    other_group: list[Itemset] = []
    forced = dispatcher is not None and dispatcher.mode != "auto"
    for itemset in itemsets:
        k = len(itemset)
        if k == 2 and not forced:
            pair_group.append(itemset)
        elif k == 3 and not forced:
            triple_group.append(itemset)
        else:
            other_group.append(itemset)

    if pair_group:
        dispatch("gram", len(pair_group))
        both, only_a, only_b, neither, count_a, count_b = pair_cell_columns(
            index, [itemset.items for itemset in pair_group]
        )
        columns = zip(
            pair_group,
            both.tolist(),
            only_a.tolist(),
            only_b.tolist(),
            neither.tolist(),
            count_a.tolist(),
            count_b.tolist(),
        )
        for itemset, c11, c01, c10, c00, ca, cb in columns:
            cells: dict[int, float] = {}
            if c11:
                cells[0b11] = c11
            if c01:
                cells[0b01] = c01
            if c10:
                cells[0b10] = c10
            if c00:
                cells[0b00] = c00
            tables[itemset] = ContingencyTable._from_parts(
                itemset, cells, (float(ca), float(cb)), n
            )
    if triple_group:
        dispatch("gram", len(triple_group))
        cell_columns, (n_a, n_b, n_c) = triple_cell_columns(
            index, [itemset.items for itemset in triple_group]
        )
        listed = [(cell, column.tolist()) for cell, column in cell_columns.items()]
        marginal_rows = zip(n_a.tolist(), n_b.tolist(), n_c.tolist())
        for i, (itemset, marginals) in enumerate(zip(triple_group, marginal_rows)):
            cells = {}
            for cell, column in listed:
                count = column[i]
                if count:
                    cells[cell] = count
            tables[itemset] = ContingencyTable._from_parts(
                itemset, cells, tuple(map(float, marginals)), n
            )
    if other_group:
        cell_batches = count_cells_batch(
            db, other_group, metrics=metrics, dispatcher=dispatcher
        )
        for itemset, cells in zip(other_group, cell_batches):
            marginals = tuple(
                float(index.counts[item]) for item in itemset.items
            )
            tables[itemset] = ContingencyTable._from_parts(
                itemset, cells, marginals, n
            )
    if len(tables) != len(itemsets):  # preserve input order on mixed batches
        return {itemset: tables[itemset] for itemset in itemsets}
    return tables
