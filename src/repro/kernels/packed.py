"""The packed-bitmap vertical index and vectorized popcount.

:class:`PackedBitmapIndex` is the NumPy counterpart of the database's
Python big-int bitmaps: the whole vertical database as one
``(n_items, ceil(n/64))`` ``uint64`` array, item-major, bit ``i`` of a
row saying whether basket ``i`` contains the item.  Word ``w`` of a row
covers baskets ``[64w, 64w + 64)`` with little-endian bit order inside
the word, exactly the layout ``int.to_bytes(..., "little")`` produces —
so a row round-trips to the big-int bitmap bit for bit.

All kernels in this package reduce to two array operations on this
index: a bitwise AND of row blocks and a population count.  Popcount
uses ``np.bitwise_count`` where NumPy provides it (>= 1.26) and a
16-bit lookup table otherwise; both return exact integers, so every
kernel built on them is exact by construction.

This module imports cleanly without NumPy (``HAS_NUMPY`` is False and
the index constructor raises); callers gate on :data:`HAS_NUMPY` and
fall back to the pure-Python kernels in :mod:`repro.core.contingency`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.basket import BasketDatabase

try:
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised in minimal installs
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

__all__ = ["HAS_NUMPY", "PackedBitmapIndex", "popcount"]


if HAS_NUMPY and hasattr(np, "bitwise_count"):

    def popcount(array):
        """Per-element population count of a ``uint64`` array (exact)."""
        return np.bitwise_count(array)

elif HAS_NUMPY:  # pragma: no cover - NumPy < 1.26 fallback
    # 16-bit lookup table, built by doubling: popcount(2i) = popcount(i),
    # popcount(2i + 1) = popcount(i) + 1.
    _LUT16 = np.zeros(1, dtype=np.uint8)
    while _LUT16.size < (1 << 16):
        _LUT16 = np.concatenate([_LUT16, _LUT16 + 1])

    def popcount(array):
        """Per-element population count via four 16-bit table lookups."""
        halfwords = _LUT16[array.reshape(-1).view(np.uint16)]
        return halfwords.reshape(array.shape + (4,)).sum(axis=-1, dtype=np.uint8)

else:  # pragma: no cover - exercised in minimal installs

    def popcount(array):
        raise RuntimeError("popcount requires numpy; install the [fast] extra")


class PackedBitmapIndex:
    """The vertical database as a dense ``(n_items, n_words)`` uint64 array.

    The index is *appendable*: :meth:`append` adds baskets (and new item
    rows) in place, growing the backing storage by amortised doubling in
    both dimensions so a stream of appends costs linear total work.
    ``packed`` and ``counts`` are always views sliced to the exact live
    shape, so every kernel keeps seeing a ``(n_items, ceil(n/64))``
    matrix whose padding bits past ``n_baskets`` are zero — the
    invariant the popcount kernels rely on.  ``generation`` counts the
    appends applied; consumers holding derived state (caches, top-K
    engines) key their invalidation on it.

    Attributes:
        packed: the bitmap matrix; row ``i`` is item ``i``'s bitmap.
        counts: per-item basket counts, ``int64``, equal to
            ``BasketDatabase.item_counts()``.
        n_baskets: number of baskets (bits in use per row).
        n_words: ``ceil(n_baskets / 64)``, at least 1 so shapes stay
            valid on an empty database.
        generation: number of :meth:`append` calls applied so far.
    """

    __slots__ = (
        "packed",
        "counts",
        "n_baskets",
        "n_words",
        "generation",
        "_storage",
        "_counts_storage",
    )

    def __init__(self, packed, counts, n_baskets: int) -> None:
        self.packed = packed
        self.counts = counts
        self.n_baskets = n_baskets
        self.n_words = packed.shape[1]
        self.generation = 0
        # Capacity arrays backing the exact-shape views above.  At
        # construction capacity equals the live shape; append() grows
        # them geometrically (and reallocates read-only frombuffer
        # storage on the first growth).
        self._storage = packed
        self._counts_storage = counts

    @classmethod
    def from_database(cls, db: "BasketDatabase") -> "PackedBitmapIndex":
        """Pack a database's big-int bitmaps into the uint64 matrix.

        ``int.to_bytes(..., "little")`` runs in C and preserves the bit
        numbering, so the packed rows are bit-identical to the bitmaps
        the pure-Python kernels intersect.
        """
        if not HAS_NUMPY:
            raise RuntimeError(
                "PackedBitmapIndex requires numpy; install the [fast] extra"
            )
        n = db.n_baskets
        n_items = db.n_items
        n_words = max(1, (n + 63) // 64)
        row_bytes = n_words * 8
        buffer = b"".join(
            db.item_bitmap(item).to_bytes(row_bytes, "little")
            for item in range(n_items)
        )
        packed = np.frombuffer(buffer, dtype="<u8").astype(np.uint64, copy=False)
        packed = packed.reshape(n_items, n_words)
        counts = np.asarray(db.item_counts(), dtype=np.int64).reshape(n_items)
        return cls(packed, counts, n)

    # -- in-place growth ------------------------------------------------------

    def _grow(self, need_items: int, need_words: int) -> None:
        """Ensure writable backing storage of at least the given shape.

        Growth doubles the exhausted dimension (amortised O(1) per
        appended basket/item); the fresh region is zero, which is
        exactly the padding invariant the kernels need.  Storage built
        by :meth:`from_database` sits on a read-only ``frombuffer``
        view, so the first append always reallocates.
        """
        cap_items, cap_words = self._storage.shape
        if (
            self._storage.flags.writeable
            and need_items <= cap_items
            and need_words <= cap_words
        ):
            return
        new_items = max(need_items, cap_items, 1)
        if need_items > cap_items:
            new_items = max(need_items, 2 * cap_items)
        new_words = max(need_words, cap_words, 1)
        if need_words > cap_words:
            new_words = max(need_words, 2 * cap_words)
        storage = np.zeros((new_items, new_words), dtype=np.uint64)
        live = self.packed
        storage[: live.shape[0], : live.shape[1]] = live
        self._storage = storage
        counts_storage = np.zeros(new_items, dtype=np.int64)
        counts_storage[: self.counts.shape[0]] = self.counts
        self._counts_storage = counts_storage

    def append(self, baskets, n_items: int | None = None) -> int:
        """Add encoded baskets in place; returns the new generation.

        ``baskets`` is a sequence of item-id tuples (the horizontal
        encoding a :class:`~repro.data.basket.BasketDatabase` stores);
        ``n_items`` is the item count *after* the append, covering any
        new items the baskets introduce (new rows start all-zero).  Bits
        are set at the appended basket positions only, so the updated
        rows are bit-identical to a from-scratch packing of the grown
        database — the append-equivalence tests assert exactly that.
        """
        old_items = self.packed.shape[0]
        if n_items is None:
            n_items = old_items
            for basket in baskets:
                for item in basket:
                    if item >= n_items:
                        n_items = item + 1
        if n_items < old_items:
            raise ValueError(
                f"n_items={n_items} cannot shrink the index below {old_items} rows"
            )
        new_n = self.n_baskets + len(baskets)
        need_words = max(1, (new_n + 63) // 64)
        self._grow(n_items, need_words)
        storage = self._storage
        counts = self._counts_storage
        base = self.n_baskets
        for offset, basket in enumerate(baskets):
            position = base + offset
            word = position >> 6
            mask = np.uint64(1 << (position & 63))
            for item in basket:
                storage[item, word] |= mask
                counts[item] += 1
        self.n_baskets = new_n
        self.n_words = need_words
        self.packed = storage[:n_items, :need_words]
        self.counts = counts[:n_items]
        self.generation += 1
        return self.generation

    def rows(self, items):
        """The bitmap rows of the given item ids, as a ``(k, n_words)`` view."""
        return self.packed[np.asarray(items, dtype=np.intp)]

    def row_bits(self, rows):
        """Unpack uint64 rows to per-basket 0/1 ``uint8`` columns.

        Returns a ``(k, n_baskets)`` array; the padding bits past
        ``n_baskets`` in the last word are sliced off.  Used by the
        basket-major scan kernel.
        """
        as_bytes = np.ascontiguousarray(rows).astype("<u8").view(np.uint8)
        bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
        return bits[:, : self.n_baskets]

    def __repr__(self) -> str:
        return (
            f"PackedBitmapIndex(items={self.packed.shape[0]}, "
            f"baskets={self.n_baskets}, words={self.n_words})"
        )
