"""Batched closed-form sweeps for level-2 and level-3 candidates.

The miner's wall-clock is dominated by the lowest lattice levels, where
candidate counts are largest.  Instead of one Python big-int AND +
``bit_count()`` per candidate, these kernels count *every* candidate of
a level in a handful of vectorized passes: gather the candidates' bitmap
rows, AND them row-broadcast, popcount, sum along the word axis — then
fill the remaining cells from the marginals by the closed forms the
pure-Python ``_cells_pair`` / ``_cells_triple`` kernels use, so counts
are bit-identical by construction.

Row blocks are processed in chunks of at most :data:`CHUNK_WORDS` words
so peak scratch memory stays bounded (~2 x 16 MiB at the default) no
matter how many candidates a level has.
"""

from __future__ import annotations

from repro.kernels.packed import PackedBitmapIndex, popcount

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised in minimal installs
    np = None  # type: ignore[assignment]

__all__ = [
    "CHUNK_WORDS",
    "count_pairs_batch",
    "count_triples_batch",
    "pair_cell_columns",
    "pair_supports",
    "triple_cell_columns",
]

# Upper bound on uint64 words materialised per intermediate array.
CHUNK_WORDS = 1 << 21

# Basket-chunk cap for the Gram-matrix path: float32 products of 0/1
# bits stay exact integers while a partial sum fits 2^24, i.e. for
# chunks of at most 2^24 baskets (= 2^18 words); per-chunk sums are
# then accumulated exactly in float64.
_GRAM_CHUNK_WORDS = 1 << 18


def _chunked_and_popcount(index: PackedBitmapIndex, id_arrays, out) -> None:
    """``out[i] = |AND of rows id_arrays[0][i], id_arrays[1][i], ...|``.

    The innermost loop of both sweeps: intersects the rows selected by
    each id array (all the same length) chunk by chunk and writes the
    per-candidate popcount sums into ``out``.
    """
    total = out.shape[0]
    width = max(1, index.n_words)
    step = max(1, CHUNK_WORDS // width)
    packed = index.packed
    for start in range(0, total, step):
        stop = min(start + step, total)
        block = packed[id_arrays[0][start:stop]]
        for ids in id_arrays[1:]:
            block = block & packed[ids[start:stop]]
        out[start:stop] = popcount(block).sum(axis=1, dtype=np.int64)


def _sparse(cells_and_counts) -> dict[int, int]:
    """Drop zero cells, matching the sparse dicts of the Python kernels."""
    return {cell: count for cell, count in cells_and_counts if count}


def _gram_supports(index: PackedBitmapIndex, ids) -> "np.ndarray":
    """All pair supports at once via a blocked Gram matrix.

    Unpack the distinct items' rows to a 0/1 matrix ``B`` and compute
    ``B @ B.T``: entry ``(i, j)`` is exactly ``|bitmap_i AND bitmap_j|``.
    The matmul runs in BLAS, which beats per-pair AND + popcount by an
    order of magnitude once the candidate pairs cover a dense fraction
    of the item-pair square.  Padding bits past ``n_baskets`` are zero
    in every row, so they add nothing to any product.

    Exactness: 0/1 products summed over at most ``2^24`` baskets per
    chunk are exact in float32; chunk sums are accumulated in float64
    (exact up to ``2^53``), then rounded-trip to int64.
    """
    distinct, inverse = np.unique(ids, return_inverse=True)
    inverse = inverse.reshape(ids.shape)
    rows = index.packed[distinct]
    d = distinct.size
    gram = np.zeros((d, d), dtype=np.float64)
    step = max(1, min(_GRAM_CHUNK_WORDS, CHUNK_WORDS // max(1, d)))
    for start in range(0, rows.shape[1], step):
        block = np.ascontiguousarray(rows[:, start : start + step])
        bits = np.unpackbits(block.astype("<u8").view(np.uint8), axis=1, bitorder="little")
        b = bits.astype(np.float32)
        gram += (b @ b.T).astype(np.float64)
    return gram[inverse[:, 0], inverse[:, 1]].astype(np.int64)


def pair_supports(index: PackedBitmapIndex, ids) -> "np.ndarray":
    """``|bitmap_a AND bitmap_b|`` for every row of the ``(n, 2)`` id array.

    Routes between the two level-2 strategies: candidate sets covering a
    dense fraction of the distinct-item pair square go through the
    Gram-matrix matmul, sparse ones through chunked row-gather AND +
    popcount (gathering only the rows actually probed).
    """
    n_pairs = ids.shape[0]
    d = np.unique(ids).size
    # The matmul wins once the candidate set is both dense in the pair
    # square AND large enough to amortise the unpack + GEMM setup;
    # small batches (census-sized item spaces) gather faster.
    if d >= 32 and 4 * n_pairs >= d * d:
        return _gram_supports(index, ids)
    both = np.empty(n_pairs, dtype=np.int64)
    _chunked_and_popcount(index, (ids[:, 0], ids[:, 1]), both)
    return both


def pair_cell_columns(index: PackedBitmapIndex, pairs):
    """All four contingency cells of every pair, as int64 columns.

    ``pairs`` is a sequence of ``(a, b)`` id tuples.  The batched sweep
    gives the both-present cell for every pair; the other three cells
    follow from the item marginals in closed form:

    ``O(a ~b) = O(a) - O(ab)``, ``O(~a b) = O(b) - O(ab)``,
    ``O(~a ~b) = n - O(a) - O(b) + O(ab)``.

    Returns ``(both, only_a, only_b, neither, count_a, count_b)``.
    """
    ids = np.asarray(pairs, dtype=np.intp).reshape(len(pairs), 2)
    both = pair_supports(index, ids)
    count_a = index.counts[ids[:, 0]]
    count_b = index.counts[ids[:, 1]]
    n = index.n_baskets
    only_a = count_a - both
    only_b = count_b - both
    neither = n - count_a - count_b + both
    return both, only_a, only_b, neither, count_a, count_b


def count_pairs_batch(
    index: PackedBitmapIndex, pairs
) -> list[dict[int, int]]:
    """Sparse 4-cell counts for a batch of item pairs, one vectorized pass."""
    if len(pairs) == 0:
        return []
    both, only_a, only_b, neither, _, _ = pair_cell_columns(index, pairs)
    return [
        _sparse(((0b11, c11), (0b01, c01), (0b10, c10), (0b00, c00)))
        for c11, c01, c10, c00 in zip(
            both.tolist(), only_a.tolist(), only_b.tolist(), neither.tolist()
        )
    ]


def triple_cell_columns(index: PackedBitmapIndex, triples):
    """All eight contingency cells of every triple, as int64 columns.

    One batched pair sweep (ab, ac, bc stacked), one 3-way AND +
    popcount pass (abc), and the same inclusion-exclusion fill as the
    pure-Python ``_cells_triple``.
    Returns ``(cells, marginal_columns)`` where ``cells`` maps cell
    index to its column and ``marginal_columns`` is ``(n_a, n_b, n_c)``.
    """
    n_triples = len(triples)
    ids = np.asarray(triples, dtype=np.intp).reshape(n_triples, 3)
    a, b, c = ids[:, 0], ids[:, 1], ids[:, 2]
    # The three pair supports go through pair_supports so dense triple
    # batches (whose ab/ac/bc pairs tile the item square) get the
    # Gram-matrix path; only the 3-way AND needs a dedicated pass.
    stacked = np.concatenate([ids[:, 0:2], ids[:, 0:3:2], ids[:, 1:3]], axis=0)
    pair = pair_supports(index, stacked)
    n_ab = pair[:n_triples]
    n_ac = pair[n_triples : 2 * n_triples]
    n_bc = pair[2 * n_triples :]
    n_abc = np.empty(n_triples, dtype=np.int64)
    _chunked_and_popcount(index, (a, b, c), n_abc)

    n_a = index.counts[a]
    n_b = index.counts[b]
    n_c = index.counts[c]
    n = index.n_baskets
    cells = {
        0b111: n_abc,
        0b011: n_ab - n_abc,
        0b101: n_ac - n_abc,
        0b110: n_bc - n_abc,
        0b001: n_a - n_ab - n_ac + n_abc,
        0b010: n_b - n_ab - n_bc + n_abc,
        0b100: n_c - n_ac - n_bc + n_abc,
        0b000: n - n_a - n_b - n_c + n_ab + n_ac + n_bc - n_abc,
    }
    return cells, (n_a, n_b, n_c)


def count_triples_batch(
    index: PackedBitmapIndex, triples
) -> list[dict[int, int]]:
    """Sparse 8-cell counts for a batch of item triples."""
    if len(triples) == 0:
        return []
    cells, _ = triple_cell_columns(index, triples)
    columns = {cell: values.tolist() for cell, values in cells.items()}
    return [
        _sparse((cell, columns[cell][i]) for cell in cells)
        for i in range(len(triples))
    ]
