"""Flight recorder: a bounded ring of recent request traces and events.

Long-lived services fail at 3am, and the spans of the offending request
are long gone by the time anyone attaches a debugger.  The
:class:`FlightRecorder` keeps the last ``capacity`` completed requests —
request id, endpoint, HTTP status, the structured events emitted while
serving it, and the finished span tree — in memory, cheap enough to run
always-on.  ``GET /debug/flight`` dumps it on demand, and the HTTP layer
writes it to a file automatically when a handler crashes with an
unhandled 5xx, so the post-mortem ships with the incident.

Entries are JSON-compatible dicts from the moment they are recorded;
dumping never touches live span objects, so a dump taken mid-traffic is
internally consistent.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path

__all__ = ["FlightRecorder", "NullFlightRecorder", "NULL_FLIGHT"]


class FlightRecorder:
    """Thread-safe bounded recorder of per-request observability data."""

    enabled = True

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque[dict[str, object]] = deque(maxlen=capacity)
        self._recorded = 0

    def record(
        self,
        request_id: str,
        method: str,
        path: str,
        status: int,
        events: list[dict[str, object]] | None = None,
        trace: dict[str, object] | None = None,
    ) -> dict[str, object]:
        """Add one completed request; returns the stored entry."""
        entry: dict[str, object] = {
            "request_id": request_id,
            "method": method,
            "path": path,
            "status": status,
            "events": list(events) if events else [],
            "trace": trace,
        }
        with self._lock:
            self._ring.append(entry)
            self._recorded += 1
        return entry

    def entries(self) -> list[dict[str, object]]:
        """Retained entries, oldest first."""
        with self._lock:
            return list(self._ring)

    def for_request(self, request_id: str) -> list[dict[str, object]]:
        return [
            entry for entry in self.entries() if entry["request_id"] == request_id
        ]

    def to_dict(self) -> dict[str, object]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "recorded": self._recorded,
                "retained": len(self._ring),
                "entries": list(self._ring),
            }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def write(self, path: str | Path) -> Path:
        """Dump the recorder to ``path`` as JSON; returns the path."""
        destination = Path(path)
        destination.write_text(self.to_json(indent=2) + "\n")
        return destination


class NullFlightRecorder:
    """Disabled recorder: records nothing, dumps empty."""

    enabled = False
    capacity = 0

    def record(self, request_id, method, path, status, events=None, trace=None):
        return {}

    def entries(self) -> list[dict[str, object]]:
        return []

    def for_request(self, request_id: str) -> list[dict[str, object]]:
        return []

    def to_dict(self) -> dict[str, object]:
        return {"capacity": 0, "recorded": 0, "retained": 0, "entries": []}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def write(self, path):
        raise RuntimeError("cannot write a disabled flight recorder")


NULL_FLIGHT = NullFlightRecorder()
