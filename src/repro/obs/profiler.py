"""Sampling wall-clock profiler over ``sys._current_frames``.

A stdlib-only statistical profiler: a daemon thread wakes every
``interval`` seconds, snapshots every live thread's Python frame stack,
and accumulates collapsed stacks (``outer;inner;innermost``) in a
counter.  Unlike ``cProfile`` it adds no per-call tracing overhead to
the profiled code — the cost is one stack walk per sample — so it is
safe to run against the live service (``GET /debug/profile?seconds=N``)
or a full mine (``python -m repro mine --profile``).

When a :class:`~repro.obs.tracer.Tracer` is attached, each sample is
prefixed with the span path currently open on the sampled thread
(``mine.level>mine.level.count``), attributing wall time to the miner's
own phases rather than to anonymous Python frames.

The report is the collapsed-stack format (``stack count`` per line)
that flamegraph tooling consumes directly.
"""

from __future__ import annotations

import sys
import threading
from collections import Counter as _StackCounter
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from types import FrameType

    from repro.obs.tracer import Tracer

__all__ = ["SamplingProfiler"]


def _collapse(frame: "FrameType", limit: int = 64) -> str:
    """A frame chain as ``file:function`` segments, outermost first."""
    segments: list[str] = []
    current: "FrameType | None" = frame
    while current is not None and len(segments) < limit:
        code = current.f_code
        segments.append(f"{Path(code.co_filename).name}:{code.co_name}")
        current = current.f_back
    segments.reverse()
    return ";".join(segments)


class SamplingProfiler:
    """Periodic whole-process stack sampler (daemon thread).

    Use as a context manager or via :meth:`start` / :meth:`stop`; samples
    accumulate across starts until :meth:`reset`.  The sampling loop
    paces itself with ``threading.Event.wait`` — no direct clock calls,
    so the profiler itself stays inside the repo's clock discipline.
    """

    def __init__(self, interval: float = 0.01, tracer: "Tracer | None" = None) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.samples: _StackCounter[str] = _StackCounter()
        self.total_samples = 0
        self._tracer = tracer
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler is already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def reset(self) -> None:
        with self._lock:
            self.samples.clear()
            self.total_samples = 0

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- sampling -------------------------------------------------------------

    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval):
            self._sample(own_id)

    def _sample(self, own_id: int) -> None:
        span_paths = self._tracer.active_paths() if self._tracer is not None else {}
        frames = sys._current_frames()
        with self._lock:
            for thread_id, frame in frames.items():
                if thread_id == own_id:
                    continue
                stack = _collapse(frame)
                prefix = ">".join(span_paths.get(thread_id, ()))
                if prefix:
                    stack = f"[{prefix}];{stack}"
                self.samples[stack] += 1
                self.total_samples += 1

    # -- reporting ------------------------------------------------------------

    def report(self, limit: int | None = None) -> str:
        """Collapsed stacks, hottest first, one ``stack count`` per line."""
        with self._lock:
            ranked = sorted(self.samples.items(), key=lambda item: (-item[1], item[0]))
            total = self.total_samples
        if limit is not None:
            ranked = ranked[:limit]
        lines = [
            f"# sampling profile: {total} samples at {self.interval * 1e3:g}ms",
        ]
        lines.extend(f"{stack} {count}" for stack, count in ranked)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        with self._lock:
            return {
                "interval": self.interval,
                "total_samples": self.total_samples,
                "samples": dict(
                    sorted(self.samples.items(), key=lambda item: (-item[1], item[0]))
                ),
            }
