"""Hierarchical tracing: nestable timed spans with pluggable exporters.

A :class:`Tracer` hands out :class:`Span` context managers::

    with tracer.span("mine.level", level=3) as level_span:
        with tracer.span("mine.level.count", backend="bitmap"):
            ...
    level_span.duration  # seconds, final once the block exits

Spans nest by runtime containment: a span entered while another is open
becomes its child, so the finished trace is a forest mirroring the call
structure.  Timestamps come from the tracer's injectable clock
(:mod:`repro.obs.clock`), which makes traces deterministic under a
:class:`~repro.obs.clock.FakeClock`.

Three exporters cover the consumption paths:

* :meth:`Tracer.render_text` — an indented tree for terminals;
* :meth:`Tracer.to_json` — a stable, sorted JSON document for tooling
  and the determinism tests;
* :meth:`Tracer.to_chrome_trace` — the Trace Event format that
  ``chrome://tracing`` / Perfetto load directly.

:class:`NullTracer` is the disabled implementation: ``span()`` returns
one shared, pre-built no-op span, so an un-instrumented run pays one
attribute lookup and one method call per span site and allocates
nothing.
"""

from __future__ import annotations

import json
import threading
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.clock import Clock

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed, attributed region of execution (its own context manager)."""

    __slots__ = ("name", "attributes", "start", "end", "children", "_tracer")

    def __init__(self, name: str, attributes: dict[str, object], tracer: "Tracer") -> None:
        self.name = name
        self.attributes = attributes
        self.start: float | None = None
        self.end: float | None = None
        self.children: list[Span] = []
        self._tracer = tracer

    @property
    def duration(self) -> float:
        """Elapsed seconds; ``0.0`` until the span has finished."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def annotate(self, **attributes: object) -> None:
        """Attach attributes discovered mid-span (e.g. batch sizes)."""
        self.attributes.update(attributes)

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._exit(self)

    def to_dict(self) -> dict[str, object]:
        """Nested JSON-compatible representation (children inline)."""
        return {
            "name": self.name,
            "attributes": {key: self.attributes[key] for key in sorted(self.attributes)},
            "start": self.start,
            "duration": self.duration,
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, duration={self.duration:.6f}, children={len(self.children)})"


class Tracer:
    """Collects a forest of spans using one (injectable) clock.

    Thread-safe by way of per-thread span stacks: spans nest within the
    thread that opened them (the service's ``ThreadingHTTPServer`` runs
    one handler thread per request, each building its own root), and
    roots are appended under a lock.  The sampling profiler reads the
    open-span paths from its own daemon thread via :meth:`span_path` /
    :meth:`active_paths`.  Worker *processes* still get their own
    telemetry or none — see ``docs/observability.md``.
    """

    enabled = True

    def __init__(self, clock: "Clock | None" = None) -> None:
        if clock is None:
            from repro.obs.clock import default_clock

            clock = default_clock()
        self._clock = clock
        self.roots: list[Span] = []
        self._stacks: dict[int, list[Span]] = {}
        self._lock = threading.Lock()

    # -- recording ------------------------------------------------------------

    def span(self, name: str, **attributes: object) -> Span:
        """A new span; enter it with ``with`` to start the timer."""
        return Span(name, attributes, self)

    def _enter(self, span: Span) -> None:
        stack = self._stacks.setdefault(threading.get_ident(), [])
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)
        span.start = self._clock()

    def _exit(self, span: Span) -> None:
        span.end = self._clock()
        # Tolerate exits out of order (a span leaked across a generator):
        # unwind to the matching frame rather than corrupting the stack.
        thread_id = threading.get_ident()
        stack = self._stacks.get(thread_id)
        while stack:
            top = stack.pop()
            if top is span:
                break
        if not stack:
            # Handler threads are short-lived; drop the empty stack so a
            # long-running service does not accumulate one per request.
            self._stacks.pop(thread_id, None)

    def clear(self) -> None:
        """Drop every recorded span (open spans included)."""
        with self._lock:
            self.roots.clear()
            self._stacks.clear()

    # -- live introspection (profiler support) --------------------------------

    def span_path(self, thread_id: int | None = None) -> tuple[str, ...]:
        """Names of the spans currently open on a thread, outermost first."""
        if thread_id is None:
            thread_id = threading.get_ident()
        stack = self._stacks.get(thread_id)
        if not stack:
            return ()
        # Snapshot first: the owning thread may be pushing/popping.
        return tuple(span.name for span in list(stack))

    def active_paths(self) -> dict[int, tuple[str, ...]]:
        """Open-span paths for every thread with at least one open span."""
        paths: dict[int, tuple[str, ...]] = {}
        for thread_id in list(self._stacks):
            path = self.span_path(thread_id)
            if path:
                paths[thread_id] = path
        return paths

    # -- exporters ------------------------------------------------------------

    def _finished_roots(self) -> list[Span]:
        return [span for span in self.roots if span.finished]

    def render_text(self) -> str:
        """The span forest as an indented tree with durations."""
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            attrs = " ".join(
                f"{key}={span.attributes[key]}" for key in sorted(span.attributes)
            )
            suffix = f" ({attrs})" if attrs else ""
            lines.append(
                f"{'  ' * depth}{span.name}{suffix} {span.duration * 1e3:.3f}ms"
            )
            for child in span.children:
                walk(child, depth + 1)

        for root in self._finished_roots():
            walk(root, 0)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        return {"spans": [span.to_dict() for span in self._finished_roots()]}

    def to_json(self, indent: int | None = None) -> str:
        """Stable JSON: keys sorted, so identical runs serialize identically."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def to_chrome_trace(self) -> dict[str, object]:
        """The Chrome Trace Event document (complete 'X' events, µs units)."""
        events: list[dict[str, object]] = []

        def walk(span: Span) -> None:
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": round((span.start or 0.0) * 1e6, 3),
                    "dur": round(span.duration * 1e6, 3),
                    "pid": 0,
                    "tid": 0,
                    "args": {key: span.attributes[key] for key in sorted(span.attributes)},
                }
            )
            for child in span.children:
                walk(child)

        for root in self._finished_roots():
            walk(root)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_chrome_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_chrome_trace(), sort_keys=True, indent=indent)


class _NullSpan:
    """The shared do-nothing span the disabled tracer hands out."""

    __slots__ = ()

    name = ""
    attributes: dict[str, object] = {}
    start = None
    end = None
    children: list[Span] = []
    duration = 0.0
    finished = False

    def annotate(self, **attributes: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every ``span()`` is the same pre-built no-op."""

    enabled = False
    roots: list[Span] = []

    def span(self, name: str, **attributes: object) -> _NullSpan:
        return _NULL_SPAN

    def clear(self) -> None:
        pass

    def render_text(self) -> str:
        return ""

    def to_dict(self) -> dict[str, object]:
        return {"spans": []}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def to_chrome_trace(self) -> dict[str, object]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def to_chrome_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_chrome_trace(), sort_keys=True, indent=indent)


NULL_TRACER = NullTracer()
