"""Metrics: labeled counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` owns every series of a run.  A *series* is a
metric name plus a sorted label set — the Prometheus data model, scoped
to one process::

    registry.counter("candidates_pruned", reason="support").inc()
    registry.counter("cache_events", kind="hit").inc()
    registry.histogram("count_batch_seconds", mode="serial").observe(0.012)

Accessors are get-or-create and O(1); hot paths hoist the returned
instrument out of their loops and call ``inc``/``observe`` directly.
Label values are stringified at creation so a series key is stable and
serializable.

:meth:`MetricsRegistry.snapshot` renders everything as one sorted,
JSON-compatible dict keyed ``name{label="value",...}`` — byte-identical
across identical runs, which the determinism suite relies on.

:class:`NullMetrics` is the disabled twin: every accessor returns one
shared no-op instrument, so un-instrumented code pays a method call and
nothing else.
"""

from __future__ import annotations

import json
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "DEFAULT_SECONDS_BUCKETS",
]

# Log-ish spaced upper bounds for timing histograms, in seconds: wide
# enough for a 10-minute batch, fine enough for a 100µs kernel call.
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0, 600.0,
)


def _series_key(name: str, labels: dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A value that can move in either direction."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


class Histogram:
    """Fixed-bucket histogram with cumulative-friendly serialization.

    ``bounds`` are inclusive upper edges; observations beyond the last
    edge land in the implicit ``+Inf`` bucket.  Per-bucket counts are
    stored non-cumulatively and summed on demand.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS) -> None:
        ordered = tuple(float(bound) for bound in bounds)
        if not ordered or any(
            upper <= lower for lower, upper in zip(ordered, ordered[1:])
        ):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def to_dict(self) -> dict[str, object]:
        buckets = {f"le={bound:g}": count for bound, count in zip(self.bounds, self.counts)}
        buckets["le=+Inf"] = self.counts[-1]
        return {"buckets": buckets, "sum": self.sum, "count": self.count}

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, sum={self.sum:.6f})"


class MetricsRegistry:
    """All counters, gauges and histograms of one run, by labeled series."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instruments ----------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = _series_key(name, {k: str(v) for k, v in labels.items()})
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _series_key(name, {k: str(v) for k, v in labels.items()})
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
        **labels: object,
    ) -> Histogram:
        key = _series_key(name, {k: str(v) for k, v in labels.items()})
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(buckets)
        return instrument

    # -- reading --------------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> int | float:
        """The current value of a counter series; ``0`` if never touched."""
        key = _series_key(name, {k: str(v) for k, v in labels.items()})
        instrument = self._counters.get(key)
        return instrument.value if instrument is not None else 0

    def series(self, prefix: str = "") -> dict[str, object]:
        """Flat ``series key -> value`` view (histograms as dicts)."""
        merged: dict[str, object] = {}
        for key in sorted(self._counters):
            if key.startswith(prefix):
                merged[key] = self._counters[key].value
        for key in sorted(self._gauges):
            if key.startswith(prefix):
                merged[key] = self._gauges[key].value
        for key in sorted(self._histograms):
            if key.startswith(prefix):
                merged[key] = self._histograms[key].to_dict()
        return merged

    def snapshot(self) -> dict[str, object]:
        """Everything, grouped by kind, every level sorted."""
        return {
            "counters": {key: self._counters[key].value for key in sorted(self._counters)},
            "gauges": {key: self._gauges[key].value for key in sorted(self._gauges)},
            "histograms": {
                key: self._histograms[key].to_dict() for key in sorted(self._histograms)
            },
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)

    def render_text(self) -> str:
        """A plain ``series value`` listing for terminals."""
        lines: list[str] = []
        for key in sorted(self._counters):
            lines.append(f"{key} {self._counters[key].value}")
        for key in sorted(self._gauges):
            lines.append(f"{key} {self._gauges[key].value:g}")
        for key in sorted(self._histograms):
            histogram = self._histograms[key]
            lines.append(
                f"{key} count={histogram.count} sum={histogram.sum:.6f}s"
            )
        return "\n".join(lines)


class _NullInstrument:
    """One object standing in for every disabled counter/gauge/histogram."""

    __slots__ = ()

    value = 0
    sum = 0.0
    count = 0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def to_dict(self) -> dict[str, object]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Disabled registry: every accessor returns the shared no-op."""

    enabled = False

    def counter(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
        **labels: object,
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def counter_value(self, name: str, **labels: object) -> int:
        return 0

    def series(self, prefix: str = "") -> dict[str, object]:
        return {}

    def snapshot(self) -> dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)

    def render_text(self) -> str:
        return ""


NULL_METRICS = NullMetrics()
