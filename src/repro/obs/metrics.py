"""Metrics: labeled counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` owns every series of a run.  A *series* is a
metric name plus a sorted label set — the Prometheus data model, scoped
to one process::

    registry.counter("candidates_pruned", reason="support").inc()
    registry.counter("cache_events", kind="hit").inc()
    registry.histogram("count_batch_seconds", mode="serial").observe(0.012)

Accessors are get-or-create and O(1); hot paths hoist the returned
instrument out of their loops and call ``inc``/``observe`` directly.
Label values are stringified at creation so a series key is stable and
serializable.

Instruments are thread-safe: the service's ``ThreadingHTTPServer``
increments request counters from many handler threads at once, and the
sampling profiler reads from its own daemon thread.  Every instrument a
registry hands out shares that registry's single lock, so
:meth:`MetricsRegistry.snapshot` (taken under the same lock) can never
observe a half-applied update — no torn reads, no lost increments.

:meth:`MetricsRegistry.snapshot` renders everything as one sorted,
JSON-compatible dict keyed ``name{label="value",...}`` — byte-identical
across identical runs, which the determinism suite relies on.
:meth:`MetricsRegistry.merge` folds another registry's snapshot into
this one — the bridge that carries pool-worker counters back across the
process boundary (see ``docs/observability.md``).

:class:`NullMetrics` is the disabled twin: every accessor returns one
shared no-op instrument, so un-instrumented code pays a method call and
nothing else.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "DEFAULT_SECONDS_BUCKETS",
]

# Log-ish spaced upper bounds for timing histograms, in seconds: wide
# enough for a 10-minute batch, fine enough for a 100µs kernel call.
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0, 600.0,
)


def _series_key(name: str, labels: dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: threading.Lock | None = None) -> None:
        self.value = 0
        self._lock = lock if lock is not None else threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A value that can move in either direction."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: threading.Lock | None = None) -> None:
        self.value = 0.0
        self._lock = lock if lock is not None else threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


class Histogram:
    """Fixed-bucket histogram with cumulative-friendly serialization.

    ``bounds`` are inclusive upper edges; observations beyond the last
    edge land in the implicit ``+Inf`` bucket.  Per-bucket counts are
    stored non-cumulatively and summed on demand.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "_lock")

    def __init__(
        self,
        bounds: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
        lock: threading.Lock | None = None,
    ) -> None:
        ordered = tuple(float(bound) for bound in bounds)
        if not ordered or any(
            upper <= lower for lower, upper in zip(ordered, ordered[1:])
        ):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = lock if lock is not None else threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def to_dict(self) -> dict[str, object]:
        # Lock-free on purpose: registry snapshots call this while already
        # holding the shared lock (a plain Lock would deadlock otherwise).
        buckets = {f"le={bound:g}": count for bound, count in zip(self.bounds, self.counts)}
        buckets["le=+Inf"] = self.counts[-1]
        return {"buckets": buckets, "sum": self.sum, "count": self.count}

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, sum={self.sum:.6f})"


class MetricsRegistry:
    """All counters, gauges and histograms of one run, by labeled series."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instruments ----------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = _series_key(name, {k: str(v) for k, v in labels.items()})
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter(lock=self._lock)
            return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _series_key(name, {k: str(v) for k, v in labels.items()})
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge(lock=self._lock)
            return instrument

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
        **labels: object,
    ) -> Histogram:
        key = _series_key(name, {k: str(v) for k, v in labels.items()})
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(buckets, lock=self._lock)
            return instrument

    # -- reading --------------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> int | float:
        """The current value of a counter series; ``0`` if never touched."""
        key = _series_key(name, {k: str(v) for k, v in labels.items()})
        with self._lock:
            instrument = self._counters.get(key)
            return instrument.value if instrument is not None else 0

    def series(self, prefix: str = "") -> dict[str, object]:
        """Flat ``series key -> value`` view (histograms as dicts)."""
        merged: dict[str, object] = {}
        with self._lock:
            for key in sorted(self._counters):
                if key.startswith(prefix):
                    merged[key] = self._counters[key].value
            for key in sorted(self._gauges):
                if key.startswith(prefix):
                    merged[key] = self._gauges[key].value
            for key in sorted(self._histograms):
                if key.startswith(prefix):
                    merged[key] = self._histograms[key].to_dict()
        return merged

    def snapshot(self) -> dict[str, object]:
        """Everything, grouped by kind, every level sorted.

        Taken under the registry lock, so concurrent increments from
        other threads are either fully in or fully out — never torn.
        """
        with self._lock:
            return {
                "counters": {
                    key: self._counters[key].value for key in sorted(self._counters)
                },
                "gauges": {key: self._gauges[key].value for key in sorted(self._gauges)},
                "histograms": {
                    key: self._histograms[key].to_dict()
                    for key in sorted(self._histograms)
                },
            }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)

    def render_text(self) -> str:
        """A plain ``series value`` listing for terminals."""
        lines: list[str] = []
        with self._lock:
            for key in sorted(self._counters):
                lines.append(f"{key} {self._counters[key].value}")
            for key in sorted(self._gauges):
                lines.append(f"{key} {self._gauges[key].value:g}")
            for key in sorted(self._histograms):
                histogram = self._histograms[key]
                lines.append(
                    f"{key} count={histogram.count} sum={histogram.sum:.6f}s"
                )
        return "\n".join(lines)

    # -- merging --------------------------------------------------------------

    def merge(self, snapshot: dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The cross-process bridge: pool workers record into a local
        registry and ship ``registry.snapshot()`` back with their shard
        counts; the parent merges each arriving snapshot here.  Counters
        add, gauges take the incoming value (last write wins), histograms
        add bucket counts / sum / count — a histogram series arriving
        with different bucket bounds than the resident one is a
        programming error and raises.
        """
        counters = snapshot.get("counters", {})
        gauges = snapshot.get("gauges", {})
        histograms = snapshot.get("histograms", {})
        with self._lock:
            for key, value in counters.items():
                instrument = self._counters.get(key)
                if instrument is None:
                    instrument = self._counters[key] = Counter(lock=self._lock)
                instrument.value += value
            for key, value in gauges.items():
                instrument = self._gauges.get(key)
                if instrument is None:
                    instrument = self._gauges[key] = Gauge(lock=self._lock)
                instrument.value = value
            for key, data in histograms.items():
                buckets = data.get("buckets", {})
                bounds = tuple(
                    sorted(float(bucket[3:]) for bucket in buckets if bucket != "le=+Inf")
                )
                resident = self._histograms.get(key)
                if resident is None:
                    resident = self._histograms[key] = Histogram(bounds, lock=self._lock)
                incoming_keys = [f"le={bound:g}" for bound in resident.bounds]
                incoming_keys.append("le=+Inf")
                if sorted(incoming_keys) != sorted(buckets):
                    raise ValueError(
                        f"histogram {key!r} arrived with mismatched buckets: "
                        f"{sorted(buckets)} != {sorted(incoming_keys)}"
                    )
                for index, bucket in enumerate(incoming_keys):
                    resident.counts[index] += buckets[bucket]
                resident.sum += data.get("sum", 0.0)
                resident.count += data.get("count", 0)


class _NullInstrument:
    """One object standing in for every disabled counter/gauge/histogram."""

    __slots__ = ()

    value = 0
    sum = 0.0
    count = 0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def to_dict(self) -> dict[str, object]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Disabled registry: every accessor returns the shared no-op."""

    enabled = False

    def counter(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
        **labels: object,
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def counter_value(self, name: str, **labels: object) -> int:
        return 0

    def series(self, prefix: str = "") -> dict[str, object]:
        return {}

    def snapshot(self) -> dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: dict[str, object]) -> None:
        pass

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)

    def render_text(self) -> str:
        return ""


NULL_METRICS = NullMetrics()
