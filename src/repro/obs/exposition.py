"""Prometheus text exposition (format 0.0.4) for the metrics registry.

:func:`render_exposition` turns a :meth:`MetricsRegistry.snapshot` into
the plain-text format every Prometheus-compatible scraper understands:
one ``# TYPE`` line per family, samples keyed ``name{label="value"}``
with labels sorted, histograms expanded into **cumulative**
``_bucket{le=...}`` series plus ``_sum`` and ``_count``.  The output is
a pure function of the snapshot — byte-stable under a ``FakeClock``,
which the determinism suite pins.

:func:`validate_exposition` is the in-repo round-trip check: it parses
an exposition document back and returns a list of violations (empty
means valid).  It is deliberately strict about the invariants a real
scraper relies on — every sample preceded by a matching ``# TYPE``,
histogram buckets cumulative and non-decreasing, the ``+Inf`` bucket
equal to ``_count`` — and both the test suite and the CI service smoke
pipe ``GET /metrics`` output through it.
"""

from __future__ import annotations

import re

__all__ = ["CONTENT_TYPE", "render_exposition", "validate_exposition"]

# The content type Prometheus scrapers send and expect for this format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SERIES_KEY_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?$", re.DOTALL)
# Registry series keys store label values *raw* (escaping happens only
# at render time), so a value may itself contain quotes or newlines.
# Each value therefore runs non-greedily to the quote that precedes
# either the next label or the end of the key.
_RAW_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="(.*?)"(?=,[a-zA-Z_][a-zA-Z0-9_]*="|$)', re.DOTALL
)
# Wire-format label pairs (validator side) are escaped, so quotes inside
# values only appear backslashed.
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(?:[^{}]*)\})?\s+(-?(?:[0-9.eE+-]+|Inf|NaN))$"
)
_TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$")


def _parse_series_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a registry series key back into (name, labels)."""
    match = _SERIES_KEY_RE.match(key)
    if match is None:
        raise ValueError(f"unparseable series key: {key!r}")
    name, raw_labels = match.group(1), match.group(2)
    labels: dict[str, str] = {}
    if raw_labels:
        labels = dict(_RAW_LABEL_PAIR_RE.findall(raw_labels))
    return name, labels


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: object) -> str:
    """Deterministic sample rendering: integral values as integers."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _render_labels(labels: dict[str, str], extra: tuple[str, str] | None = None) -> str:
    pairs = [(key, labels[key]) for key in sorted(labels)]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape_label_value(value)}"' for key, value in pairs)
    return f"{{{inner}}}"


def render_exposition(snapshot: dict[str, object]) -> str:
    """A :meth:`MetricsRegistry.snapshot` as Prometheus text format 0.0.4."""
    families: dict[str, list[str]] = {}
    family_types: dict[str, str] = {}

    def family(name: str, kind: str) -> list[str]:
        if name not in families:
            families[name] = []
            family_types[name] = kind
        elif family_types[name] != kind:
            raise ValueError(
                f"metric family {name!r} used as both "
                f"{family_types[name]} and {kind}"
            )
        return families[name]

    for key, value in snapshot.get("counters", {}).items():
        name, labels = _parse_series_key(key)
        family(name, "counter").append(
            f"{name}{_render_labels(labels)} {_format_value(value)}"
        )
    for key, value in snapshot.get("gauges", {}).items():
        name, labels = _parse_series_key(key)
        family(name, "gauge").append(
            f"{name}{_render_labels(labels)} {_format_value(value)}"
        )
    for key, data in snapshot.get("histograms", {}).items():
        name, labels = _parse_series_key(key)
        lines = family(name, "histogram")
        buckets = data["buckets"]
        bounds = sorted(
            (bucket[3:] for bucket in buckets if bucket != "le=+Inf"), key=float
        )
        cumulative = 0
        for bound in bounds:
            cumulative += buckets[f"le={bound}"]
            lines.append(
                f"{name}_bucket{_render_labels(labels, ('le', bound))} "
                f"{_format_value(cumulative)}"
            )
        cumulative += buckets["le=+Inf"]
        lines.append(
            f"{name}_bucket{_render_labels(labels, ('le', '+Inf'))} "
            f"{_format_value(cumulative)}"
        )
        lines.append(f"{name}_sum{_render_labels(labels)} {_format_value(data['sum'])}")
        lines.append(
            f"{name}_count{_render_labels(labels)} {_format_value(data['count'])}"
        )

    out: list[str] = []
    for name in sorted(families):
        out.append(f"# TYPE {name} {family_types[name]}")
        out.extend(families[name])
    return "\n".join(out) + "\n" if out else ""


# -- validation ---------------------------------------------------------------


def _strip_histogram_suffix(name: str) -> tuple[str, str | None]:
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)], suffix
    return name, None


def validate_exposition(text: str) -> list[str]:
    """Check an exposition document; returns problems (empty = valid)."""
    errors: list[str] = []
    declared: dict[str, str] = {}
    seen_series: set[str] = set()
    # histogram family -> label-fingerprint -> {"buckets": [(le, v)...], ...}
    histograms: dict[str, dict[str, dict[str, object]]] = {}

    if text and not text.endswith("\n"):
        errors.append("document does not end with a newline")

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# HELP "):
                continue
            match = _TYPE_RE.match(line)
            if match is None:
                errors.append(f"line {lineno}: malformed comment line: {line!r}")
                continue
            name = match.group(1)
            if name in declared:
                errors.append(f"line {lineno}: duplicate TYPE for {name!r}")
            declared[name] = match.group(2)
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {lineno}: malformed sample line: {line!r}")
            continue
        name, raw_labels, raw_value = match.group(1), match.group(2), match.group(3)
        labels: dict[str, str] = {}
        if raw_labels:
            labels = dict(_LABEL_PAIR_RE.findall(raw_labels))
        if f"{name}{raw_labels or ''}" in seen_series:
            errors.append(f"line {lineno}: duplicate series {name}{raw_labels or ''}")
        seen_series.add(f"{name}{raw_labels or ''}")
        try:
            value = float(raw_value)
        except ValueError:
            errors.append(f"line {lineno}: unparseable value {raw_value!r}")
            continue

        base, suffix = _strip_histogram_suffix(name)
        if suffix is not None and declared.get(base) == "histogram":
            family = histograms.setdefault(base, {})
            fingerprint = ",".join(
                f"{k}={labels[k]}" for k in sorted(labels) if k != "le"
            )
            entry = family.setdefault(fingerprint, {"buckets": []})
            if suffix == "_bucket":
                if "le" not in labels:
                    errors.append(f"line {lineno}: histogram bucket without le label")
                    continue
                entry["buckets"].append((labels["le"], value))
            else:
                entry[suffix] = value
            continue
        if name not in declared:
            errors.append(f"line {lineno}: sample {name!r} has no preceding TYPE")
            continue
        kind = declared[name]
        if kind == "histogram":
            errors.append(
                f"line {lineno}: histogram family {name!r} exposes a bare sample"
            )
        elif kind == "counter" and value < 0:
            errors.append(f"line {lineno}: counter {name!r} is negative")

    for base in sorted(histograms):
        entries = histograms[base]
        for fingerprint in sorted(entries):
            entry = entries[fingerprint]
            where = f"{base}{{{fingerprint}}}" if fingerprint else base
            buckets = entry["buckets"]
            if not buckets:
                errors.append(f"{where}: histogram with no buckets")
                continue
            if buckets[-1][0] != "+Inf":
                errors.append(f"{where}: last bucket is not le=+Inf")
                continue
            finite = [value for le, value in buckets[:-1]]
            if any(b > a for a, b in zip(finite[1:] + [buckets[-1][1]], finite)):
                errors.append(f"{where}: bucket counts are not cumulative")
            if "_count" not in entry:
                errors.append(f"{where}: histogram without a _count sample")
            elif buckets[-1][1] != entry["_count"]:
                errors.append(
                    f"{where}: +Inf bucket {buckets[-1][1]} != _count {entry['_count']}"
                )
            if "_sum" not in entry:
                errors.append(f"{where}: histogram without a _sum sample")
    return errors
