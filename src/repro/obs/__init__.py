"""Observability (`repro.obs`): tracing, metrics, and run reports.

The stdlib-only telemetry subsystem every layer records into:

* :mod:`repro.obs.clock` — injectable time sources (``perf_counter`` in
  production, :class:`FakeClock` for deterministic tests);
* :mod:`repro.obs.tracer` — hierarchical spans with text/JSON/Chrome
  trace-event exporters, plus a near-zero-overhead :class:`NullTracer`;
* :mod:`repro.obs.metrics` — labeled counters, gauges and fixed-bucket
  histograms with a sorted, byte-stable snapshot;
* :mod:`repro.obs.telemetry` — the per-run bundle
  (:class:`Telemetry`), its Table-5-style run report, and the exact
  reconciliation against the miner's ``LevelStats``.

Quickstart::

    from repro.obs import Telemetry

    telemetry = Telemetry.create()
    result = mine_correlations(db, telemetry=telemetry)
    print(telemetry.render_summary(result.level_stats))
    open("trace.json", "w").write(telemetry.tracer.to_chrome_json())

Everything here is import-safe without NumPy and adds nothing to the
hot paths when the default ``NULL_TELEMETRY`` is in play — see
``docs/observability.md`` for the naming conventions and the overhead
guarantees.
"""

from repro.obs.clock import Clock, FakeClock, default_clock
from repro.obs.events import (
    EventLog,
    NULL_EVENTS,
    NullEventLog,
    RequestIdSource,
    current_request_id,
    reset_request_id,
    set_request_id,
)
from repro.obs.exposition import (
    CONTENT_TYPE as EXPOSITION_CONTENT_TYPE,
    render_exposition,
    validate_exposition,
)
from repro.obs.flight import FlightRecorder, NULL_FLIGHT, NullFlightRecorder
from repro.obs.metrics import (
    Counter,
    DEFAULT_SECONDS_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
)
from repro.obs.profiler import SamplingProfiler
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Clock",
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "EXPOSITION_CONTENT_TYPE",
    "EventLog",
    "FakeClock",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_EVENTS",
    "NULL_FLIGHT",
    "NULL_METRICS",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullEventLog",
    "NullFlightRecorder",
    "NullMetrics",
    "NullTracer",
    "RequestIdSource",
    "SamplingProfiler",
    "Span",
    "Telemetry",
    "Tracer",
    "current_request_id",
    "default_clock",
    "render_exposition",
    "reset_request_id",
    "set_request_id",
    "validate_exposition",
]
