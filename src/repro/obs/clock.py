"""Clocks for the observability layer.

Every timing the tracer and metrics record flows through a *clock*: any
zero-argument callable returning seconds as a float.  Production code
uses :func:`time.perf_counter` (monotonic, high resolution, immune to
wall-clock adjustments); tests inject a :class:`FakeClock` so two
identical runs produce byte-identical trace and metrics exports — the
determinism guarantee `tests/obs/test_determinism.py` enforces.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable

__all__ = ["Clock", "FakeClock", "default_clock"]

# A clock is just "() -> seconds"; perf_counter satisfies it directly.
Clock = Callable[[], float]


def default_clock() -> Clock:
    """The production clock: :func:`time.perf_counter`."""
    return perf_counter


class FakeClock:
    """A deterministic clock that advances a fixed step per reading.

    Each call returns the current time and then advances it by ``tick``,
    so the Nth reading of any run is identical across runs — spans get
    reproducible, strictly increasing timestamps without ever touching
    the real clock.  :meth:`advance` models explicit elapsed time.

    >>> clock = FakeClock(start=10.0, tick=0.5)
    >>> clock(), clock()
    (10.0, 10.5)
    >>> clock.advance(4.0)
    >>> clock()
    15.0
    """

    __slots__ = ("now", "tick")

    def __init__(self, start: float = 0.0, tick: float = 0.001) -> None:
        if tick < 0:
            raise ValueError(f"tick must be >= 0, got {tick}")
        self.now = float(start)
        self.tick = float(tick)

    def __call__(self) -> float:
        reading = self.now
        self.now += self.tick
        return reading

    def advance(self, seconds: float) -> None:
        """Move time forward without producing a reading."""
        if seconds < 0:
            raise ValueError(f"cannot advance backwards ({seconds})")
        self.now += seconds

    def __repr__(self) -> str:
        return f"FakeClock(now={self.now}, tick={self.tick})"
