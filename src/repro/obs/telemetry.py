"""The per-run telemetry bundle and its run report.

:class:`Telemetry` packages one tracer and one metrics registry and
travels with a mining run: the miner, the parallel engine, the table
cache and the counting kernels all record into it, and the finished
:class:`~repro.algorithms.chi2support.MiningResult` carries it so
callers can export traces, snapshot metrics, or render the run report
after the fact.

The **run report** is the paper's Table 5 plus where the time went: a
per-level row of the pruning counters (``|CAND|``, discards, ``|SIG|``,
``|NOTSIG|``) joined with the per-level wall and counting seconds the
tracer measured, followed by cache, kernel-dispatch, kernel-autotune
and worker-pool rollups.  :meth:`Telemetry.reconcile` cross-checks the metric counters
against the miner's own ``LevelStats`` — the two are produced by
independent code paths, so exact agreement is a strong end-to-end
consistency check (and a hard test gate).

``NULL_TELEMETRY`` is the disabled default: both halves are the no-op
implementations, so an un-instrumented mine pays near-zero overhead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.obs.clock import Clock
from repro.obs.events import EventLog, NULL_EVENTS, NullEventLog
from repro.obs.metrics import MetricsRegistry, NULL_METRICS, NullMetrics
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.chi2support import LevelStats

__all__ = ["Telemetry", "NULL_TELEMETRY"]

# The reconciled (LevelStats attribute, metric name, labels-builder) triples.
_RECONCILED_FIELDS = (
    ("candidates", "candidates", {}),
    ("discarded", "candidates_pruned", {"reason": "support"}),
    ("significant", "candidates_pruned", {"reason": "chi2"}),
    ("significant", "itemsets", {"kind": "significant"}),
    ("not_significant", "itemsets", {"kind": "not_significant"}),
)


class Telemetry:
    """One run's tracer + metrics, with reporting and reconciliation.

    Build an enabled instance with :meth:`Telemetry.create` (optionally
    passing a deterministic clock) and hand it to
    :func:`repro.core.mining.mine_correlations`; the default everywhere
    is the shared :data:`NULL_TELEMETRY`, whose recording calls all
    no-op.
    """

    __slots__ = ("tracer", "metrics", "clock", "enabled", "events")

    def __init__(
        self,
        tracer: Tracer | NullTracer,
        metrics: MetricsRegistry | NullMetrics,
        clock: Clock | None = None,
        enabled: bool = True,
        events: EventLog | NullEventLog = NULL_EVENTS,
    ) -> None:
        if clock is None:
            from repro.obs.clock import default_clock

            clock = default_clock()
        self.tracer = tracer
        self.metrics = metrics
        self.clock = clock
        self.enabled = enabled
        self.events = events

    @classmethod
    def create(cls, clock: Clock | None = None) -> "Telemetry":
        """An enabled telemetry bundle (the one-liner callers want)."""
        from repro.obs.clock import default_clock

        clock = clock if clock is not None else default_clock()
        return cls(
            Tracer(clock),
            MetricsRegistry(),
            clock=clock,
            enabled=True,
            events=EventLog(clock=clock),
        )

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The shared no-op bundle (also importable as ``NULL_TELEMETRY``)."""
        return NULL_TELEMETRY

    # -- reconciliation -------------------------------------------------------

    def reconcile(self, level_stats: Sequence["LevelStats"]) -> list[str]:
        """Cross-check metric counters against ``LevelStats``, exactly.

        Returns human-readable mismatch descriptions; an empty list means
        the two independently-maintained sets of counters agree on every
        level.  Disabled telemetry recorded nothing and reconciles
        vacuously.
        """
        if not self.enabled:
            return []
        mismatches: list[str] = []
        for stats in level_stats:
            for attribute, metric, labels in _RECONCILED_FIELDS:
                expected = getattr(stats, attribute)
                observed = self.metrics.counter_value(metric, level=stats.level, **labels)
                if observed != expected:
                    series = ", ".join(
                        [f"level={stats.level}"] + [f"{k}={v}" for k, v in labels.items()]
                    )
                    mismatches.append(
                        f"{metric}{{{series}}} = {observed} but "
                        f"LevelStats.{attribute} = {expected}"
                    )
        return mismatches

    def reconcile_workers(self) -> list[str]:
        """Cross-check merged worker counters against parent bookkeeping.

        When the parallel engine merges a worker's metrics snapshot it
        also counts, parent-side, how many tasks it merged
        (``pool_events{kind="task_merged"}``) and how many candidate
        itemsets those tasks covered (``worker_itemsets_expected``).
        The workers themselves counted the same things independently
        (``worker_tasks``, ``worker_itemsets``) before shipping their
        snapshots, so after the merge the two sides must agree exactly.
        Vacuous when no parallel counting ran (all four counters zero).
        """
        if not self.enabled:
            return []
        mismatches: list[str] = []
        pairs = (
            ("worker_tasks", "pool_events", {"kind": "task_merged"}),
            ("worker_itemsets", "worker_itemsets_expected", {}),
        )
        for worker_metric, parent_metric, parent_labels in pairs:
            observed = sum(
                value
                for key, value in self.metrics.series(worker_metric).items()
                if key == worker_metric or key.startswith(worker_metric + "{")
            )
            expected = self.metrics.counter_value(parent_metric, **parent_labels)
            if observed != expected:
                mismatches.append(
                    f"{worker_metric} = {observed} merged from workers but "
                    f"parent counted {parent_metric} = {expected}"
                )
        return mismatches

    # -- run report -----------------------------------------------------------

    def run_report(self, level_stats: Sequence["LevelStats"]) -> dict[str, object]:
        """The JSON-compatible run report (see the module docstring)."""
        mismatches = self.reconcile(level_stats) + self.reconcile_workers()
        levels = [
            {
                "level": stats.level,
                "lattice_itemsets": stats.lattice_itemsets,
                "candidates": stats.candidates,
                "discarded": stats.discarded,
                "significant": stats.significant,
                "not_significant": stats.not_significant,
                "wall_seconds": stats.wall_seconds,
                "counting_seconds": stats.counting_seconds,
            }
            for stats in level_stats
        ]
        return {
            "enabled": self.enabled,
            "levels": levels,
            "totals": {
                "candidates": sum(stats.candidates for stats in level_stats),
                "discarded": sum(stats.discarded for stats in level_stats),
                "significant": sum(stats.significant for stats in level_stats),
                "not_significant": sum(stats.not_significant for stats in level_stats),
                "wall_seconds": sum(stats.wall_seconds for stats in level_stats),
                "counting_seconds": sum(stats.counting_seconds for stats in level_stats),
            },
            "reconciliation": {
                "agreed": not mismatches,
                "mismatches": mismatches,
            },
            "cache": self.metrics.series("cache_events"),
            "kernel_dispatch": self.metrics.series("kernel_dispatch"),
            "autotune": self.metrics.series("kernel_autotune"),
            "pool": self.metrics.series("pool_events"),
            "workers": self.metrics.series("worker_"),
        }

    def render_summary(self, level_stats: Sequence["LevelStats"]) -> str:
        """The human run report: Table 5 with timings, then the rollups."""
        header = (
            f"{'level':>5} {'|CAND|':>9} {'discards':>9} {'|SIG|':>7} "
            f"{'|NOTSIG|':>9} {'wall_ms':>10} {'count_ms':>10}"
        )
        lines = ["telemetry run report", header, "-" * len(header)]
        for stats in level_stats:
            lines.append(
                f"{stats.level:>5} {stats.candidates:>9} {stats.discarded:>9} "
                f"{stats.significant:>7} {stats.not_significant:>9} "
                f"{stats.wall_seconds * 1e3:>10.2f} {stats.counting_seconds * 1e3:>10.2f}"
            )
        mismatches = self.reconcile(level_stats) + self.reconcile_workers()
        if self.enabled:
            lines.append(
                "reconciliation: "
                + ("metrics agree with LevelStats" if not mismatches else "MISMATCH")
            )
            lines.extend(f"  {mismatch}" for mismatch in mismatches)
            lines.extend(_render_rollup("cache", self.metrics.series("cache_events")))
            lines.extend(
                _render_rollup("kernel dispatch", self.metrics.series("kernel_dispatch"))
            )
            lines.extend(
                _render_rollup("autotune", self.metrics.series("kernel_autotune"))
            )
            lines.extend(_render_rollup("pool", self.metrics.series("pool_events")))
            lines.extend(_render_rollup("workers", self.metrics.series("worker_")))
        else:
            lines.append("telemetry disabled (counters empty; timings are zero)")
        return "\n".join(lines)


def _render_rollup(title: str, series: dict[str, object]) -> Iterable[str]:
    if not series:
        return ()
    body = "  ".join(f"{key}={value}" for key, value in series.items())
    return (f"{title}: {body}",)


NULL_TELEMETRY = Telemetry(NULL_TRACER, NULL_METRICS, enabled=False)
