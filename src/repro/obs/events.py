"""Structured JSON event log with request-id correlation.

Every service request gets a generated request id.  The id rides on a
:mod:`contextvars` context variable for the duration of the handler
(``ThreadingHTTPServer`` gives each request its own thread, and each
thread its own context), so anything that emits an event while the
request is being served — the service layer, the miner, the flight
recorder — is stamped with it automatically.  The same id goes out as
the ``X-Request-Id`` response header and in the JSON response body, so
one grep correlates a log line, a span, a flight-recorder entry and the
wire response.

:class:`EventLog` renders each event as one sorted-JSON line through a
stdlib :mod:`logging` logger (so existing ``--log-level`` plumbing and
handlers apply) and keeps a bounded in-memory ring for the flight
recorder and the tests.  Timestamps come from the injectable clock, so
an event stream is byte-identical across runs under a ``FakeClock``.

:class:`RequestIdSource` issues ids from a thread-safe counter —
``req-00000001``, ``req-00000002``, ... — deterministic on purpose: the
golden service-session fixture replays byte-for-byte.
"""

from __future__ import annotations

import json
import logging
import threading
from collections import deque
from contextvars import ContextVar, Token
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.clock import Clock

__all__ = [
    "EventLog",
    "NullEventLog",
    "NULL_EVENTS",
    "RequestIdSource",
    "current_request_id",
    "reset_request_id",
    "set_request_id",
]

# The request id of the request currently being served on this thread
# (None outside a request). ContextVar, not a thread-local, so async
# frameworks layered on top later inherit the right semantics for free.
_request_id_var: ContextVar[str | None] = ContextVar("repro_request_id", default=None)


def current_request_id() -> str | None:
    """The id of the request being served in this context, if any."""
    return _request_id_var.get()


def set_request_id(request_id: str | None) -> Token:
    """Bind the current context's request id; returns the reset token."""
    return _request_id_var.set(request_id)


def reset_request_id(token: Token) -> None:
    """Restore the binding ``set_request_id`` replaced.

    Keep-alive connections serve many requests on one handler thread, so
    the HTTP layer must unbind at request end or a later un-bound emit
    would inherit a stale id.
    """
    _request_id_var.reset(token)


class RequestIdSource:
    """Thread-safe issuer of sequential request ids (``req-%08d``)."""

    __slots__ = ("_lock", "_next")

    def __init__(self, start: int = 1) -> None:
        self._lock = threading.Lock()
        self._next = start

    def issue(self) -> str:
        with self._lock:
            value = self._next
            self._next += 1
        return f"req-{value:08d}"


class EventLog:
    """Bounded, thread-safe structured event log.

    Each event is a flat dict with at least ``event``, ``ts`` and (when
    inside a request) ``request_id``; it is kept in a ring of the most
    recent ``capacity`` events and emitted as one canonical JSON line at
    INFO level on ``logger_name``.
    """

    enabled = True

    def __init__(
        self,
        clock: "Clock | None" = None,
        capacity: int = 1024,
        logger_name: str = "repro.events",
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if clock is None:
            from repro.obs.clock import default_clock

            clock = default_clock()
        self._clock = clock
        self._logger = logging.getLogger(logger_name)
        self._lock = threading.Lock()
        self._ring: deque[dict[str, object]] = deque(maxlen=capacity)

    def emit(self, event: str, **fields: object) -> dict[str, object]:
        """Record one event; returns the completed record."""
        record: dict[str, object] = dict(fields)
        record["event"] = event
        record["ts"] = self._clock()
        request_id = current_request_id()
        if request_id is not None and "request_id" not in record:
            record["request_id"] = request_id
        with self._lock:
            self._ring.append(record)
        self._logger.info("%s", json.dumps(record, sort_keys=True))
        return record

    def tail(self, limit: int | None = None) -> list[dict[str, object]]:
        """The most recent events, oldest first."""
        with self._lock:
            events = list(self._ring)
        return events if limit is None else events[-limit:]

    def for_request(self, request_id: str) -> list[dict[str, object]]:
        """Every retained event stamped with ``request_id``."""
        return [
            event for event in self.tail() if event.get("request_id") == request_id
        ]

    def render_lines(self) -> str:
        """The retained events as newline-separated canonical JSON."""
        return "\n".join(
            json.dumps(event, sort_keys=True) for event in self.tail()
        )


class NullEventLog:
    """Disabled event log: emits nothing, retains nothing."""

    enabled = False

    def emit(self, event: str, **fields: object) -> dict[str, object]:
        return {}

    def tail(self, limit: int | None = None) -> list[dict[str, object]]:
        return []

    def for_request(self, request_id: str) -> list[dict[str, object]]:
        return []

    def render_lines(self) -> str:
        return ""


NULL_EVENTS = NullEventLog()
