"""The paper's census dataset, reconstructed from its published tables.

Section 5.1 mines a census extract with ``n = 30370`` baskets over the
ten binary attributes of Table 1.  The raw extract is not available, but
the paper itself publishes, in Table 3, the full 2x2 distribution of
*every one of the 45 attribute pairs* (the four support percentages
s(ab), s(~a b), s(a ~b), s(~a ~b)).  Those pairwise tables are the only
thing Tables 2 and 3 and Examples 3-5 read, so a synthetic population
whose pairwise tables match the published ones reproduces the paper's
census results up to rounding.

:func:`synthesize_census` builds that population: the maximum-entropy
joint over the 2^10 attribute patterns subject to the 45 published
pairwise tables (via :mod:`repro.data.ipf`), materialised to exactly
30370 deterministic baskets.  Structural zeros — *male* with *3+
children borne*, *born in the U.S.* while *not a U.S. citizen* — are
honoured exactly.

The module also records Table 2's published chi-squared values
(``TABLE2_CHI2``) so the benchmarks can print paper-vs-measured, and a
nine-person sample consistent with Example 3's worked arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.itemsets import ItemVocabulary
from repro.data.basket import BasketDatabase
from repro.data.ipf import PairwiseTarget, fit_pairwise, materialize_counts

__all__ = [
    "CensusAttribute",
    "CENSUS_ATTRIBUTES",
    "PAPER_N",
    "TABLE3_SUPPORT_PERCENTAGES",
    "TABLE2_CHI2",
    "census_vocabulary",
    "pairwise_targets",
    "synthesize_census",
    "example3_sample",
]

PAPER_N = 30370


@dataclass(frozen=True, slots=True)
class CensusAttribute:
    """One collapsed binary census question (paper Table 1)."""

    code: str
    attribute: str
    complement: str


CENSUS_ATTRIBUTES: tuple[CensusAttribute, ...] = (
    CensusAttribute("i0", "drives alone", "does not drive, carpools"),
    CensusAttribute("i1", "male or less than 3 children", "3 or more children"),
    CensusAttribute("i2", "never served in the military", "veteran"),
    CensusAttribute("i3", "native speaker of English", "not a native speaker"),
    CensusAttribute("i4", "not a U.S. citizen", "U.S. citizen"),
    CensusAttribute("i5", "born in the U.S.", "born abroad"),
    CensusAttribute("i6", "married", "single, divorced, widowed"),
    CensusAttribute("i7", "no more than 40 years old", "more than 40 years old"),
    CensusAttribute("i8", "male", "female"),
    CensusAttribute("i9", "householder", "dependent, boarder, renter"),
)

# Table 3 of the paper: for every pair (a, b) with a < b, the percentage
# of baskets in each cell, ordered (s_ab, s_~a_b, s_a_~b, s_~a_~b) as
# printed.  These 45 rows determine every pairwise contingency table of
# the census data (percentages of n = 30370).
TABLE3_SUPPORT_PERCENTAGES: dict[tuple[int, int], tuple[float, float, float, float]] = {
    (0, 1): (16.6, 73.6, 1.4, 8.5),
    (0, 2): (15.0, 74.3, 3.0, 7.7),
    (0, 3): (16.0, 72.9, 1.9, 9.2),
    (0, 4): (1.1, 5.5, 16.9, 76.5),
    (0, 5): (16.1, 73.5, 1.9, 8.5),
    (0, 6): (7.1, 18.1, 10.8, 64.0),
    (0, 7): (9.7, 51.9, 8.2, 30.2),
    (0, 8): (9.6, 36.7, 8.3, 45.3),
    (0, 9): (10.3, 30.5, 7.7, 51.6),
    (1, 2): (79.6, 9.7, 10.6, 0.1),
    (1, 3): (79.9, 9.0, 10.3, 0.8),
    (1, 4): (6.0, 0.6, 84.2, 9.2),
    (1, 5): (80.7, 8.9, 9.5, 1.0),
    (1, 6): (21.3, 3.9, 68.9, 6.0),
    (1, 7): (59.3, 2.3, 30.9, 7.5),
    (1, 8): (46.3, 0.0, 43.8, 9.8),
    (1, 9): (35.5, 5.3, 54.7, 4.6),
    (2, 3): (78.9, 10.0, 10.4, 0.7),
    (2, 4): (6.5, 0.1, 82.8, 10.6),
    (2, 5): (79.3, 10.3, 10.0, 0.4),
    (2, 6): (20.1, 5.1, 69.2, 5.6),
    (2, 7): (58.9, 2.7, 30.4, 8.0),
    (2, 8): (36.5, 9.9, 52.9, 0.8),
    (2, 9): (33.9, 6.9, 55.4, 3.8),
    (3, 4): (1.6, 5.0, 87.3, 6.1),
    (3, 5): (85.4, 4.2, 3.4, 7.0),
    (3, 6): (21.6, 3.6, 67.3, 7.5),
    (3, 7): (54.1, 7.6, 34.8, 3.6),
    (3, 8): (40.8, 5.6, 48.1, 5.6),
    (3, 9): (36.2, 4.5, 52.6, 6.6),
    (4, 5): (0.0, 89.6, 6.6, 3.8),
    (4, 6): (2.5, 22.7, 4.1, 70.7),
    (4, 7): (4.7, 57.0, 1.9, 36.4),
    (4, 8): (3.3, 43.0, 3.3, 50.4),
    (4, 9): (2.6, 38.2, 4.0, 55.2),
    (5, 6): (21.2, 4.0, 68.4, 6.4),
    (5, 7): (54.9, 6.7, 34.6, 3.7),
    (5, 8): (41.2, 5.1, 48.4, 5.3),
    (5, 9): (36.4, 4.4, 53.2, 6.0),
    (6, 7): (9.0, 52.7, 16.2, 22.2),
    (6, 8): (12.7, 33.6, 12.5, 41.2),
    (6, 9): (11.9, 28.8, 13.3, 46.0),
    (7, 8): (29.9, 16.4, 31.7, 22.0),
    (7, 9): (16.1, 24.6, 45.5, 13.8),
    (8, 9): (19.4, 21.4, 27.0, 32.3),
}

# Table 2 of the paper: the published chi-squared value for every pair.
# Kept for paper-vs-measured reporting; the benchmark recomputes each
# value from the synthesized census.
TABLE2_CHI2: dict[tuple[int, int], float] = {
    (0, 1): 37.15,
    (0, 2): 244.47,
    (0, 3): 0.94,
    (0, 4): 4.57,
    (0, 5): 0.05,
    (0, 6): 737.18,
    (0, 7): 153.11,
    (0, 8): 138.13,
    (0, 9): 746.20,
    (1, 2): 296.55,
    (1, 3): 24.00,
    (1, 4): 1.60,
    (1, 5): 1.70,
    (1, 6): 352.31,
    (1, 7): 2010.07,
    (1, 8): 2855.73,
    (1, 9): 229.07,
    (2, 3): 82.02,
    (2, 4): 190.71,
    (2, 5): 176.05,
    (2, 6): 993.31,
    (2, 7): 2006.34,
    (2, 8): 3099.38,
    (2, 9): 819.90,
    (3, 4): 9130.58,
    (3, 5): 11119.28,
    (3, 6): 110.31,
    (3, 7): 62.22,
    (3, 8): 21.41,
    (3, 9): 0.10,
    (4, 5): 18504.81,
    (4, 6): 189.66,
    (4, 7): 76.04,
    (4, 8): 14.48,
    (4, 9): 3.27,
    (5, 6): 312.15,
    (5, 7): 10.62,
    (5, 8): 12.95,
    (5, 9): 2.50,
    (6, 7): 2913.05,
    (6, 8): 66.49,
    (6, 9): 186.28,
    (7, 8): 98.63,
    (7, 9): 4285.29,
    (8, 9): 12.40,
}


def census_vocabulary() -> ItemVocabulary:
    """The ten-item vocabulary i0..i9 in Table 1's order."""
    return ItemVocabulary(attribute.code for attribute in CENSUS_ATTRIBUTES)


def pairwise_targets() -> list[PairwiseTarget]:
    """Table 3's pairwise tables in the IPF cell convention.

    The paper prints ``(s_ab, s_~a_b, s_a_~b, s_~a_~b)``; IPF indexes
    cells by pattern bits (bit 0 = first attribute present, bit 1 =
    second), i.e. ``(p_~a~b, p_a~b, p_~ab, p_ab)``.
    """
    targets: list[PairwiseTarget] = []
    for (a, b), (s_ab, s_nab, s_anb, s_nanb) in TABLE3_SUPPORT_PERCENTAGES.items():
        targets.append(
            PairwiseTarget(a=a, b=b, cells=(s_nanb, s_anb, s_nab, s_ab))
        )
    return targets


def synthesize_census(
    n: int = PAPER_N,
    max_iterations: int = 500,
    tolerance: float = 1e-10,
) -> BasketDatabase:
    """The reconstructed census population as a basket database.

    Deterministic: the maximum-entropy joint fitted to Table 3, rounded
    to ``n`` integer pattern counts, expanded into baskets (one per
    person; the basket holds the attributes that are *present*).
    """
    result = fit_pairwise(
        n_attributes=len(CENSUS_ATTRIBUTES),
        targets=pairwise_targets(),
        max_iterations=max_iterations,
        tolerance=tolerance,
    )
    counts = materialize_counts(result.joint, n)
    k = len(CENSUS_ATTRIBUTES)
    baskets: list[tuple[int, ...]] = []
    for mask in range(1 << k):
        count = int(counts[mask])
        if count == 0:
            continue
        items = tuple(j for j in range(k) if (mask >> j) & 1)
        baskets.extend([items] * count)
    return BasketDatabase(baskets, census_vocabulary())


# Nine baskets consistent with the paper's Table 1 excerpt and the
# Example 3 arithmetic: persons 1 and 5 share the exact pattern the
# caption spells out ({i1,i2,i3,i5,i7,i9}); across all nine persons
# O(i8) = 5, O(i9) = 3 and O(i8 and i9) = 1, which yields the worked
# chi-squared value of 0.900.  The remaining attribute values are a
# plausible completion (the paper prints them but the scan is not
# legible); only the documented constraints are load-bearing and the
# tests assert exactly those.
_EXAMPLE3_BASKETS: tuple[tuple[int, ...], ...] = (
    (1, 2, 3, 5, 7, 9),        # person 1 (caption)
    (0, 1, 2, 3, 5, 6, 8),     # person 2: male worker, drives alone
    (1, 2, 3, 5, 6, 7, 8),     # person 3: young married male
    (1, 2, 3, 5, 8, 9),        # person 4: older male householder (i8 and i9)
    (1, 2, 3, 5, 7, 9),        # person 5 (caption: same pattern as person 1)
    (0, 1, 2, 3, 5, 6, 8),     # person 6: male worker, drives alone
    (1, 2, 4, 6, 7),           # person 7: married immigrant, age <= 40
    (1, 2, 3, 5, 6, 7, 8),     # person 8: young married male
    (1, 3, 5, 6),              # person 9: married veteran woman
)


def example3_sample() -> BasketDatabase:
    """The nine-person sample behind Example 3 (chi2(i8, i9) = 0.900)."""
    return BasketDatabase(list(_EXAMPLE3_BASKETS), census_vocabulary())
