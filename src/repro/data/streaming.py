"""Streaming basket sources for databases larger than main memory.

Section 4 closes with an open problem: "Hashing with collisions is
necessary when the database is much larger than main memory.  Our
algorithm fails if we allow collisions, since we need hash table lookup;
it is an open problem to modify our algorithm for very large databases."

The observation unlocking a partial answer: only the *counting* step
touches the database — the NOTSIG/CAND tables hold itemsets, not
baskets, and stay small.  So the algorithm runs unmodified over a
database that never resides in memory, provided counting uses the
one-pass-per-level strategy (§4's own alternative,
:func:`repro.core.contingency.count_tables_single_pass`) instead of the
vertical bitmap index.

:class:`StreamingBasketDatabase` is that source: backed by a basket
file, it re-reads the file on every iteration, keeps only the
vocabulary and per-item counts (one priming pass) in memory, and
refuses the bitmap operations that would require materialising the
data.  The miner detects the missing bitmap support and insists on
``counting="single_pass"``.
"""

from __future__ import annotations

import os
from collections.abc import Iterator

from repro.core.itemsets import Itemset, ItemVocabulary

__all__ = ["StreamingBasketDatabase"]


class StreamingBasketDatabase:
    """A basket database that never loads the baskets into memory.

    Supports the subset of the :class:`~repro.data.basket.BasketDatabase`
    interface that single-pass mining needs: iteration (one file read
    per pass), ``n_baskets``, ``vocabulary``, and per-item counts.  The
    bitmap methods raise, signalling that per-candidate counting is
    unavailable.  Because correctness depends on every pass reading the
    same bytes, the file is fingerprinted (size + mtime) at open and
    every subsequent pass raises :class:`RuntimeError` if the file has
    changed since.

    Args:
        path: basket file, one basket per line.
        numeric: ids (``True``) or names (``False``) per line.
    """

    __slots__ = (
        "_path",
        "_numeric",
        "_vocabulary",
        "_n_baskets",
        "_item_counts",
        "_fingerprint",
    )

    def __init__(self, path: str | os.PathLike[str], numeric: bool = False) -> None:
        self._path = os.fspath(path)
        self._numeric = numeric
        self._vocabulary = ItemVocabulary()
        self._item_counts: list[int] = []
        # Every pass must see the bytes the priming pass saw: level-k
        # counts against a mutated file would silently disagree with the
        # level-1 marginals.  A size + mtime fingerprint catches the
        # file changing between (not during) passes.
        self._fingerprint = self._stat_fingerprint()
        n_baskets = 0
        # Priming pass: vocabulary + item counts (the level-1 data).
        for basket in self._read():
            n_baskets += 1
            for item in basket:
                self._item_counts[item] += 1
        self._n_baskets = n_baskets

    def _stat_fingerprint(self) -> tuple[int, int]:
        info = os.stat(self._path)
        return (info.st_size, info.st_mtime_ns)

    def _read(self) -> Iterator[tuple[int, ...]]:
        fingerprint = self._stat_fingerprint()
        if fingerprint != self._fingerprint:
            raise RuntimeError(
                f"basket file {self._path!r} changed since it was opened "
                f"(size/mtime {self._fingerprint} -> {fingerprint}); "
                "re-create the StreamingBasketDatabase to pick up the new contents"
            )
        with open(self._path, "r", encoding="utf-8") as handle:
            for line in handle:
                tokens = line.split()
                if self._numeric:
                    ids = sorted({int(token) for token in tokens})
                    if ids and ids[0] < 0:
                        raise ValueError(f"item ids must be non-negative, got {ids[0]}")
                    for item in ids:
                        while item >= len(self._vocabulary):
                            fresh = self._vocabulary.add(f"item{len(self._vocabulary)}")
                            self._item_counts.append(0)
                else:
                    # Order-preserving dedupe: iterating a set here would
                    # make vocabulary ids depend on the process hash seed.
                    ids = sorted(
                        self._vocabulary.add(token) for token in dict.fromkeys(tokens)
                    )
                    while len(self._item_counts) < len(self._vocabulary):
                        self._item_counts.append(0)
                yield tuple(ids)

    # -- BasketSource protocol -------------------------------------------------

    @property
    def vocabulary(self) -> ItemVocabulary:
        """Item vocabulary discovered during the priming pass."""
        return self._vocabulary

    @property
    def n_baskets(self) -> int:
        """Number of baskets (counted once; the file must not change)."""
        return self._n_baskets

    @property
    def n_items(self) -> int:
        """Vocabulary size."""
        return len(self._vocabulary)

    def __len__(self) -> int:
        return self._n_baskets

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        """One full pass over the file per iteration."""
        return self._read()

    def item_count(self, item: int) -> int:
        """O(i) from the priming pass."""
        return self._item_counts[item]

    def item_counts(self) -> tuple[int, ...]:
        """All single-item counts from the priming pass."""
        return tuple(self._item_counts)

    # -- unsupported operations ---------------------------------------------

    def item_bitmap(self, item: int) -> int:
        raise NotImplementedError(
            "a streaming database has no vertical index; "
            "mine with counting='single_pass'"
        )

    def itemset_bitmap(self, itemset: Itemset) -> int:
        raise NotImplementedError(
            "a streaming database has no vertical index; "
            "mine with counting='single_pass'"
        )

    def support_count(self, itemset: Itemset) -> int:
        """Exact support by one scan (no index)."""
        wanted = set(itemset)
        if not wanted:
            return self._n_baskets
        count = 0
        for basket in self._read():
            if wanted.issubset(basket):
                count += 1
        return count
