"""The IBM Quest synthetic market-basket generator.

Section 5.3 evaluates pruning on "synthetic data from IBM's Quest
group", generated with the standard Agrawal-Srikant procedure
(VLDB'94 §2.4.3): the world contains a pool of *maximal potentially
large itemsets*; each transaction picks itemsets from the pool (by
exponentially-distributed weights), corrupts them to model partial
purchases, and stops when a Poisson-sized basket is full.

Parameters follow the original naming:

* ``n_transactions`` (|D|) — the paper uses 99 997;
* ``n_items`` (N) — the paper uses 870;
* ``avg_transaction_size`` (|T|) — the paper uses 20;
* ``avg_pattern_size`` (|I|) — the paper uses 4;
* ``n_patterns`` (|L|) — pool size, classic default 2000;
* ``correlation`` — fraction of a pattern inherited from the previous
  one (default 0.5, the published setting);
* ``corruption_mean`` / ``corruption_deviation`` — per-pattern corruption
  level, normal with mean 0.5 and deviation sqrt(0.1) clipped to [0, 1].

The generator is fully deterministic given ``seed``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.data.basket import BasketDatabase

__all__ = ["QuestParameters", "generate_quest"]


@dataclass(frozen=True, slots=True)
class QuestParameters:
    """Knobs of the Quest generator with the paper's defaults."""

    n_transactions: int = 99_997
    n_items: int = 870
    avg_transaction_size: float = 20.0
    avg_pattern_size: float = 4.0
    n_patterns: int = 2000
    correlation: float = 0.5
    corruption_mean: float = 0.5
    corruption_deviation: float = math.sqrt(0.1)
    seed: int = 1997

    def __post_init__(self) -> None:
        if self.n_transactions < 1:
            raise ValueError("n_transactions must be >= 1")
        if self.n_items < 1:
            raise ValueError("n_items must be >= 1")
        if self.avg_transaction_size <= 0 or self.avg_pattern_size <= 0:
            raise ValueError("average sizes must be positive")
        if self.n_patterns < 1:
            raise ValueError("n_patterns must be >= 1")
        if not 0.0 <= self.correlation <= 1.0:
            raise ValueError("correlation must be in [0, 1]")


@dataclass(slots=True)
class _Pattern:
    items: tuple[int, ...]
    weight: float
    corruption: float


def _poisson(rng: random.Random, mean: float) -> int:
    """Poisson sample by inversion (means here are tiny, <= ~25)."""
    limit = math.exp(-mean)
    product = rng.random()
    count = 0
    while product > limit:
        product *= rng.random()
        count += 1
    return count


def _build_patterns(params: QuestParameters, rng: random.Random) -> list[_Pattern]:
    """The pool of maximal potentially large itemsets.

    Sizes are Poisson(|I|) (minimum 1); a ``correlation`` fraction of
    each pattern's items is inherited from the previous pattern, the
    rest drawn uniformly; weights are exponential(1), normalised.
    """
    patterns: list[_Pattern] = []
    previous: tuple[int, ...] = ()
    weights: list[float] = []
    for _ in range(params.n_patterns):
        size = max(1, _poisson(rng, params.avg_pattern_size))
        size = min(size, params.n_items)
        chosen: set[int] = set()
        if previous:
            n_inherited = min(len(previous), int(round(params.correlation * size)))
            chosen.update(rng.sample(previous, n_inherited))
        while len(chosen) < size:
            chosen.add(rng.randrange(params.n_items))
        items = tuple(sorted(chosen))
        corruption = min(1.0, max(0.0, rng.gauss(params.corruption_mean, params.corruption_deviation)))
        weight = rng.expovariate(1.0)
        patterns.append(_Pattern(items=items, weight=weight, corruption=corruption))
        weights.append(weight)
        previous = items
    total = sum(weights)
    for pattern in patterns:
        pattern.weight /= total
    return patterns


def generate_quest(params: QuestParameters | None = None) -> BasketDatabase:
    """Generate a Quest-style market-basket database.

    Transactions draw patterns weighted by the pool distribution,
    dropping each pattern's items independently with that pattern's
    corruption level, until the Poisson transaction budget is reached; a
    pattern that overflows the budget is kept anyway half the time and
    otherwise deferred, per the original procedure.
    """
    if params is None:
        params = QuestParameters()
    rng = random.Random(params.seed)
    patterns = _build_patterns(params, rng)
    cumulative: list[float] = []
    running = 0.0
    for pattern in patterns:
        running += pattern.weight
        cumulative.append(running)

    def pick_pattern() -> _Pattern:
        value = rng.random() * running
        # Binary search over the cumulative weights.
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return patterns[lo]

    baskets: list[tuple[int, ...]] = []
    for _ in range(params.n_transactions):
        budget = max(1, _poisson(rng, params.avg_transaction_size))
        basket: set[int] = set()
        # Guard against pathological parameter choices where corrupted
        # patterns rarely contribute anything.
        for _ in range(100):
            if len(basket) >= budget:
                break
            pattern = pick_pattern()
            kept = [item for item in pattern.items if rng.random() >= pattern.corruption]
            if not kept:
                continue
            if len(basket) + len(kept) > budget and basket:
                # Half the time the overflowing pattern still goes in.
                if rng.random() < 0.5:
                    basket.update(kept)
                break
            basket.update(kept)
        baskets.append(tuple(sorted(basket)))
    return BasketDatabase.from_id_baskets(baskets, n_items=params.n_items)
