"""Turning records into basket items (the paper's Table 1 step).

The census experiment begins with a modelling move the paper describes
but does not automate: "We formed I by arbitrarily collapsing a number
of census questions into binary form."  This module is that step as
reusable code — a small schema language mapping record fields to binary
items:

* :class:`BooleanAttribute` — a field already boolean (or made boolean
  by a predicate), e.g. *married*;
* :class:`ThresholdAttribute` — a numeric field cut at a threshold,
  e.g. *no more than 40 years old* (the paper's ``i7``);
* :class:`CategoryAttribute` — a categorical field collapsed to "is one
  of these values", e.g. *drives alone* vs everything else (``i0``);
* :class:`BinnedAttribute` — a numeric field split into equal-width or
  quantile bins, each bin its own item — the non-collapsed alternative
  §5.1 wishes for, and the road to the numeric-attribute rules of
  Fukuda et al. [11, 12] the introduction cites.

:func:`discretize` applies a schema to an iterable of records (mappings)
and returns the basket database plus the generated vocabulary.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.core.itemsets import ItemVocabulary
from repro.data.basket import BasketDatabase

__all__ = [
    "BooleanAttribute",
    "ThresholdAttribute",
    "CategoryAttribute",
    "BinnedAttribute",
    "DerivedAttribute",
    "discretize",
]


@dataclass(frozen=True, slots=True)
class BooleanAttribute:
    """Emit ``name`` when ``field`` is truthy (or ``predicate`` holds)."""

    field: str
    name: str
    predicate: Callable[[object], bool] | None = None

    def items_for(self, record: Mapping[str, object]) -> list[str]:
        value = record[self.field]
        truthy = self.predicate(value) if self.predicate is not None else bool(value)
        return [self.name] if truthy else []

    def item_names(self) -> list[str]:
        return [self.name]


@dataclass(frozen=True, slots=True)
class ThresholdAttribute:
    """Emit ``name`` when the numeric field is <= (or >=) a threshold.

    ``direction`` is ``"le"`` (default) or ``"ge"``.  The paper's ``i7``
    is ``ThresholdAttribute("age", "age<=40", 40)``.
    """

    field: str
    name: str
    threshold: float
    direction: str = "le"

    def __post_init__(self) -> None:
        if self.direction not in ("le", "ge"):
            raise ValueError(f"direction must be 'le' or 'ge', got {self.direction!r}")

    def items_for(self, record: Mapping[str, object]) -> list[str]:
        value = float(record[self.field])  # type: ignore[arg-type]
        holds = value <= self.threshold if self.direction == "le" else value >= self.threshold
        return [self.name] if holds else []

    def item_names(self) -> list[str]:
        return [self.name]


@dataclass(frozen=True, slots=True)
class CategoryAttribute:
    """Emit ``name`` when the field's value is in ``values``.

    The paper's ``i0`` collapses a multi-answer commute question to
    "drives alone" vs {carpools, does not drive}.
    """

    field: str
    name: str
    values: frozenset[object]

    def __init__(self, field: str, name: str, values: Iterable[object]) -> None:
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "values", frozenset(values))
        if not self.values:
            raise ValueError("CategoryAttribute needs at least one value")

    def items_for(self, record: Mapping[str, object]) -> list[str]:
        return [self.name] if record[self.field] in self.values else []

    def item_names(self) -> list[str]:
        return [self.name]


@dataclass(frozen=True, slots=True)
class DerivedAttribute:
    """Emit ``name`` when a predicate over the *whole record* holds.

    For collapses spanning several raw fields — the paper's ``i1``
    (*male or less than 3 children*) reads both the sex and the
    children-borne answers.
    """

    name: str
    predicate: Callable[[Mapping[str, object]], bool]

    def items_for(self, record: Mapping[str, object]) -> list[str]:
        return [self.name] if self.predicate(record) else []

    def item_names(self) -> list[str]:
        return [self.name]


class BinnedAttribute:
    """One item per bin of a numeric field.

    ``edges`` are the interior cut points; a value lands in bin ``j``
    when ``edges[j-1] <= value < edges[j]`` (half-open, last bin closed
    above by +inf).  Use :meth:`equal_width` or :meth:`quantiles` to
    derive edges from data.
    """

    __slots__ = ("field", "prefix", "edges")

    def __init__(self, field: str, prefix: str, edges: Sequence[float]) -> None:
        ordered = list(edges)
        if ordered != sorted(ordered):
            raise ValueError("bin edges must be ascending")
        if len(set(ordered)) != len(ordered):
            raise ValueError("bin edges must be distinct")
        self.field = field
        self.prefix = prefix
        self.edges = tuple(ordered)

    @classmethod
    def equal_width(
        cls, field: str, prefix: str, values: Iterable[float], bins: int
    ) -> "BinnedAttribute":
        """Edges splitting [min, max) into ``bins`` equal-width bins."""
        if bins < 2:
            raise ValueError("need at least 2 bins")
        data = sorted(values)
        if not data:
            raise ValueError("cannot derive bins from no data")
        lo, hi = data[0], data[-1]
        if lo == hi:
            raise ValueError("all values identical; bins are meaningless")
        width = (hi - lo) / bins
        edges = [lo + width * j for j in range(1, bins)]
        return cls(field, prefix, edges)

    @classmethod
    def quantiles(
        cls, field: str, prefix: str, values: Iterable[float], bins: int
    ) -> "BinnedAttribute":
        """Edges at the 1/bins .. (bins-1)/bins quantiles (equal-depth)."""
        if bins < 2:
            raise ValueError("need at least 2 bins")
        data = sorted(values)
        if not data:
            raise ValueError("cannot derive bins from no data")
        edges: list[float] = []
        for j in range(1, bins):
            index = min(len(data) - 1, math.ceil(j * len(data) / bins))
            edge = data[index]
            if not edges or edge > edges[-1]:
                edges.append(edge)
        if not edges:
            raise ValueError("values too concentrated for the requested bins")
        return cls(field, prefix, edges)

    def _bin_of(self, value: float) -> int:
        for j, edge in enumerate(self.edges):
            if value < edge:
                return j
        return len(self.edges)

    def items_for(self, record: Mapping[str, object]) -> list[str]:
        value = float(record[self.field])  # type: ignore[arg-type]
        return [f"{self.prefix}[{self._bin_of(value)}]"]

    def item_names(self) -> list[str]:
        return [f"{self.prefix}[{j}]" for j in range(len(self.edges) + 1)]


SchemaAttribute = (
    BooleanAttribute
    | ThresholdAttribute
    | CategoryAttribute
    | BinnedAttribute
    | DerivedAttribute
)


def discretize(
    records: Iterable[Mapping[str, object]],
    schema: Sequence[SchemaAttribute],
) -> BasketDatabase:
    """Apply a schema to records, producing a basket database.

    The vocabulary is pre-seeded with every possible item of the schema
    (in schema order) so item ids are stable regardless of which items
    actually occur.
    """
    if not schema:
        raise ValueError("schema must contain at least one attribute")
    vocabulary = ItemVocabulary()
    for attribute in schema:
        for name in attribute.item_names():
            vocabulary.add(name)
    baskets = (
        [name for attribute in schema for name in attribute.items_for(record)]
        for record in records
    )
    return BasketDatabase.from_baskets(baskets, vocabulary=vocabulary)
