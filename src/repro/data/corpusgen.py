"""Synthetic clari.world.africa-style news corpus (paper §5.2 substitute).

The 91 news articles of 1996-09-13 are not archivable, so we generate a
corpus with the same *statistical shape*: ~91 documents of 200+ words, a
background vocabulary broad enough that ~400 words survive the 10%
document-frequency floor, and planted co-occurrence structure matching
the correlated itemsets of Table 4 — mandela/nelson appearing together,
liberia/west, area/province, deputy/director, three-way patterns like
{burundi, commission, plan} whose *pairs* are not correlated, and so on.

Documents are topic mixtures: each article draws one or two topics;
topic words appear with high probability in articles of that topic and
essentially never elsewhere, while background words follow a Zipf
distribution shared by all articles.  That is exactly the generative
situation in which the chi-squared miner should recover the planted
groups and report the between-topic pairs as negatively dependent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["Topic", "NewsCorpusParameters", "generate_news_corpus", "PLANTED_TOPICS"]


@dataclass(frozen=True, slots=True)
class Topic:
    """A news topic: a name and the marker words it plants."""

    name: str
    words: tuple[str, ...]
    # Probability that a marker word appears in an article of this topic.
    presence: float = 0.9


# Topics are chosen so the word groups of Table 4 emerge: within-topic
# pairs correlate positively; words from mutually exclusive topics
# correlate negatively; the "burundi" topic plants commission/plan
# jointly but burundi itself only sometimes, producing the paper's
# 3-way-but-not-2-way pattern.
PLANTED_TOPICS: tuple[Topic, ...] = (
    Topic("mandela", ("mandela", "nelson", "african", "men", "president")),
    Topic("liberia", ("liberia", "west", "monrovia", "fighting")),
    Topic("province", ("area", "province", "war", "secretary", "they")),
    Topic("burundi", ("commission", "plan", "peace", "talks")),
    Topic("government", ("government", "number", "officials", "minister")),
    Topic("authorities", ("authorities", "official", "police", "security")),
    Topic("work", ("country", "men", "work", "economy")),
    Topic("leadership", ("deputy", "director", "members", "minority")),
)

# Common newswire words forming the Zipf background; frequent enough
# that many survive the 10% document-frequency pruning, giving the
# miner a realistic mass of weakly-correlated pairs.
_BACKGROUND = (
    "the of to and in a is that for on with as by at from it be said "
    "was were has have had his their this which will would are an not "
    "but they he she after before into over under more than about when "
    "who also its two one new last year years week day people city town "
    "state nation country world report news agency according between "
    "during against where while many some other each most made make "
    "told say says called group leader party force forces army rebel "
    "rebels south north east black white house capital region border "
    "million percent since until through among along including being "
    "first second three four major local foreign national international"
).split()


@dataclass(frozen=True, slots=True)
class NewsCorpusParameters:
    """Generator knobs with the paper's corpus shape as defaults."""

    n_documents: int = 91
    min_words: int = 200
    max_words: int = 450
    seed: int = 1996
    two_topic_probability: float = 0.35

    def __post_init__(self) -> None:
        if self.n_documents < 1:
            raise ValueError("n_documents must be >= 1")
        if self.min_words < 1 or self.max_words < self.min_words:
            raise ValueError("need 1 <= min_words <= max_words")
        if not 0.0 <= self.two_topic_probability <= 1.0:
            raise ValueError("two_topic_probability must be in [0, 1]")


def _zipf_weights(n: int) -> list[float]:
    return [1.0 / (rank + 1) for rank in range(n)]


def generate_news_corpus(params: NewsCorpusParameters | None = None) -> list[str]:
    """Generate the synthetic articles as raw text strings.

    Feed the result to :class:`repro.data.text.TextPipeline` to get the
    basket database the Table 4 benchmark mines.
    """
    if params is None:
        params = NewsCorpusParameters()
    rng = random.Random(params.seed)
    background_weights = _zipf_weights(len(_BACKGROUND))
    topics = list(PLANTED_TOPICS)

    documents: list[str] = []
    for _ in range(params.n_documents):
        chosen = [rng.choice(topics)]
        if rng.random() < params.two_topic_probability:
            other = rng.choice(topics)
            if other.name != chosen[0].name:
                chosen.append(other)

        words: list[str] = []
        # Plant each marker word of the active topics with its presence
        # probability, repeated a few times so it reads like prose.
        for topic in chosen:
            for marker in topic.words:
                if rng.random() < topic.presence:
                    words.extend([marker] * rng.randint(1, 4))
        # The burundi topic's country word is itself flaky, creating a
        # triple that correlates while its pairs do not.
        if any(topic.name == "burundi" for topic in chosen) and rng.random() < 0.6:
            words.extend(["burundi"] * rng.randint(1, 3))

        length = rng.randint(params.min_words, params.max_words)
        while len(words) < length:
            words.append(rng.choices(_BACKGROUND, weights=background_weights)[0])
        rng.shuffle(words)
        documents.append(" ".join(words))
    return documents
