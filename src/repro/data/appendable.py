"""An append-only basket database with staged, atomic growth.

The streaming service's storage layer.  A :class:`BasketDatabase` is
immutable by contract; :class:`AppendableBasketDatabase` relaxes that in
exactly one direction — baskets and items may be *added*, never changed
or removed — and keeps every derived structure (per-item bitmaps,
counts, the packed NumPy index) consistent incrementally instead of
rebuilding it.

Appends are two-phase so a failure can never corrupt the database:

1. :meth:`stage_named` / :meth:`stage_ids` encode the incoming baskets
   against the *current* vocabulary without mutating anything.  New
   names get provisional ids (``old_k``, ``old_k + 1``, ...) in exactly
   the order :meth:`BasketDatabase.from_baskets` would assign them, so a
   staged append commits to the same encoding a from-scratch build of
   the grown database produces.
2. :meth:`commit` applies a staged append: vocabulary additions, bitmap
   bit-sets, count bumps, packed-index growth, and the basket list
   extension, then bumps :attr:`generation`.  Commit performs no
   fallible computation — every error is raised during staging (or by
   whatever validation the caller runs between the phases), while the
   database is still untouched.

``generation`` counts committed appends; caches and query engines key
their invalidation on it.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.itemsets import ItemVocabulary
from repro.data.basket import BasketDatabase

__all__ = ["AppendableBasketDatabase", "StagedAppend"]


@dataclass(frozen=True, slots=True)
class StagedAppend:
    """An encoded, not-yet-applied delta of baskets.

    Attributes:
        baskets: the delta, encoded as sorted item-id tuples (new items
            use their provisional ids).
        new_names: names to add to the vocabulary, in provisional-id
            order (``new_names[j]`` becomes id ``base_items + j``).
        touched_items: every item id occurring in the delta — the key
            for generation-aware cache invalidation.
        base_items: vocabulary size the staging was computed against.
        base_baskets: basket count the staging was computed against.
    """

    baskets: tuple[tuple[int, ...], ...]
    new_names: tuple[str, ...]
    touched_items: frozenset[int]
    base_items: int
    base_baskets: int

    @property
    def n_new_baskets(self) -> int:
        """Baskets this append adds."""
        return len(self.baskets)

    @property
    def new_k(self) -> int:
        """Vocabulary size after commit."""
        return self.base_items + len(self.new_names)


class AppendableBasketDatabase(BasketDatabase):
    """A basket database that grows by staged, atomic appends.

    Everything a :class:`BasketDatabase` offers keeps working between
    appends (the class only ever *adds* state); the inherited
    constructors build generation-0 instances.

    >>> db = AppendableBasketDatabase.empty()
    >>> staged = db.stage_named([["tea", "coffee"], ["coffee"]])
    >>> db.commit(staged)
    1
    >>> db.n_baskets, db.n_items, db.generation
    (2, 2, 1)
    """

    __slots__ = ("_generation",)

    def __init__(self, baskets, vocabulary: ItemVocabulary) -> None:
        super().__init__(list(baskets), vocabulary)
        self._generation = 0

    @classmethod
    def empty(cls) -> "AppendableBasketDatabase":
        """A zero-basket, zero-item database to append into."""
        return cls([], ItemVocabulary())

    @property
    def generation(self) -> int:
        """Number of committed appends."""
        return self._generation

    # -- staging (phase 1: no mutation) --------------------------------------

    def stage_named(self, baskets: Iterable[Iterable[str]]) -> StagedAppend:
        """Encode baskets of item *names* against the current vocabulary.

        Provisional ids are assigned to unknown names in first-encounter
        order — the same order :meth:`BasketDatabase.from_baskets` uses —
        so committing is equivalent to having built the whole database
        in one shot.
        """
        vocabulary = self.vocabulary
        base_items = self.n_items
        pending: dict[str, int] = {}
        encoded: list[tuple[int, ...]] = []
        touched: set[int] = set()
        for basket in baskets:
            ids = set()
            for name in basket:
                if name in vocabulary:
                    ids.add(vocabulary.id_of(name))
                elif name in pending:
                    ids.add(pending[name])
                else:
                    item = base_items + len(pending)
                    pending[name] = item
                    ids.add(item)
            encoded.append(tuple(sorted(ids)))
            touched |= ids
        return StagedAppend(
            baskets=tuple(encoded),
            new_names=tuple(pending),
            touched_items=frozenset(touched),
            base_items=base_items,
            base_baskets=self.n_baskets,
        )

    def stage_ids(self, baskets: Iterable[Iterable[int]]) -> StagedAppend:
        """Encode baskets of integer item ids against the current vocabulary.

        Ids beyond the current vocabulary synthesize ``item{i}`` names,
        mirroring :meth:`BasketDatabase.from_id_baskets` (and the
        numeric basket-file format).
        """
        base_items = self.n_items
        encoded: list[tuple[int, ...]] = []
        touched: set[int] = set()
        max_id = base_items - 1
        for basket in baskets:
            ids = tuple(sorted(set(basket)))
            if ids:
                if ids[0] < 0:
                    raise ValueError(f"item ids must be non-negative, got {ids[0]}")
                max_id = max(max_id, ids[-1])
            encoded.append(ids)
            touched.update(ids)
        new_names = tuple(f"item{i}" for i in range(base_items, max_id + 1))
        return StagedAppend(
            baskets=tuple(encoded),
            new_names=new_names,
            touched_items=frozenset(touched),
            base_items=base_items,
            base_baskets=self.n_baskets,
        )

    # -- commit (phase 2: infallible mutation) -------------------------------

    def commit(self, staged: StagedAppend) -> int:
        """Apply a staged append; returns the new generation.

        Raises ValueError when the staging is stale (the database grew
        since it was computed) — *before* touching any state.
        """
        if staged.base_items != self.n_items or staged.base_baskets != self.n_baskets:
            raise ValueError(
                f"stale staged append: staged against {staged.base_baskets} baskets"
                f"/{staged.base_items} items, database has {self.n_baskets}"
                f"/{self.n_items}"
            )
        for name in staged.new_names:
            self.vocabulary.add(name)
        if self._bitmaps is not None:
            self._bitmaps.extend([0] * len(staged.new_names))
            assert self._item_counts is not None
            self._item_counts.extend([0] * len(staged.new_names))
            base = self.n_baskets
            for offset, basket in enumerate(staged.baskets):
                mask = 1 << (base + offset)
                for item in basket:
                    self._bitmaps[item] |= mask
                    self._item_counts[item] += 1
        if self._packed is not None:
            self._packed.append(staged.baskets, n_items=staged.new_k)
        self._baskets.extend(staged.baskets)
        self._generation += 1
        return self._generation
