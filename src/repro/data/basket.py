"""Basket databases.

The paper's data model (Section 1.1): a set of items ``I`` and a set of
baskets ``B``, each basket a subset of ``I``.  :class:`BasketDatabase`
stores the baskets both *horizontally* (a list of item-id tuples, used
for single-pass counting) and *vertically* (one bitmap per item over
basket positions, used for fast support and contingency-cell counting
via bitwise AND + popcount).

Bitmaps are plain Python integers; intersecting two of them and counting
bits runs in C, which is what makes mining 100k-basket databases
practical in pure Python.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.core.itemsets import Itemset, ItemVocabulary

__all__ = ["BasketDatabase"]


class BasketDatabase:
    """An immutable collection of baskets over an item vocabulary.

    Construct with :meth:`from_baskets` (named items) or
    :meth:`from_id_baskets` (pre-encoded integer items).
    """

    __slots__ = ("_baskets", "_vocabulary", "_bitmaps", "_item_counts", "_packed")

    def __init__(
        self,
        baskets: Sequence[tuple[int, ...]],
        vocabulary: ItemVocabulary,
    ) -> None:
        self._baskets = baskets
        self._vocabulary = vocabulary
        self._bitmaps: list[int] | None = None
        self._item_counts: list[int] | None = None
        self._packed = None

    # -- construction -------------------------------------------------------

    @classmethod
    def from_baskets(
        cls,
        baskets: Iterable[Iterable[str]],
        vocabulary: ItemVocabulary | None = None,
    ) -> "BasketDatabase":
        """Build a database from baskets of item *names*.

        Unknown names are added to the vocabulary as encountered; pass an
        existing vocabulary to share ids across databases.
        """
        vocab = vocabulary if vocabulary is not None else ItemVocabulary()
        encoded: list[tuple[int, ...]] = []
        for basket in baskets:
            ids = sorted({vocab.add(name) for name in basket})
            encoded.append(tuple(ids))
        return cls(encoded, vocab)

    @classmethod
    def from_boolean_matrix(
        cls,
        matrix,
        item_names: Iterable[str] | None = None,
    ) -> "BasketDatabase":
        """Build a database from a (baskets x items) boolean matrix.

        The one-hot layout common to dataframe pipelines: row ``i``,
        column ``j`` true means basket ``i`` contains item ``j``.
        Accepts anything numpy can coerce to a 2-D boolean array.
        """
        import numpy as np

        array = np.asarray(matrix, dtype=bool)
        if array.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got {array.ndim} dimensions")
        n_items = array.shape[1]
        if item_names is None:
            vocabulary = ItemVocabulary(f"item{j}" for j in range(n_items))
        else:
            vocabulary = ItemVocabulary(item_names)
            if len(vocabulary) != n_items:
                raise ValueError(
                    f"{len(vocabulary)} item names for {n_items} matrix columns"
                )
        baskets = [tuple(int(j) for j in np.flatnonzero(row)) for row in array]
        return cls(baskets, vocabulary)

    def to_boolean_matrix(self):
        """The database as a (baskets x items) boolean numpy matrix."""
        import numpy as np

        array = np.zeros((self.n_baskets, self.n_items), dtype=bool)
        for index, basket in enumerate(self._baskets):
            for item in basket:
                array[index, item] = True
        return array

    @classmethod
    def from_id_baskets(
        cls,
        baskets: Iterable[Iterable[int]],
        n_items: int | None = None,
        vocabulary: ItemVocabulary | None = None,
    ) -> "BasketDatabase":
        """Build a database from baskets of integer item ids.

        When no vocabulary is supplied, one is synthesised with names
        ``item0..item{k-1}`` covering ``n_items`` (or the largest id
        seen).
        """
        encoded: list[tuple[int, ...]] = []
        max_id = -1
        for basket in baskets:
            ids = tuple(sorted(set(basket)))
            if ids:
                if ids[0] < 0:
                    raise ValueError(f"item ids must be non-negative, got {ids[0]}")
                max_id = max(max_id, ids[-1])
            encoded.append(ids)
        if vocabulary is None:
            count = max(n_items or 0, max_id + 1)
            vocabulary = ItemVocabulary(f"item{i}" for i in range(count))
        else:
            if max_id >= len(vocabulary):
                raise ValueError(
                    f"basket references item id {max_id} outside vocabulary of size {len(vocabulary)}"
                )
            if n_items is not None and n_items != len(vocabulary):
                raise ValueError("n_items disagrees with the supplied vocabulary size")
        return cls(encoded, vocabulary)

    # -- basic accessors ----------------------------------------------------

    @property
    def vocabulary(self) -> ItemVocabulary:
        """The item vocabulary shared by all baskets."""
        return self._vocabulary

    @property
    def n_baskets(self) -> int:
        """Number of baskets (the paper's ``n``)."""
        return len(self._baskets)

    @property
    def n_items(self) -> int:
        """Number of items in the vocabulary (the paper's ``k``)."""
        return len(self._vocabulary)

    def __len__(self) -> int:
        return len(self._baskets)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._baskets)

    def __getitem__(self, index: int) -> tuple[int, ...]:
        return self._baskets[index]

    def basket_names(self, index: int) -> tuple[str, ...]:
        """The item names of one basket, for display."""
        return self._vocabulary.decode(self._baskets[index])

    # -- vertical index -------------------------------------------------------

    def _build_bitmaps(self) -> None:
        """Materialise one bitmap per item (bit ``i`` = basket ``i`` has it).

        Built via per-item bytearrays so construction is linear in the
        total number of item occurrences rather than quadratic in the
        bitmap length.
        """
        n_bytes = (len(self._baskets) + 7) // 8
        buffers = [bytearray(n_bytes) for _ in range(self.n_items)]
        counts = [0] * self.n_items
        for position, basket in enumerate(self._baskets):
            byte, bit = position >> 3, position & 7
            mask = 1 << bit
            for item in basket:
                buffers[item][byte] |= mask
                counts[item] += 1
        self._bitmaps = [int.from_bytes(buf, "little") for buf in buffers]
        self._item_counts = counts

    def item_bitmap(self, item: int) -> int:
        """Bitmap of baskets containing ``item``."""
        if self._bitmaps is None:
            self._build_bitmaps()
        assert self._bitmaps is not None
        return self._bitmaps[item]

    def item_count(self, item: int) -> int:
        """O(i): number of baskets containing ``item``."""
        if self._item_counts is None:
            self._build_bitmaps()
        assert self._item_counts is not None
        return self._item_counts[item]

    def item_counts(self) -> tuple[int, ...]:
        """Occurrence counts for every item in the vocabulary."""
        if self._item_counts is None:
            self._build_bitmaps()
        assert self._item_counts is not None
        return tuple(self._item_counts)

    def packed_index(self):
        """The NumPy packed-bitmap index over this database (built once).

        The vectorized counting kernels' view of the vertical database:
        a ``(n_items, ceil(n/64))`` ``uint64`` matrix, cached here like
        the big-int bitmaps so every kernel call over the same database
        shares one packing pass.  Requires NumPy.
        """
        if self._packed is None:
            from repro.kernels.packed import PackedBitmapIndex

            self._packed = PackedBitmapIndex.from_database(self)
        return self._packed

    # -- support ------------------------------------------------------------

    def itemset_bitmap(self, itemset: Itemset | Iterable[int]) -> int:
        """Bitmap of baskets containing *all* items of ``itemset``.

        The empty itemset maps to the all-ones bitmap (every basket).
        """
        items = list(itemset)
        if not items:
            return (1 << len(self._baskets)) - 1
        result = self.item_bitmap(items[0])
        for item in items[1:]:
            result &= self.item_bitmap(item)
        return result

    def support_count(self, itemset: Itemset | Iterable[int]) -> int:
        """O(S): number of baskets containing every item of ``itemset``."""
        return self.itemset_bitmap(itemset).bit_count()

    def support(self, itemset: Itemset | Iterable[int]) -> float:
        """Fraction of baskets containing ``itemset`` (classic support)."""
        if not self._baskets:
            raise ValueError("support is undefined on an empty database")
        return self.support_count(itemset) / len(self._baskets)

    # -- derived databases ---------------------------------------------------

    def restricted_to(self, items: Iterable[int]) -> "BasketDatabase":
        """A new database keeping only the given items (ids preserved)."""
        kept = set(items)
        baskets = [tuple(i for i in basket if i in kept) for basket in self._baskets]
        return BasketDatabase(baskets, self._vocabulary)

    def sample(self, indices: Iterable[int]) -> "BasketDatabase":
        """A new database containing the baskets at ``indices``."""
        baskets = [self._baskets[i] for i in indices]
        return BasketDatabase(baskets, self._vocabulary)
