"""Parity data: datasets with a planted high correlation border (§6).

The paper closes with: "All of the data we have presented have small
borders because most small itemsets are correlated.  It might be
fruitful to explore the behavior of data sets where the border is
exponential in the number of items."  Parity constructions are the
canonical way to push the border up:

For a group of ``m`` items, sample ``m - 1`` fair independent coins and
set the last item to their XOR (even parity).  Then *every proper
subset* of the group is exactly mutually independent — uniform
marginals, product-form joints — while the full group is maximally
dependent (half of its ``2^m`` patterns are impossible).  The
correlation border for that group therefore sits exactly at level
``m``, and the expected chi-squared of the full group is ``n`` (each
feasible cell holds twice its independence expectation).

Multiple disjoint groups plant multiple border elements; optional noise
items add independent background.  This is the worst-case probe for a
level-wise miner — everything below the border is supported and
uncorrelated, so nothing prunes — and the natural showcase for the
random-walk alternative.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.itemsets import Itemset
from repro.data.basket import BasketDatabase

__all__ = ["generate_parity_data", "planted_border"]


def generate_parity_data(
    n_baskets: int,
    group_sizes: Sequence[int],
    noise_items: int = 0,
    seed: int = 0,
) -> BasketDatabase:
    """Baskets with one even-parity group per entry of ``group_sizes``.

    Items are laid out group by group (group 0 gets ids ``0..m0-1``,
    and so on), with ``noise_items`` independent fair coins at the end.

    Args:
        n_baskets: number of baskets to draw.
        group_sizes: size of each parity group; each must be >= 2.
        noise_items: extra independent items appended after the groups.
        seed: RNG seed (deterministic output).
    """
    if n_baskets < 1:
        raise ValueError("n_baskets must be >= 1")
    if not group_sizes and noise_items == 0:
        raise ValueError("need at least one group or noise item")
    for size in group_sizes:
        if size < 2:
            raise ValueError(f"parity groups need >= 2 items, got {size}")
    if noise_items < 0:
        raise ValueError("noise_items must be non-negative")

    rng = random.Random(seed)
    n_items = sum(group_sizes) + noise_items
    baskets: list[tuple[int, ...]] = []
    for _ in range(n_baskets):
        basket: list[int] = []
        base = 0
        for size in group_sizes:
            parity = 0
            for offset in range(size - 1):
                if rng.random() < 0.5:
                    basket.append(base + offset)
                    parity ^= 1
            # Last item forces even parity over the group.
            if parity:
                basket.append(base + size - 1)
            base += size
        for offset in range(noise_items):
            if rng.random() < 0.5:
                basket.append(base + offset)
        baskets.append(tuple(basket))
    return BasketDatabase.from_id_baskets(baskets, n_items=n_items)


def planted_border(group_sizes: Sequence[int]) -> list[Itemset]:
    """The minimal correlated itemsets the construction plants.

    One element per group: the full group itemset (its proper subsets
    are independent by the parity property).
    """
    border: list[Itemset] = []
    base = 0
    for size in group_sizes:
        border.append(Itemset(range(base, base + size)))
        base += size
    return sorted(border)
