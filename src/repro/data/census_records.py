"""Raw census records and the Table 1 collapse, end to end.

The paper's census pipeline starts a step before baskets: individual
answers to census questions ("multiple-choice answers such as those
found in census forms", §5) that the authors "arbitrarily collapsed into
binary form".  This module recreates that step:

* :func:`synthesize_census_records` produces ``n`` raw person records —
  commute mode, sex, children borne, veteran status, language,
  citizenship, birthplace, marital status, age, household role — whose
  *collapsed* attributes follow exactly the joint distribution of the
  reconstructed census (:func:`repro.data.census.synthesize_census`);
* :func:`census_schema` is the Table 1 collapse expressed in the
  :mod:`repro.data.discretize` schema language, including the
  cross-field ``i1`` (*male or less than 3 children*) and the
  age-threshold ``i7``.

Discretizing the records with the schema therefore reproduces the
basket-level census **exactly** (same multiset of baskets), which the
tests assert — raw values are sampled *within* the cell their person's
binary pattern fixes, so the collapse inverts the sampling.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence

from repro.data.census import PAPER_N, synthesize_census
from repro.data.discretize import (
    BooleanAttribute,
    CategoryAttribute,
    DerivedAttribute,
    SchemaAttribute,
    ThresholdAttribute,
)

__all__ = ["census_schema", "synthesize_census_records"]

_COMMUTE_SOLO = "drives alone"
_COMMUTE_OTHER = ("carpools", "does not drive")


def census_schema() -> list[SchemaAttribute]:
    """The Table 1 collapse: raw fields -> items i0..i9."""
    return [
        CategoryAttribute("commute", "i0", [_COMMUTE_SOLO]),
        DerivedAttribute(
            "i1",
            lambda record: record["sex"] == "male" or int(record["children_borne"]) < 3,  # type: ignore[arg-type]
        ),
        BooleanAttribute("veteran", "i2", predicate=lambda v: not v),
        BooleanAttribute("native_english", "i3"),
        BooleanAttribute("us_citizen", "i4", predicate=lambda v: not v),
        BooleanAttribute("born_in_us", "i5"),
        BooleanAttribute("married", "i6"),
        ThresholdAttribute("age", "i7", 40, direction="le"),
        BooleanAttribute("sex", "i8", predicate=lambda v: v == "male"),
        BooleanAttribute("householder", "i9"),
    ]


def _record_for_pattern(pattern: Sequence[bool], rng: random.Random) -> dict[str, object]:
    """Raw answers consistent with one binary attribute pattern.

    Free detail (exact age, children count, commute alternative) is
    sampled uniformly inside the cell the pattern fixes, so collapsing
    the record recovers the pattern exactly.
    """
    i0, i1, i2, i3, i4, i5, i6, i7, i8, i9 = pattern
    sex = "male" if i8 else "female"
    if i1:
        # Male (any children field is vacuous for the paper's question,
        # which asks about children *borne*) or a woman with < 3.
        children = 0 if sex == "male" else rng.randint(0, 2)
    else:
        # NOT i1 requires a woman with 3+ children borne; a male with
        # ~i1 is the structural zero the census data never contains.
        if sex == "male":
            raise ValueError("inconsistent pattern: male with NOT i1 is impossible")
        children = rng.randint(3, 7)
    age = rng.randint(18, 40) if i7 else rng.randint(41, 90)
    return {
        "commute": _COMMUTE_SOLO if i0 else rng.choice(_COMMUTE_OTHER),
        "sex": sex,
        "children_borne": children,
        "veteran": not i2,
        "native_english": bool(i3),
        "us_citizen": not i4,
        "born_in_us": bool(i5),
        "married": bool(i6),
        "age": age,
        "householder": bool(i9),
    }


def synthesize_census_records(
    n: int = PAPER_N, seed: int = 1990
) -> list[Mapping[str, object]]:
    """``n`` raw person records matching the reconstructed census.

    The binary patterns come from the deterministic IPF census; only the
    within-cell detail (exact ages etc.) uses the seeded RNG.
    """
    db = synthesize_census(n=n)
    rng = random.Random(seed)
    k = db.n_items
    records: list[Mapping[str, object]] = []
    for basket in db:
        present = set(basket)
        pattern = tuple(j in present for j in range(k))
        records.append(_record_for_pattern(pattern, rng))
    return records
