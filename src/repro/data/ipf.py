"""Iterative proportional fitting over binary joint distributions.

Reconstructing the paper's census dataset needs a joint distribution
over 10 binary attributes whose *pairwise* contingency tables match the
percentages the paper publishes (Table 3).  Pairwise marginals do not
determine a joint; the canonical choice is the **maximum-entropy** joint
subject to those marginals, which iterative proportional fitting (IPF)
computes: cycle over the constraints, rescaling the joint so each
pairwise table matches its target, until the adjustments vanish.

The joint is stored densely as a numpy vector of length ``2^k`` indexed
by presence bitmask (bit ``j`` = attribute ``j`` present), matching the
cell convention of :mod:`repro.core.contingency`.  For the paper's
``k = 10`` that is 1024 cells — trivially cheap.

Zero targets (the census has structural zeros, e.g. *male* and *has
borne 3+ children*) are honoured exactly: the affected cells are zeroed
on the first pass and stay zero.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

try:
    import numpy as np
except ImportError:  # the pure-Python install: module imports, fitting raises
    np = None


def _require_numpy() -> None:
    """Fail with an actionable message when the [fast] extra is missing."""
    if np is None:
        raise ImportError(
            "iterative proportional fitting needs NumPy; "
            "install the [fast] extra (pip install repro[fast])"
        )

__all__ = ["PairwiseTarget", "IPFResult", "fit_pairwise", "materialize_counts"]


@dataclass(frozen=True, slots=True)
class PairwiseTarget:
    """Target 2x2 distribution for one attribute pair.

    ``cells`` are the probabilities (or any proportional weights) of the
    four joint outcomes, keyed by the 2-bit pattern: bit 0 = attribute
    ``a`` present, bit 1 = attribute ``b`` present.
    """

    a: int
    b: int
    cells: tuple[float, float, float, float]  # indexed by pattern 0b00..0b11

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError("a pairwise target needs two distinct attributes")
        if any(c < 0 for c in self.cells):
            raise ValueError(f"target cells must be non-negative, got {self.cells}")
        if sum(self.cells) <= 0:
            raise ValueError("target cells must not all be zero")

    def normalized(self) -> tuple[float, float, float, float]:
        """Cells rescaled to sum to one."""
        total = sum(self.cells)
        c = self.cells
        return (c[0] / total, c[1] / total, c[2] / total, c[3] / total)


@dataclass(slots=True)
class IPFResult:
    """A fitted joint distribution and its convergence diagnostics."""

    joint: np.ndarray  # length 2^k, sums to 1
    n_attributes: int
    iterations: int
    max_error: float
    converged: bool

    def pairwise(self, a: int, b: int) -> tuple[float, float, float, float]:
        """The fitted 2x2 distribution of attributes ``a`` and ``b``."""
        cells = [0.0, 0.0, 0.0, 0.0]
        for mask, probability in enumerate(self.joint):
            pattern = ((mask >> a) & 1) | (((mask >> b) & 1) << 1)
            cells[pattern] += probability
        return tuple(cells)  # type: ignore[return-value]

    def marginal(self, a: int) -> float:
        """P[attribute a present] under the fitted joint."""
        mask = np.arange(len(self.joint))
        return float(self.joint[(mask >> a) & 1 == 1].sum())


def _pair_patterns(n_attributes: int, a: int, b: int) -> np.ndarray:
    """For each joint cell, its 2-bit pattern w.r.t. attributes a, b."""
    mask = np.arange(1 << n_attributes)
    return ((mask >> a) & 1) | (((mask >> b) & 1) << 1)


def fit_pairwise(
    n_attributes: int,
    targets: Sequence[PairwiseTarget] | Mapping[tuple[int, int], tuple[float, float, float, float]],
    max_iterations: int = 500,
    tolerance: float = 1e-10,
) -> IPFResult:
    """Fit the max-entropy joint matching the given pairwise tables.

    ``targets`` may be a sequence of :class:`PairwiseTarget` or a
    mapping ``(a, b) -> (p00, p01, p10, p11)`` using the same bit
    convention.  Targets need not be perfectly consistent (published
    tables are rounded); IPF then converges to a cycle whose residual is
    reported in ``max_error``.

    Raises ValueError when an attribute index is out of range.
    """
    _require_numpy()
    if n_attributes < 1:
        raise ValueError("need at least one attribute")
    if isinstance(targets, Mapping):
        target_list = [PairwiseTarget(a=a, b=b, cells=cells) for (a, b), cells in targets.items()]
    else:
        target_list = list(targets)
    for target in target_list:
        for attribute in (target.a, target.b):
            if not 0 <= attribute < n_attributes:
                raise ValueError(
                    f"attribute {attribute} out of range for {n_attributes} attributes"
                )

    n_cells = 1 << n_attributes
    joint = np.full(n_cells, 1.0 / n_cells)
    patterns = {
        (t.a, t.b): _pair_patterns(n_attributes, t.a, t.b) for t in target_list
    }
    normalized = {(t.a, t.b): np.asarray(t.normalized()) for t in target_list}

    iterations = 0
    max_error = np.inf
    for iterations in range(1, max_iterations + 1):
        max_error = 0.0
        # replint: disable=RPR003 -- IPF sweep order is part of the algorithm: constraints are applied in the caller's published-table order, and reordering would move the fixed point (and the golden census bits)
        for key, target in normalized.items():
            pattern = patterns[key]
            current = np.bincount(pattern, weights=joint, minlength=4)
            scale = np.ones(4)
            for cell in range(4):
                if target[cell] == 0.0:
                    scale[cell] = 0.0
                elif current[cell] > 0.0:
                    scale[cell] = target[cell] / current[cell]
                # current == 0 with positive target: leave the scale at 1;
                # mass cannot be created where the joint has none (it can
                # flow back in via other constraints on later sweeps).
            joint *= scale[pattern]
            error = float(np.abs(current - target).max())
            max_error = max(max_error, error)
        total = joint.sum()
        if total <= 0:
            raise ArithmeticError("IPF drove the whole joint to zero; targets conflict")
        joint /= total
        if max_error < tolerance:
            break

    return IPFResult(
        joint=joint,
        n_attributes=n_attributes,
        iterations=iterations,
        max_error=max_error,
        converged=max_error < tolerance,
    )


def materialize_counts(joint: np.ndarray, n: int) -> np.ndarray:
    """Round a probability vector to integer counts summing exactly to ``n``.

    Largest-remainder (Hamilton) rounding: floor everything, then hand
    the leftover units to the cells with the largest fractional parts.
    Deterministic, so the synthesized census is reproducible bit for bit.
    """
    _require_numpy()
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    total = joint.sum()
    if total <= 0:
        raise ValueError("joint has no mass")
    scaled = joint * (n / total)
    counts = np.floor(scaled).astype(np.int64)
    shortfall = n - int(counts.sum())
    if shortfall > 0:
        remainders = scaled - counts
        top = np.argsort(-remainders, kind="stable")[:shortfall]
        counts[top] += 1
    return counts
