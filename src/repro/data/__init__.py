"""Data substrates: basket databases, I/O, and the paper's three datasets."""

from repro.data.appendable import AppendableBasketDatabase, StagedAppend
from repro.data.basket import BasketDatabase
from repro.data.census import (
    CENSUS_ATTRIBUTES,
    PAPER_N,
    TABLE2_CHI2,
    TABLE3_SUPPORT_PERCENTAGES,
    CensusAttribute,
    census_vocabulary,
    example3_sample,
    pairwise_targets,
    synthesize_census,
)
from repro.data.datacube import CountDatacube
from repro.data.census_records import census_schema, synthesize_census_records
from repro.data.discretize import (
    BinnedAttribute,
    BooleanAttribute,
    CategoryAttribute,
    DerivedAttribute,
    ThresholdAttribute,
    discretize,
)
from repro.data.corpusgen import (
    PLANTED_TOPICS,
    NewsCorpusParameters,
    Topic,
    generate_news_corpus,
)
from repro.data.io import (
    read_named_baskets,
    read_numeric_baskets,
    write_named_baskets,
    write_numeric_baskets,
)
from repro.data.ipf import IPFResult, PairwiseTarget, fit_pairwise, materialize_counts
from repro.data.parity import generate_parity_data, planted_border
from repro.data.streaming import StreamingBasketDatabase
from repro.data.quest import QuestParameters, generate_quest
from repro.data.text import TextPipeline, corpus_to_baskets, tokenize

__all__ = [
    "AppendableBasketDatabase",
    "StagedAppend",
    "BasketDatabase",
    "CountDatacube",
    "BinnedAttribute",
    "BooleanAttribute",
    "CategoryAttribute",
    "DerivedAttribute",
    "ThresholdAttribute",
    "discretize",
    "census_schema",
    "synthesize_census_records",
    "CENSUS_ATTRIBUTES",
    "PAPER_N",
    "TABLE2_CHI2",
    "TABLE3_SUPPORT_PERCENTAGES",
    "CensusAttribute",
    "census_vocabulary",
    "example3_sample",
    "pairwise_targets",
    "synthesize_census",
    "PLANTED_TOPICS",
    "NewsCorpusParameters",
    "Topic",
    "generate_news_corpus",
    "read_named_baskets",
    "read_numeric_baskets",
    "write_named_baskets",
    "write_numeric_baskets",
    "IPFResult",
    "PairwiseTarget",
    "fit_pairwise",
    "materialize_counts",
    "generate_parity_data",
    "planted_border",
    "StreamingBasketDatabase",
    "QuestParameters",
    "generate_quest",
    "TextPipeline",
    "corpus_to_baskets",
    "tokenize",
]
