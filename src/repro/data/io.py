"""Reading and writing basket databases.

Two plain-text interchange formats cover the ecosystem's conventions:

* *named* format — one basket per line, whitespace-separated item names
  (suits text/census data);
* *numeric* format — one basket per line, whitespace-separated integer
  item ids (the layout of the classic IBM Quest output files).

Lines that are empty after stripping denote empty baskets, which are
meaningful here: the paper's contingency tables count absences, so a
basket containing none of the items still lands in a cell.

Files whose name ends in ``.gz`` are read and written gzip-compressed
transparently — market-basket dumps compress extremely well.
"""

from __future__ import annotations

import gzip
import os
from collections.abc import Iterable, Iterator
from typing import TextIO

from repro.core.itemsets import ItemVocabulary
from repro.data.basket import BasketDatabase

__all__ = [
    "read_named_baskets",
    "write_named_baskets",
    "read_numeric_baskets",
    "write_numeric_baskets",
]


def _open_text(path: str | os.PathLike[str], mode: str) -> TextIO:
    if os.fspath(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")  # type: ignore[return-value]
    return open(path, mode, encoding="utf-8")


def _iter_lines(path: str | os.PathLike[str]) -> Iterator[str]:
    with _open_text(path, "r") as handle:
        for line in handle:
            yield line.rstrip("\n")


def read_named_baskets(
    path: str | os.PathLike[str],
    vocabulary: ItemVocabulary | None = None,
) -> BasketDatabase:
    """Load a database of named baskets (one whitespace-separated line each)."""
    baskets = (line.split() for line in _iter_lines(path))
    return BasketDatabase.from_baskets(baskets, vocabulary=vocabulary)


def write_named_baskets(db: BasketDatabase, path: str | os.PathLike[str]) -> None:
    """Write a database in named format, one basket per line."""
    with _open_text(path, "w") as handle:
        for index in range(db.n_baskets):
            handle.write(" ".join(db.basket_names(index)))
            handle.write("\n")


def read_numeric_baskets(
    path: str | os.PathLike[str],
    n_items: int | None = None,
) -> BasketDatabase:
    """Load a database of integer-id baskets (Quest-style files)."""

    def parse(line: str) -> Iterable[int]:
        return (int(token) for token in line.split())

    baskets = (parse(line) for line in _iter_lines(path))
    return BasketDatabase.from_id_baskets(baskets, n_items=n_items)


def write_numeric_baskets(db: BasketDatabase, path: str | os.PathLike[str]) -> None:
    """Write a database in numeric format, one basket per line."""
    with _open_text(path, "w") as handle:
        for basket in db:
            handle.write(" ".join(str(item) for item in basket))
            handle.write("\n")
