"""Text-to-basket pipeline (paper §5.2).

The document-basket application: each basket is a document, each item a
word.  The paper's preprocessing rules are followed exactly:

* "A word was defined to be any consecutive sequence of alphabetic
  characters" — so ``mandela's`` tokenises to ``mandela`` and ``s``,
  and numbers vanish;
* documents shorter than a minimum word count are dropped ("We chose
  only articles with at least 200 words");
* words occurring in fewer than a document-frequency floor of the
  documents are pruned ("we pruned all words occurring in less than 10%
  of the documents").

Word frequency and ordering within a document are discarded — a basket
records only which words occur.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.itemsets import ItemVocabulary
from repro.data.basket import BasketDatabase

__all__ = ["tokenize", "TextPipeline", "corpus_to_baskets"]

_WORD = re.compile(r"[A-Za-z]+")


def tokenize(text: str) -> list[str]:
    """Split text into lowercase alphabetic runs (the paper's word rule)."""
    return [match.group(0).lower() for match in _WORD.finditer(text)]


@dataclass(frozen=True, slots=True)
class TextPipeline:
    """Preprocessing configuration for a document corpus.

    Attributes:
        min_words: documents with fewer (total, not distinct) words are
            dropped; the paper uses 200.
        min_document_frequency: words appearing in a smaller *fraction*
            of the kept documents are pruned; the paper uses 0.10.
    """

    min_words: int = 200
    min_document_frequency: float = 0.10

    def __post_init__(self) -> None:
        if self.min_words < 0:
            raise ValueError("min_words must be non-negative")
        if not 0.0 <= self.min_document_frequency <= 1.0:
            raise ValueError("min_document_frequency must be in [0, 1]")

    def run(self, documents: Iterable[str]) -> BasketDatabase:
        """Tokenize, filter, prune, and return the basket database."""
        token_lists: list[list[str]] = []
        for document in documents:
            tokens = tokenize(document)
            if len(tokens) >= self.min_words:
                token_lists.append(tokens)

        n_documents = len(token_lists)
        document_frequency: dict[str, int] = {}
        distinct_per_doc: list[set[str]] = []
        for tokens in token_lists:
            distinct = set(tokens)
            distinct_per_doc.append(distinct)
            for word in distinct:
                document_frequency[word] = document_frequency.get(word, 0) + 1

        floor = self.min_document_frequency * n_documents
        kept_words = sorted(
            word for word, count in document_frequency.items() if count >= floor
        )
        vocabulary = ItemVocabulary(kept_words)
        kept_set = set(kept_words)
        baskets = [
            sorted(word for word in distinct if word in kept_set)
            for distinct in distinct_per_doc
        ]
        return BasketDatabase.from_baskets(baskets, vocabulary=vocabulary)


def corpus_to_baskets(
    documents: Sequence[str],
    min_words: int = 200,
    min_document_frequency: float = 0.10,
) -> BasketDatabase:
    """One-call version of :class:`TextPipeline` with the paper's defaults."""
    pipeline = TextPipeline(
        min_words=min_words, min_document_frequency=min_document_frequency
    )
    return pipeline.run(documents)
