"""A count datacube over basket data (paper §2.1 / §6).

The paper twice points at Gray et al.'s datacube [13]: "the random walk
algorithm has a natural implementation in terms of a datacube of the
count values for contingency tables; a connection we intend to explore
in a later paper."  This module implements that connection.

A :class:`CountDatacube` materialises, in one database pass, the counts
of every full presence/absence pattern over a chosen set of *dimension*
items.  Any contingency table for any sub-itemset of the dimensions is
then a **roll-up** (marginalisation) of the cube — no further database
access — which is exactly the access pattern of a random walk that keeps
adding or removing items from the current itemset.

The cube is stored sparsely: at most ``min(n, 2^m)`` patterns occur, so
even wide cubes stay linear in the data.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.core.itemsets import Itemset
from repro.data.basket import BasketDatabase

if TYPE_CHECKING:  # deferred at runtime: core.contingency imports repro.data
    from repro.core.contingency import ContingencyTable

__all__ = ["CountDatacube"]


class CountDatacube:
    """Pattern counts over ``dimensions``, answering roll-up queries.

    >>> db = BasketDatabase.from_baskets([["a", "b"], ["a"], ["b"], []])
    >>> cube = CountDatacube(db, [0, 1])
    >>> cube.count({0: True, 1: True})
    1
    >>> cube.table_for(Itemset([0])).observed(1)
    2.0
    """

    __slots__ = ("_dimensions", "_position", "_counts", "_n")

    def __init__(self, db: BasketDatabase, dimensions: Iterable[int]) -> None:
        dims = tuple(sorted(set(dimensions)))
        if not dims:
            raise ValueError("a datacube needs at least one dimension item")
        for item in dims:
            if not 0 <= item < db.n_items:
                raise ValueError(f"item {item} not in the database vocabulary")
        self._dimensions = dims
        self._position = {item: j for j, item in enumerate(dims)}
        counts: dict[int, int] = {}
        seen = 0
        position = self._position
        for basket in db:
            mask = 0
            for item in basket:
                j = position.get(item)
                if j is not None:
                    mask |= 1 << j
            if mask:
                counts[mask] = counts.get(mask, 0) + 1
                seen += 1
        remainder = db.n_baskets - seen
        if remainder:
            counts[0] = remainder
        self._counts = counts
        self._n = db.n_baskets

    @property
    def dimensions(self) -> tuple[int, ...]:
        """The dimension item ids, ascending."""
        return self._dimensions

    @property
    def n(self) -> int:
        """Total baskets the cube summarises."""
        return self._n

    @property
    def n_occupied(self) -> int:
        """Occupied full-pattern cells (at most min(n, 2^m))."""
        return len(self._counts)

    def count(self, pattern: dict[int, bool]) -> int:
        """Baskets matching a partial pattern (item -> present flag).

        Items absent from ``pattern`` are marginalised out — the GROUP BY
        semantics of a cube roll-up.
        """
        required_bits = 0
        care_mask = 0
        for item, present in pattern.items():
            j = self._position.get(item)
            if j is None:
                raise KeyError(f"item {item} is not a cube dimension")
            care_mask |= 1 << j
            if present:
                required_bits |= 1 << j
        total = 0
        for mask, count in self._counts.items():
            if mask & care_mask == required_bits:
                total += count
        return total

    def support_count(self, itemset: Itemset | Iterable[int]) -> int:
        """Baskets containing every item of ``itemset`` (all-present roll-up)."""
        return self.count({item: True for item in itemset})

    def table_for(self, itemset: Itemset) -> "ContingencyTable":
        """Roll the cube up into the contingency table of a sub-itemset.

        O(occupied cells); equivalent to
        :meth:`ContingencyTable.from_database` but without touching the
        database — the operation a cube-backed random walk performs at
        every step.
        """
        from repro.core.contingency import ContingencyTable

        positions = []
        for item in itemset:
            j = self._position.get(item)
            if j is None:
                raise KeyError(f"item {item} is not a cube dimension")
            positions.append(j)
        sub_counts: dict[int, int] = {}
        for mask, count in self._counts.items():
            cell = 0
            for new_j, j in enumerate(positions):
                if (mask >> j) & 1:
                    cell |= 1 << new_j
            sub_counts[cell] = sub_counts.get(cell, 0) + count
        return ContingencyTable(itemset, sub_counts, n=self._n)
