"""Rule measures: classic support/confidence family and cell-based support."""

from repro.measures.cellsupport import (
    AntiSupport,
    CellSupport,
    level1_pair_may_have_support,
)
from repro.measures.classic import (
    RuleStats,
    confidence,
    conviction,
    leverage,
    lift,
    rule_stats,
    support,
    support_count,
)
from repro.measures.interestingness import (
    all_confidence,
    cosine,
    jaccard,
    kulczynski,
    measure_catalog,
    odds_ratio,
    phi_coefficient,
)
from repro.measures.ranking import (
    rank_by_extremeness,
    rank_by_statistic,
    rank_by_support,
    rank_by_surprise,
    ranking_displacement,
)

__all__ = [
    "AntiSupport",
    "CellSupport",
    "level1_pair_may_have_support",
    "RuleStats",
    "confidence",
    "conviction",
    "leverage",
    "lift",
    "rule_stats",
    "support",
    "support_count",
    "all_confidence",
    "cosine",
    "jaccard",
    "kulczynski",
    "measure_catalog",
    "odds_ratio",
    "phi_coefficient",
    "rank_by_extremeness",
    "rank_by_statistic",
    "rank_by_support",
    "rank_by_surprise",
    "ranking_displacement",
]
