"""Classic support-confidence measures and their relatives.

These are the baseline the paper argues against (§1.1, §3.2): support
and confidence for rules ``antecedent => consequent``, plus the
correlation-flavoured descendants that this paper's interest measure
inspired (lift, leverage, conviction).  All operate on a
:class:`~repro.data.basket.BasketDatabase`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.itemsets import Itemset
from repro.data.basket import BasketDatabase

__all__ = [
    "support",
    "support_count",
    "confidence",
    "lift",
    "leverage",
    "conviction",
    "RuleStats",
    "rule_stats",
]


def support_count(db: BasketDatabase, itemset: Itemset) -> int:
    """Number of baskets containing every item of ``itemset``."""
    return db.support_count(itemset)


def support(db: BasketDatabase, itemset: Itemset) -> float:
    """Fraction of baskets containing ``itemset`` (classic, downward closed)."""
    return db.support(itemset)


def _disjoint_union(antecedent: Itemset, consequent: Itemset) -> Itemset:
    if antecedent & consequent:
        raise ValueError(
            f"antecedent {antecedent!r} and consequent {consequent!r} must be disjoint"
        )
    if len(antecedent) == 0 or len(consequent) == 0:
        raise ValueError("both rule sides must be non-empty")
    return antecedent | consequent


def confidence(db: BasketDatabase, antecedent: Itemset, consequent: Itemset) -> float:
    """P[consequent | antecedent], estimated from the database.

    Undefined (``nan``) when the antecedent never occurs.
    """
    union = _disjoint_union(antecedent, consequent)
    denominator = db.support_count(antecedent)
    if denominator == 0:
        return math.nan
    return db.support_count(union) / denominator


def lift(db: BasketDatabase, antecedent: Itemset, consequent: Itemset) -> float:
    """P[A and B] / (P[A] P[B]) — the paper's two-set dependence (§3.1).

    This is the single-cell interest of the all-present cell; > 1 means
    positive dependence, < 1 negative.
    """
    union = _disjoint_union(antecedent, consequent)
    n = db.n_baskets
    pa = db.support_count(antecedent) / n
    pb = db.support_count(consequent) / n
    if pa == 0.0 or pb == 0.0:
        return math.nan
    return (db.support_count(union) / n) / (pa * pb)


def leverage(db: BasketDatabase, antecedent: Itemset, consequent: Itemset) -> float:
    """P[A and B] - P[A] P[B] (Piatetsky-Shapiro's difference form)."""
    union = _disjoint_union(antecedent, consequent)
    n = db.n_baskets
    return db.support_count(union) / n - (
        db.support_count(antecedent) / n
    ) * (db.support_count(consequent) / n)


def conviction(db: BasketDatabase, antecedent: Itemset, consequent: Itemset) -> float:
    """P[A] P[not B] / P[A and not B].

    Infinite for a rule that never fails; 1 for independent sides.
    """
    union = _disjoint_union(antecedent, consequent)
    n = db.n_baskets
    pa = db.support_count(antecedent) / n
    pnb = 1.0 - db.support_count(consequent) / n
    pa_nb = pa - db.support_count(union) / n
    if pa_nb == 0.0:
        return math.inf if pa * pnb > 0 else math.nan
    return pa * pnb / pa_nb


@dataclass(frozen=True, slots=True)
class RuleStats:
    """All classic measures of one rule, computed in one place."""

    antecedent: Itemset
    consequent: Itemset
    support: float
    confidence: float
    lift: float
    leverage: float
    conviction: float

    def passes(self, min_support: float, min_confidence: float) -> bool:
        """The support-confidence framework's acceptance test (§1.1)."""
        return self.support >= min_support and self.confidence >= min_confidence


def rule_stats(db: BasketDatabase, antecedent: Itemset, consequent: Itemset) -> RuleStats:
    """Compute every classic measure for ``antecedent => consequent``."""
    union = _disjoint_union(antecedent, consequent)
    return RuleStats(
        antecedent=antecedent,
        consequent=consequent,
        support=db.support(union),
        confidence=confidence(db, antecedent, consequent),
        lift=lift(db, antecedent, consequent),
        leverage=leverage(db, antecedent, consequent),
        conviction=conviction(db, antecedent, consequent),
    )
