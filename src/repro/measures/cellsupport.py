"""The paper's cell-based support and anti-support (§4).

Classic support looks only at the all-present cell of the contingency
table, but correlation mining cares about *negative* dependence too, so
the paper redefines support: an itemset ``S`` has support ``s`` at the
``p%`` level when at least ``p%`` of the cells of its contingency table
have observed count ``>= s``.  With ``p`` a fraction (not an absolute
cell count) the measure is downward closed, so it can prune a level-wise
search.

The module also implements the special level-1 pruning the paper derives
for ``p > 0.25``: with more than a quarter of a 2x2 table's four cells
needing count ``s``, at least *two* cells must reach ``s``, and if
neither item occurs ``s`` times, only the both-absent cell can — so the
pair can be pruned from single-item counts alone.

Anti-support (only *rarely* occurring combinations are interesting) is
included as the paper sketches it for the fire-code example; §4 notes it
cannot be combined with the chi-squared test, which the miner enforces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.contingency import ContingencyTable

__all__ = [
    "CellSupport",
    "AntiSupport",
    "level1_pair_may_have_support",
]


@dataclass(frozen=True, slots=True)
class CellSupport:
    """Downward-closed cell-based support test.

    Attributes:
        count: the per-cell count threshold ``s`` (absolute number of
            baskets, as in Figure 1's "cells have count s").
        fraction: the fraction ``p`` of cells that must reach ``s``;
            must exceed 0.25 for the level-1 pruning to apply.
    """

    count: float
    fraction: float = 0.25 + 1e-9

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"support count must be non-negative, got {self.count}")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"support fraction must be in (0, 1], got {self.fraction}")

    def __call__(self, table: ContingencyTable) -> bool:
        """True when >= ``fraction`` of the cells have count >= ``count``.

        "At least p% of the cells": compared against the exact real
        threshold, counting a cell iff its count reaches s.
        """
        needed = self.fraction * table.n_cells
        return self.supported_cell_count(table) >= needed

    def supported_cell_count(self, table: ContingencyTable) -> int:
        """How many cells reach the count threshold (diagnostic)."""
        if self.count <= 0:
            # Every cell, occupied or not, trivially reaches a zero bar.
            return table.n_cells
        threshold = self.count
        return sum(1 for observed in table.nonzero_counts().values() if observed >= threshold)

    @property
    def enables_level1_pruning(self) -> bool:
        """Whether ``fraction > 0.25`` so pair-level pruning is sound."""
        return self.fraction > 0.25


@dataclass(frozen=True, slots=True)
class AntiSupport:
    """Anti-support: all co-occurrence cells must stay *below* a ceiling.

    An itemset passes when every cell with at least two items present
    has observed count <= ``ceiling`` — the combination is rare, like
    the fires of the paper's fire-code example.  Upward closed in the
    sense that making the itemset larger only splits cells further, but
    the paper notes it must not be combined with the chi-squared test
    (the approximation is invalid on rare events), and the miner refuses
    that combination.
    """

    ceiling: float

    def __post_init__(self) -> None:
        if self.ceiling < 0:
            raise ValueError(f"anti-support ceiling must be non-negative, got {self.ceiling}")

    def __call__(self, table: ContingencyTable) -> bool:
        for cell in table.occupied_cells():
            if bin(cell).count("1") >= 2 and table.observed(cell) > self.ceiling:
                return False
        return True


def level1_pair_may_have_support(
    count_a: float,
    count_b: float,
    n: float,
    support: CellSupport,
) -> bool:
    """The paper's special level-1 pruning test for a pair (§4).

    Sound only when ``support.fraction > 0.25``, i.e. at least two of
    the four cells of the pair's table must reach ``s``.  The four cell
    counts are bounded by::

        O(ab)   <= min(count_a, count_b)
        O(a~b)  <= min(count_a, n - count_b)
        O(~ab)  <= min(n - count_a, count_b)
        O(~a~b) <= min(n - count_a, n - count_b)

    If fewer than the required number of those bounds reach ``s``, no
    pair of these two items can be supported, and the candidate is
    pruned using only the level-1 counts.  This covers both directions
    the paper mentions: many rare items (the cells requiring presence
    are capped) *and* many very common items (the cells requiring
    absence are capped).

    Note: Figure 1's Step 3 prunes more aggressively — it requires
    ``O(ia) > s`` and ``O(ib) > s`` outright — which can discard pairs
    whose absence cells alone would satisfy ``p <= 0.5``.  We implement
    the sound bound-counting version derived in the running text of §4.
    """
    if not support.enables_level1_pruning:
        return True
    s = support.count
    absent_a = n - count_a
    absent_b = n - count_b
    bounds = (
        min(count_a, count_b),
        min(count_a, absent_b),
        min(absent_a, count_b),
        min(absent_a, absent_b),
    )
    achievable = sum(1 for bound in bounds if bound >= s)
    needed = support.fraction * 4
    return achievable >= needed
