"""A catalog of contingency-based interestingness measures (§6).

The paper's first item of future work: "identifying other measures and
rule types that capture patterns in data not already captured by
association rules and correlation rules."  The data-mining literature
answered with a zoo of measures, almost all of them functions of the
same 2x2 contingency table this library already builds.  This module
collects the classical ones, each computed from a
:class:`~repro.core.contingency.ContingencyTable` of a pair:

* :func:`phi_coefficient` — the signed correlation ``sqrt(chi2/n)``;
  its square times ``n`` is exactly the chi-squared statistic, making
  it the effect-size companion to the paper's significance test.
* :func:`odds_ratio` — ``(O11 O00)/(O10 O01)``, margin-insensitive.
* :func:`jaccard` — ``O11 / (n - O00)``, co-occurrence among baskets
  touching either item.
* :func:`cosine` — ``O11 / sqrt(r1 c1)``, the null-invariant geometric
  mean of the two confidences.
* :func:`all_confidence` — ``O11 / max(r1, c1)``, the minimum of the
  two confidences; downward closed, so it can prune like support.
* :func:`kulczynski` — the arithmetic mean of the two confidences.

Conventions: the *pair* table's cells are indexed as in
:mod:`repro.core.contingency` (bit 0 = first item present); ``r1`` and
``c1`` denote the two item marginals.  Degenerate denominators yield
``nan`` rather than raising, matching :mod:`repro.measures.classic`.
"""

from __future__ import annotations

import math

from repro.core.contingency import ContingencyTable

__all__ = [
    "phi_coefficient",
    "odds_ratio",
    "jaccard",
    "cosine",
    "all_confidence",
    "kulczynski",
    "measure_catalog",
]


def _pair_cells(table: ContingencyTable) -> tuple[float, float, float, float, float]:
    """(O11, O10_first_only, O01_second_only, O00, n) for a 2-item table."""
    if table.n_items != 2:
        raise ValueError(f"pair measures need a 2-item table, got {table.n_items}")
    return (
        table.observed(0b11),
        table.observed(0b01),  # first present, second absent
        table.observed(0b10),  # second present, first absent
        table.observed(0b00),
        table.n,
    )


def phi_coefficient(table: ContingencyTable) -> float:
    """The signed phi coefficient; ``n * phi^2`` is the chi-squared value.

    Positive for positive association, negative for negative; 0 at
    independence; ``nan`` when a marginal is degenerate.
    """
    o11, o10, o01, o00, n = _pair_cells(table)
    r1, r0 = o11 + o10, o01 + o00
    c1, c0 = o11 + o01, o10 + o00
    denominator = math.sqrt(r1 * r0 * c1 * c0)
    if denominator == 0.0:
        return math.nan
    return (o11 * o00 - o10 * o01) / denominator


def odds_ratio(table: ContingencyTable) -> float:
    """(O11 O00)/(O10 O01); inf for a never-failing association."""
    o11, o10, o01, o00, _ = _pair_cells(table)
    cross = o10 * o01
    if cross == 0.0:
        return math.nan if o11 * o00 == 0.0 else math.inf
    return (o11 * o00) / cross


def jaccard(table: ContingencyTable) -> float:
    """O11 over baskets containing at least one of the items."""
    o11, o10, o01, o00, n = _pair_cells(table)
    union = n - o00
    if union == 0.0:
        return math.nan
    return o11 / union


def cosine(table: ContingencyTable) -> float:
    """O11 / sqrt(r1 c1) — null-invariant (ignores O00 entirely)."""
    o11, o10, o01, _, _ = _pair_cells(table)
    r1 = o11 + o10
    c1 = o11 + o01
    if r1 == 0.0 or c1 == 0.0:
        return math.nan
    return o11 / math.sqrt(r1 * c1)


def all_confidence(table: ContingencyTable) -> float:
    """min of the two directional confidences; downward closed."""
    o11, o10, o01, _, _ = _pair_cells(table)
    larger = max(o11 + o10, o11 + o01)
    if larger == 0.0:
        return math.nan
    return o11 / larger


def kulczynski(table: ContingencyTable) -> float:
    """Arithmetic mean of the two directional confidences."""
    o11, o10, o01, _, _ = _pair_cells(table)
    r1 = o11 + o10
    c1 = o11 + o01
    if r1 == 0.0 or c1 == 0.0:
        return math.nan
    return 0.5 * (o11 / r1 + o11 / c1)


def measure_catalog(table: ContingencyTable) -> dict[str, float]:
    """All pair measures of this module, plus lift, at once."""
    o11, o10, o01, _, n = _pair_cells(table)
    r1 = o11 + o10
    c1 = o11 + o01
    lift = (o11 * n) / (r1 * c1) if r1 and c1 else math.nan
    return {
        "phi": phi_coefficient(table),
        "odds_ratio": odds_ratio(table),
        "jaccard": jaccard(table),
        "cosine": cosine(table),
        "all_confidence": all_confidence(table),
        "kulczynski": kulczynski(table),
        "lift": lift,
    }
