"""Ranking discovered rules (the Example 4 argument, as code).

Example 4 ends with an indictment of the traditional ranking: "A
traditional way to rank the statements is to favor the one with highest
support.  In this example, such a ranking leaves the first statement —
the one which the chi-squared test identified as dominant — in last
place."  This module provides the competing rank orders so an analyst
(or a test) can compare them directly:

* :func:`rank_by_support` — the traditional order, by the observed
  count of the rule's all-present cell;
* :func:`rank_by_statistic` — by chi-squared value (evidence strength);
* :func:`rank_by_extremeness` — by the major dependence's
  ``|I - 1| * sqrt(E)``, i.e. how sharply the dominant cell deviates;
* :func:`rank_by_surprise` — by how far the major dependence's interest
  is from 1 regardless of cell size, surfacing the rare-but-strong
  patterns support ranking buries.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.core.rules import CorrelationRule

__all__ = [
    "rank_by_support",
    "rank_by_statistic",
    "rank_by_extremeness",
    "rank_by_surprise",
    "ranking_displacement",
]


def rank_by_support(rules: Sequence[CorrelationRule]) -> list[CorrelationRule]:
    """Highest all-present-cell count first — the traditional ranking."""
    def all_present_count(rule: CorrelationRule) -> float:
        table = rule.table
        return table.observed(table.n_cells - 1)

    return sorted(rules, key=all_present_count, reverse=True)


def rank_by_statistic(rules: Sequence[CorrelationRule]) -> list[CorrelationRule]:
    """Largest chi-squared first."""
    return sorted(rules, key=lambda rule: rule.statistic, reverse=True)


def rank_by_extremeness(rules: Sequence[CorrelationRule]) -> list[CorrelationRule]:
    """Largest major-dependence chi-squared contribution first (§3.1)."""
    return sorted(
        rules, key=lambda rule: rule.major_dependence().extremeness, reverse=True
    )


def rank_by_surprise(rules: Sequence[CorrelationRule]) -> list[CorrelationRule]:
    """Most extreme interest ratio first, ignoring cell size.

    ``|log I(r)|`` of the major dependence: an impossible combination
    (I = 0) or a huge enrichment both rank high even when the counts
    involved are small — the patterns §5.1 finds most tellable.
    """

    def surprise(rule: CorrelationRule) -> float:
        interest = rule.major_dependence().interest
        if interest <= 0.0 or math.isinf(interest):
            return math.inf
        return abs(math.log(interest))

    return sorted(rules, key=surprise, reverse=True)


def ranking_displacement(
    ranking_a: Sequence[CorrelationRule], ranking_b: Sequence[CorrelationRule]
) -> float:
    """Mean absolute rank displacement between two orders of the same rules.

    0 means identical orders; larger values quantify how much two
    ranking philosophies disagree (Example 4's point scores > 0 between
    support order and chi-squared order).
    """
    if len(ranking_a) != len(ranking_b):
        raise ValueError("rankings must contain the same rules")
    position_b = {rule.itemset: index for index, rule in enumerate(ranking_b)}
    if len(position_b) != len(ranking_b):
        raise ValueError("rankings must not contain duplicate itemsets")
    total = 0
    for index, rule in enumerate(ranking_a):
        if rule.itemset not in position_b:
            raise ValueError("rankings must contain the same rules")
        total += abs(index - position_b[rule.itemset])
    return total / len(ranking_a) if ranking_a else 0.0
