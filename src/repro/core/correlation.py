"""The chi-squared correlation test on contingency tables.

Implements the paper's core statistic,

    chi2 = sum_r (O(r) - E[r])^2 / E[r],

both as the textbook full-table sum and in the *sparse* form derived in
Section 4,

    chi2 = sum_{r : O(r) != 0} O(r) (O(r) - 2 E[r]) / E[r]  +  n,

which only visits occupied cells and therefore costs
``O(min(n, 2^k))``.  The two forms are algebraically identical
(``sum_r E[r] = n``); a property test pins that down.

A :class:`CorrelationTest` bundles the statistic with the significance
decision at a cutoff (3.84 at the paper's 95% level for the 1-dof
tables) and with the rule-of-thumb validity diagnostics of §3.3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.contingency import ContingencyTable, ExpectedValueValidity
from repro.stats import chi2 as chi2_dist
from repro.stats.criticals import critical_value

__all__ = [
    "chi_squared_dense",
    "chi_squared_sparse",
    "chi_squared",
    "chi_squared_ignoring_small_cells",
    "CorrelationResult",
    "CorrelationTest",
    "RobustResult",
    "robust_independence_test",
]


def chi_squared_dense(table: ContingencyTable) -> float:
    """Full-table chi-squared sum over all ``2^k`` cells.

    The expected-value spectrum is built by doubling from the marginal
    probabilities — ``O(2^k)`` multiplications total instead of a
    k-multiplication :meth:`~ContingencyTable.expected` call per cell —
    with the factor order of the per-cell evaluation preserved exactly
    (the same precedent as :meth:`ContingencyTable.validity`), so the
    statistic is bit-identical to the naive sum.  Cells are visited in
    ascending index order, matching :func:`chi_squared_sparse`'s
    canonical summation order.

    Cells whose expected value is zero are skipped when their observed
    count is also zero (a structural zero — an item occurring in every
    basket or in none — contributes nothing); a positive observation
    with zero expectation is a degenerate table and raises.
    """
    expected_list = [float(table.n)]
    for p in table.marginal_probabilities():
        expected_list = [e * (1.0 - p) for e in expected_list] + [
            e * p for e in expected_list
        ]
    total = 0.0
    for cell, expected in enumerate(expected_list):
        observed = table.observed(cell)
        if expected == 0.0:
            if observed:
                raise ZeroDivisionError(
                    "observed count in a cell with zero expectation; "
                    "the independence model is degenerate for this table"
                )
            continue
        deviation = observed - expected
        total += deviation * deviation / expected
    return total


def chi_squared_sparse(table: ContingencyTable) -> float:
    """Occupied-cells-only chi-squared via the paper's massaged formula.

    Cells are visited in ascending index order: float addition is not
    associative, and the occupied-cell dict's insertion order differs
    between counting backends (bitmap closed forms, single-pass scans,
    datacube roll-ups, shard merges).  A canonical summation order keeps
    the statistic bit-identical across all of them — which the
    differential backend-equivalence suite asserts.
    """
    n = table.n
    probabilities = table.marginal_probabilities()
    k = len(probabilities)
    total = 0.0
    counts = table.nonzero_counts()
    for cell in sorted(counts):
        observed = counts[cell]
        expected = n
        for j in range(k):
            p = probabilities[j]
            expected *= p if (cell >> j) & 1 else 1.0 - p
        if expected == 0.0:
            raise ZeroDivisionError(
                "observed count in a cell with zero expectation; "
                "the independence model is degenerate for this table"
            )
        total += observed * (observed - 2.0 * expected) / expected
    # sum_r E[r] = n except for probability mass that the independence
    # model places on structurally impossible patterns; for tables built
    # from a real database the marginals make that mass zero.  The
    # rearranged sum can cancel to a tiny negative value for a perfectly
    # independent table; clamp it, the statistic is non-negative.
    return max(total + table.n, 0.0)


def chi_squared(table: ContingencyTable) -> float:
    """Chi-squared statistic, choosing the cheaper evaluation.

    Uses the sparse formula when the table has fewer occupied cells than
    total cells, exactly as the paper's ``O(min(n, 2^i))`` analysis
    prescribes.
    """
    if table.n_occupied < table.n_cells:
        return chi_squared_sparse(table)
    return chi_squared_dense(table)


def chi_squared_ignoring_small_cells(
    table: ContingencyTable, min_expected: float
) -> float:
    """Chi-squared restricted to cells with expectation >= ``min_expected``.

    Section 3.3's interim policy for tables that fail the rule-of-thumb
    validity check: "In the meantime, we merely ignore cells with small
    expected value", justified by a support argument — a correlation
    carried only by a cell whose expectation is below 1 involves events
    too rare to act on.  With ``min_expected = 0`` this is the plain
    statistic.  Note the same section's caveat: on adversarial data the
    truncation can skew results arbitrarily.
    """
    if min_expected < 0:
        raise ValueError(f"min_expected must be non-negative, got {min_expected}")
    total = 0.0
    for observed, expected in table.observed_expected():
        if expected < min_expected:
            continue
        if expected == 0.0:
            if observed:
                raise ZeroDivisionError(
                    "observed count in a cell with zero expectation; "
                    "the independence model is degenerate for this table"
                )
            continue
        deviation = observed - expected
        total += deviation * deviation / expected
    return total


@dataclass(frozen=True, slots=True)
class CorrelationResult:
    """Outcome of a chi-squared correlation test on one itemset.

    Attributes:
        statistic: the chi-squared value.
        cutoff: the critical value the statistic was compared against.
        correlated: ``statistic >= cutoff``.
        p_value: upper-tail probability of the statistic at 1 dof (the
            paper's binomial-table convention, Appendix A).
        validity: rule-of-thumb diagnostics of the approximation (§3.3).
    """

    statistic: float
    cutoff: float
    correlated: bool
    p_value: float
    validity: ExpectedValueValidity

    @property
    def reliable(self) -> bool:
        """Whether the chi-squared approximation can be trusted (§3.3)."""
        return self.validity.is_valid


class CorrelationTest:
    """Chi-squared correlation test at a fixed significance level.

    The paper treats every binary contingency table as having one degree
    of freedom (Appendix A: "no matter what k is, the chi-squared
    statistic has only one degree of freedom"), which is also what makes
    the test upward closed; ``df`` is exposed for the multinomial
    generalisation.

    >>> from repro.core.itemsets import Itemset
    >>> from repro.core.contingency import ContingencyTable
    >>> # Example 1 of the paper: tea (bit 0) and coffee (bit 1).
    >>> table = ContingencyTable.from_percentages(
    ...     Itemset([0, 1]), {0b11: 20, 0b01: 5, 0b10: 70, 0b00: 5}, n=100)
    >>> test = CorrelationTest(significance=0.95)
    >>> round(test(table).statistic, 2)
    3.7
    """

    __slots__ = ("significance", "df", "cutoff", "min_expected_cell")

    def __init__(
        self,
        significance: float = 0.95,
        df: int = 1,
        min_expected_cell: float = 0.0,
    ) -> None:
        if not 0.0 < significance < 1.0:
            raise ValueError(f"significance must be in (0, 1), got {significance}")
        if df < 1:
            raise ValueError(f"degrees of freedom must be >= 1, got {df}")
        if min_expected_cell < 0:
            raise ValueError(
                f"min_expected_cell must be non-negative, got {min_expected_cell}"
            )
        self.significance = significance
        self.df = df
        self.cutoff = critical_value(significance, df)
        # §3.3's interim policy: ignore cells below this expectation.
        self.min_expected_cell = min_expected_cell

    def statistic(self, table: ContingencyTable) -> float:
        """The chi-squared value of ``table``."""
        if self.min_expected_cell > 0.0:
            return chi_squared_ignoring_small_cells(table, self.min_expected_cell)
        return chi_squared(table)

    def __call__(self, table: ContingencyTable) -> CorrelationResult:
        """Run the full test: statistic, decision, p-value, validity."""
        stat = self.statistic(table)
        return CorrelationResult(
            statistic=stat,
            cutoff=self.cutoff,
            correlated=stat >= self.cutoff,
            p_value=chi2_dist.sf(stat, self.df),
            validity=table.validity(),
        )

    def is_correlated(self, table: ContingencyTable) -> bool:
        """Significance decision only (the hot path of the miner)."""
        return self.statistic(table) >= self.cutoff

    def __repr__(self) -> str:
        return f"CorrelationTest(significance={self.significance}, df={self.df})"


@dataclass(frozen=True, slots=True)
class RobustResult:
    """Outcome of :func:`robust_independence_test`.

    ``method`` records which test produced the decision: ``"chi2"``,
    ``"fisher"`` (2x2 exact), or ``"permutation"`` (Monte-Carlo exact
    for wider tables).
    """

    method: str
    p_value: float
    correlated: bool
    statistic: float | None
    validity: ExpectedValueValidity


def robust_independence_test(
    table: ContingencyTable,
    significance: float = 0.95,
    permutation_rounds: int = 1000,
    seed: int = 0,
) -> RobustResult:
    """Independence test that degrades gracefully on small expectations.

    Implements the escalation §3.3 wishes for: use chi-squared where its
    approximation is trustworthy (the Moore rule of thumb), otherwise
    fall back to an exact test — Fisher's conditional test for 2x2
    tables, a Monte-Carlo exact test for wider ones.
    """
    validity = table.validity()
    alpha = 1.0 - significance
    if validity.is_valid:
        test = CorrelationTest(significance=significance)
        result = test(table)
        return RobustResult(
            method="chi2",
            p_value=result.p_value,
            correlated=result.correlated,
            statistic=result.statistic,
            validity=validity,
        )
    if table.n_items == 2:
        from repro.stats.fisher import fisher_exact_2x2

        a = round(table.observed(0b11))
        b = round(table.observed(0b01))
        c = round(table.observed(0b10))
        d = round(table.observed(0b00))
        fisher = fisher_exact_2x2(a, b, c, d)
        return RobustResult(
            method="fisher",
            p_value=fisher.p_value,
            correlated=fisher.p_value <= alpha,
            statistic=None,
            validity=validity,
        )
    from repro.stats.exact import permutation_p_value

    permutation = permutation_p_value(table, rounds=permutation_rounds, seed=seed)
    return RobustResult(
        method="permutation",
        p_value=permutation.p_value,
        correlated=permutation.p_value <= alpha,
        statistic=permutation.observed_statistic,
        validity=validity,
    )
