"""The itemset lattice: levels, closure checks, brute-force search.

The paper frames correlation mining as a search over the lattice of
subsets of the item space (§2): significance is *upward closed*, support
is *downward closed*, and the itemsets of interest form a *border*
between the two regions.  This module provides the lattice-level
utilities the miners and the property tests share: level enumeration,
candidate joins, and brute-force closure verification on small
universes (the ground truth the fast algorithms are checked against).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from itertools import combinations

from repro.core.itemsets import Itemset

__all__ = [
    "level",
    "apriori_join",
    "all_subsets_satisfy",
    "is_upward_closed",
    "is_downward_closed",
    "minimal_satisfying",
]


def level(universe: Iterable[int], size: int) -> Iterator[Itemset]:
    """All itemsets of a given size over ``universe``, in sorted order."""
    items = sorted(set(universe))
    for combo in combinations(items, size):
        yield Itemset(combo)


def apriori_join(itemsets: Iterable[Itemset]) -> Iterator[Itemset]:
    """The classic level-wise join: merge i-itemsets sharing an (i-1)-prefix.

    Given the size-``i`` itemsets that passed the previous level, yields
    every size-``i+1`` itemset whose *two generating* subsets are in the
    input (the remaining subsets must be checked by the caller — the
    paper does exactly this against NOTSIG).  Each candidate is yielded
    once.
    """
    by_prefix: dict[tuple[int, ...], list[int]] = {}
    sizes = set()
    for itemset in itemsets:
        sizes.add(len(itemset))
        if len(sizes) > 1:
            raise ValueError("apriori_join requires itemsets of a single size")
        items = itemset.items
        by_prefix.setdefault(items[:-1], []).append(items[-1])
    for prefix, lasts in by_prefix.items():
        lasts.sort()
        for a, b in combinations(lasts, 2):
            yield Itemset._from_sorted(prefix + (a, b))


def all_subsets_satisfy(
    itemset: Itemset,
    members: Callable[[Itemset], bool],
    size: int | None = None,
) -> bool:
    """True when every subset of the given size (default: |S|-1) passes."""
    target = len(itemset) - 1 if size is None else size
    return all(members(subset) for subset in itemset.subsets(target))


def _all_itemsets(universe: Iterable[int]) -> Iterator[Itemset]:
    items = sorted(set(universe))
    for size in range(1, len(items) + 1):
        for combo in combinations(items, size):
            yield Itemset(combo)


def is_upward_closed(
    universe: Iterable[int], predicate: Callable[[Itemset], bool]
) -> bool:
    """Brute-force check that ``predicate`` is upward closed.

    Exponential in the universe size — intended for tests on small item
    spaces, where it verifies Theorem 1 empirically.
    """
    items = sorted(set(universe))
    for itemset in _all_itemsets(items):
        if predicate(itemset):
            for superset in itemset.immediate_supersets(items):
                if not predicate(superset):
                    return False
    return True


def is_downward_closed(
    universe: Iterable[int], predicate: Callable[[Itemset], bool]
) -> bool:
    """Brute-force check that ``predicate`` is downward closed (small universes)."""
    for itemset in _all_itemsets(universe):
        if predicate(itemset) and len(itemset) > 1:
            if not all(predicate(sub) for sub in itemset.immediate_subsets()):
                return False
    return True


def minimal_satisfying(
    universe: Iterable[int],
    predicate: Callable[[Itemset], bool],
    min_size: int = 1,
    max_size: int | None = None,
) -> list[Itemset]:
    """Brute-force the minimal itemsets satisfying an upward-closed predicate.

    The ground-truth border: an itemset is reported when it passes and
    no proper subset of size >= ``min_size`` passes.  Exponential;
    for tests and tiny datasets only.
    """
    items = sorted(set(universe))
    top = len(items) if max_size is None else min(max_size, len(items))
    satisfied: set[Itemset] = set()
    minimal: list[Itemset] = []
    for size in range(min_size, top + 1):
        for combo in combinations(items, size):
            itemset = Itemset(combo)
            has_satisfied_subset = any(
                sub in satisfied
                for k in range(min_size, size)
                for sub in itemset.subsets(k)
            )
            if has_satisfied_subset:
                satisfied.add(itemset)
                continue
            if predicate(itemset):
                satisfied.add(itemset)
                minimal.append(itemset)
    return sorted(minimal)
