"""Rendering and serialisation of mining output.

The paper communicates through a handful of table shapes — the 2x2
contingency tables of the worked examples, the pair listings of Tables
2-4, the per-level pruning counters of Table 5.  This module renders
each of them as plain text (what the CLI and the benchmark harness
print) and serialises rules and results to JSON-compatible dicts for
downstream tooling.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.core.contingency import ContingencyTable
from repro.core.interest import interest_table
from repro.core.itemsets import Itemset, ItemVocabulary
from repro.core.rules import CorrelationRule, format_cell

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.chi2support import LevelStats, MiningResult

__all__ = [
    "render_contingency_2x2",
    "render_contingency",
    "render_rules",
    "render_level_stats",
    "rule_to_dict",
    "mining_result_to_dict",
    "significance_summary",
]

# Surfaced with every batch of discoveries (Hämäläinen & Webb, arXiv
# 1405.1360): a per-test significance level does not control the number
# of false discoveries across a mining run that tests thousands of
# hypotheses.
_MULTIPLE_HYPOTHESIS_NOTE = (
    "each itemset is tested at the per-comparison level alpha; across "
    "hypotheses_tested tests, roughly expected_false_discoveries spurious "
    "correlations are expected by chance alone (see Hamalainen & Webb, "
    "arXiv:1405.1360). bonferroni_alpha is the per-test level that would "
    "bound the family-wise error rate at alpha."
)


def significance_summary(
    significance: float,
    hypotheses_tested: int,
    discoveries: int,
    cumulative_tests: int | None = None,
) -> dict[str, object]:
    """The multiple-hypothesis caveat attached to query responses.

    ``hypotheses_tested`` counts the chi-squared evaluations behind the
    current result; ``cumulative_tests`` (optional) counts evaluations
    across a service's whole lifetime of re-mines.  The expected number
    of false discoveries under the global null is ``alpha`` per test —
    the paper's per-itemset cutoff says nothing about the batch.
    """
    alpha = 1.0 - significance
    summary: dict[str, object] = {
        "significance": significance,
        "alpha": alpha,
        "hypotheses_tested": hypotheses_tested,
        "discoveries": discoveries,
        "expected_false_discoveries": hypotheses_tested * alpha,
        "bonferroni_alpha": alpha / hypotheses_tested if hypotheses_tested else alpha,
        "note": _MULTIPLE_HYPOTHESIS_NOTE,
    }
    if cumulative_tests is not None:
        summary["cumulative_tests"] = cumulative_tests
    return summary


def _names(itemset: Itemset, vocabulary: ItemVocabulary | None) -> list[str]:
    if vocabulary is not None:
        return list(vocabulary.decode(itemset))
    return [f"i{item}" for item in itemset]


def render_contingency_2x2(
    table: ContingencyTable, vocabulary: ItemVocabulary | None = None
) -> str:
    """The paper's 2x2 layout with row and column sums (Example 1).

    Rows are the first item (present, then absent), columns the second.
    """
    if table.n_items != 2:
        raise ValueError(f"need a 2-item table, got {table.n_items} items")
    a_name, b_name = _names(table.itemset, vocabulary)

    o = {
        (1, 1): table.observed(0b11),
        (1, 0): table.observed(0b01),
        (0, 1): table.observed(0b10),
        (0, 0): table.observed(0b00),
    }
    row_present = o[(1, 1)] + o[(1, 0)]
    row_absent = o[(0, 1)] + o[(0, 0)]
    col_present = o[(1, 1)] + o[(0, 1)]
    col_absent = o[(1, 0)] + o[(0, 0)]

    def fmt(value: float) -> str:
        return f"{value:g}"

    width = max(
        8,
        *(len(fmt(v)) for v in o.values()),
        len(fmt(table.n)),
        len(b_name) + 1,
        len(a_name) + 1,
    )
    header = f"{'':<{width}} {b_name:>{width}} {'~' + b_name:>{width}} {'sum':>{width}}"
    row1 = (
        f"{a_name:<{width}} {fmt(o[(1, 1)]):>{width}} {fmt(o[(1, 0)]):>{width}} "
        f"{fmt(row_present):>{width}}"
    )
    row2 = (
        f"{'~' + a_name:<{width}} {fmt(o[(0, 1)]):>{width}} {fmt(o[(0, 0)]):>{width}} "
        f"{fmt(row_absent):>{width}}"
    )
    totals = (
        f"{'sum':<{width}} {fmt(col_present):>{width}} {fmt(col_absent):>{width}} "
        f"{fmt(table.n):>{width}}"
    )
    return "\n".join((header, row1, row2, totals))


def render_contingency(
    table: ContingencyTable, vocabulary: ItemVocabulary | None = None
) -> str:
    """Generic per-cell listing: pattern, observed, expected, interest."""
    lines = [f"{'cell':<40} {'observed':>10} {'expected':>12} {'interest':>9}"]
    for cell in interest_table(table):
        label = format_cell(table.itemset, cell.pattern, vocabulary)
        interest_text = "nan" if math.isnan(cell.interest) else f"{cell.interest:.3f}"
        lines.append(
            f"[{label}]".ljust(40)
            + f" {cell.observed:>10g} {cell.expected:>12.2f} {interest_text:>9}"
        )
    return "\n".join(lines)


def render_rules(
    rules: Sequence[CorrelationRule],
    vocabulary: ItemVocabulary | None = None,
    limit: int | None = None,
) -> str:
    """Table 4-style listing: itemset, chi-squared, major dependence."""
    lines = [f"{'correlated items':<40} {'chi2':>10}  major dependence"]
    shown = rules if limit is None else rules[:limit]
    for rule in shown:
        names = " ".join(_names(rule.itemset, vocabulary))
        major = rule.major_dependence()
        cell = format_cell(rule.itemset, major.pattern, vocabulary)
        lines.append(
            f"{names:<40} {rule.statistic:>10.3f}  [{cell}] I={major.interest:.3f}"
        )
    hidden = len(rules) - len(shown)
    if hidden > 0:
        lines.append(f"... and {hidden} more")
    return "\n".join(lines)


def render_level_stats(stats: Sequence["LevelStats"]) -> str:
    """Table 5-style pruning counters."""
    header = (
        f"{'level':>5} {'itemsets':>16} {'|CAND|':>9} {'discards':>9} "
        f"{'|SIG|':>7} {'|NOTSIG|':>9}"
    )
    lines = [header, "-" * len(header)]
    for level in stats:
        lines.append(
            f"{level.level:>5} {level.lattice_itemsets:>16,} {level.candidates:>9} "
            f"{level.discarded:>9} {level.significant:>7} {level.not_significant:>9}"
        )
    return "\n".join(lines)


def rule_to_dict(
    rule: CorrelationRule, vocabulary: ItemVocabulary | None = None
) -> dict[str, object]:
    """JSON-compatible representation of one correlation rule."""
    major = rule.major_dependence()
    return {
        "items": _names(rule.itemset, vocabulary),
        "item_ids": list(rule.itemset.items),
        "chi_squared": rule.statistic,
        "p_value": rule.p_value,
        "cutoff": rule.result.cutoff,
        "minimal": rule.minimal,
        "reliable": rule.result.reliable,
        "major_dependence": {
            "pattern": list(major.pattern),
            "observed": major.observed,
            "expected": major.expected,
            "interest": None if math.isnan(major.interest) else major.interest,
        },
    }


def mining_result_to_dict(
    result: "MiningResult", vocabulary: ItemVocabulary | None = None
) -> dict[str, object]:
    """JSON-compatible representation of a full mining run."""
    return {
        "significance": result.significance,
        "support": {
            "count": result.support.count,
            "fraction": result.support.fraction,
        },
        "rules": [rule_to_dict(rule, vocabulary) for rule in result.rules],
        "levels": [
            {
                "level": level.level,
                "lattice_itemsets": level.lattice_itemsets,
                "candidates": level.candidates,
                "discarded": level.discarded,
                "significant": level.significant,
                "not_significant": level.not_significant,
            }
            for level in result.level_stats
        ],
        "supported_uncorrelated": [
            _names(itemset, vocabulary) for itemset in result.supported_uncorrelated
        ],
    }
