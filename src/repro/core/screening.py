"""Exhaustive pairwise correlation screening — Table 2 as an API.

Section 5.1's headline artifact is a *complete pairwise screen*: the
chi-squared value, significance decision, and four interest values for
every pair of items.  The miner produces only the significant ones;
analysts usually want the full matrix (the paper's census discussion
dwells as much on the NON-correlated pairs as on the correlated ones).

:func:`pairwise_screen` computes it directly from the database's
vertical bitmaps — one AND per pair — and returns row objects ready for
sorting, filtering, or rendering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations

from repro.core.contingency import ContingencyTable
from repro.core.correlation import chi_squared
from repro.core.itemsets import Itemset
from repro.data.basket import BasketDatabase
from repro.stats.criticals import critical_value

__all__ = ["PairScreen", "pairwise_screen"]


@dataclass(frozen=True, slots=True)
class PairScreen:
    """One row of a pairwise correlation screen (one Table 2 line).

    ``interests`` are ordered as the paper prints them:
    ``(I(ab), I(~a b), I(a ~b), I(~a ~b))``; degenerate cells yield
    ``nan``.
    """

    itemset: Itemset
    statistic: float
    correlated: bool
    interests: tuple[float, float, float, float]

    @property
    def most_extreme_interest(self) -> float:
        """The interest value farthest from 1 on the log scale.

        0 and inf are maximally extreme (impossible / exclusive cells).
        """

        def extremeness(value: float) -> float:
            if value <= 0.0 or math.isinf(value):
                return math.inf
            return abs(math.log(value))

        defined = [value for value in self.interests if not math.isnan(value)]
        if not defined:
            return math.nan
        return max(defined, key=extremeness)


def _interest(table: ContingencyTable, pattern: tuple[bool, bool]) -> float:
    cell = table.cell_of_pattern(pattern)
    expected = table.expected(cell)
    if expected == 0.0:
        return math.nan if table.observed(cell) == 0 else math.inf
    return table.observed(cell) / expected


def pairwise_screen(
    db: BasketDatabase,
    significance: float = 0.95,
    items: list[int] | None = None,
) -> list[PairScreen]:
    """Chi-squared + interest for every item pair (or a subset of items).

    Returns one :class:`PairScreen` per pair, in lexicographic item
    order.  Cost: one bitmap intersection per pair — the census's 45
    pairs take about a millisecond.
    """
    if db.n_baskets == 0:
        raise ValueError("cannot screen an empty database")
    universe = sorted(set(items)) if items is not None else list(db.vocabulary.ids())
    cutoff = critical_value(significance, 1)
    rows: list[PairScreen] = []
    for a, b in combinations(universe, 2):
        table = ContingencyTable.from_database(db, Itemset((a, b)))
        statistic = chi_squared(table)
        interests = (
            _interest(table, (True, True)),
            _interest(table, (False, True)),
            _interest(table, (True, False)),
            _interest(table, (False, False)),
        )
        rows.append(
            PairScreen(
                itemset=Itemset((a, b)),
                statistic=statistic,
                correlated=statistic >= cutoff,
                interests=interests,
            )
        )
    return rows
