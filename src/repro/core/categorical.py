"""Multi-valued (categorical) contingency tables — the §5.1 extension.

The paper collapses every census question to binary but notes what is
lost: "Because we have collapsed the answers 'does not drive' and
'carpools,' we cannot answer this question.  A non-collapsed chi-squared
table, with more than two rows and columns, could find finer-grained
dependency.  Support-confidence cannot easily handle multiple item
values."  Appendix A already supplies the theory — the statistic is the
same sum over cells, with ``(u1 - 1)(u2 - 1)...(uk - 1)`` degrees of
freedom.

:class:`CategoricalTable` implements that general case: k variables,
variable ``j`` taking ``u_j`` values, built from records (tuples of
category indices).  The chi-squared test then uses
:func:`repro.stats.chi2.ppf` at the multinomial degrees of freedom, and
per-cell interest carries over unchanged.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.stats import chi2 as chi2_dist
from repro.stats.chi2 import degrees_of_freedom

__all__ = ["CategoricalTable", "CategoricalResult", "categorical_chi_squared_test"]


class CategoricalTable:
    """A sparse k-dimensional contingency table over categorical variables.

    Cells are addressed by tuples of category indices, one per variable.
    Expected values come from the independence model on the observed
    marginals, exactly as in the binary case.
    """

    __slots__ = ("_cardinalities", "_counts", "_n", "_marginals")

    def __init__(self, cardinalities: Sequence[int]) -> None:
        if not cardinalities:
            raise ValueError("need at least one variable")
        for u in cardinalities:
            if u < 2:
                raise ValueError(f"each variable needs at least 2 categories, got {u}")
        self._cardinalities = tuple(cardinalities)
        self._counts: dict[tuple[int, ...], float] = {}
        self._n = 0.0
        self._marginals = [
            [0.0] * u for u in self._cardinalities
        ]  # per variable, per category

    @classmethod
    def from_records(
        cls, cardinalities: Sequence[int], records: Iterable[Sequence[int]]
    ) -> "CategoricalTable":
        """Count a stream of records (one category index per variable)."""
        table = cls(cardinalities)
        for record in records:
            table.add(record)
        return table

    def add(self, record: Sequence[int], count: float = 1.0) -> None:
        """Add ``count`` observations of ``record``."""
        key = tuple(record)
        if len(key) != len(self._cardinalities):
            raise ValueError(
                f"record has {len(key)} values for {len(self._cardinalities)} variables"
            )
        for value, cardinality in zip(key, self._cardinalities):
            if not 0 <= value < cardinality:
                raise ValueError(f"category {value} out of range (0..{cardinality - 1})")
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._counts[key] = self._counts.get(key, 0.0) + count
        self._n += count
        for j, value in enumerate(key):
            self._marginals[j][value] += count

    # -- shape -----------------------------------------------------------------

    @property
    def cardinalities(self) -> tuple[int, ...]:
        """Number of categories per variable."""
        return self._cardinalities

    @property
    def n(self) -> float:
        """Total observations."""
        return self._n

    @property
    def n_cells(self) -> int:
        """Total cells, prod(u_j)."""
        return math.prod(self._cardinalities)

    @property
    def df(self) -> int:
        """Degrees of freedom, (u1-1)(u2-1)...(uk-1) (Appendix A)."""
        return degrees_of_freedom(self._cardinalities)

    # -- observed / expected ----------------------------------------------------

    def observed(self, cell: Sequence[int]) -> float:
        """O(r) for a cell tuple."""
        return self._counts.get(tuple(cell), 0.0)

    def expected(self, cell: Sequence[int]) -> float:
        """E[r] under independence of the k variables."""
        if self._n == 0:
            raise ValueError("empty table")
        value = self._n
        for j, category in enumerate(cell):
            value *= self._marginals[j][category] / self._n
        return value

    def interest(self, cell: Sequence[int]) -> float:
        """I(r) = O(r)/E[r], as in the binary case (§3.1)."""
        expected = self.expected(cell)
        if expected == 0.0:
            return math.nan if self.observed(cell) == 0 else math.inf
        return self.observed(cell) / expected

    def occupied_cells(self) -> list[tuple[int, ...]]:
        """Cells with non-zero observed count, sorted."""
        return sorted(self._counts)

    def chi_squared(self) -> float:
        """The statistic via the sparse rearrangement (only occupied cells)."""
        if self._n == 0:
            raise ValueError("empty table")
        total = 0.0
        for cell, observed in self._counts.items():
            expected = self.expected(cell)
            if expected == 0.0:
                raise ZeroDivisionError("observed count in a zero-expectation cell")
            total += observed * (observed - 2.0 * expected) / expected
        return max(total + self._n, 0.0)


@dataclass(frozen=True, slots=True)
class CategoricalResult:
    """Outcome of the multinomial chi-squared test."""

    statistic: float
    df: int
    cutoff: float
    correlated: bool
    p_value: float


def categorical_chi_squared_test(
    table: CategoricalTable, significance: float = 0.95
) -> CategoricalResult:
    """Run the chi-squared independence test at the table's true dof."""
    if not 0.0 < significance < 1.0:
        raise ValueError(f"significance must be in (0, 1), got {significance}")
    statistic = table.chi_squared()
    df = table.df
    cutoff = chi2_dist.ppf(significance, df)
    return CategoricalResult(
        statistic=statistic,
        df=df,
        cutoff=cutoff,
        correlated=statistic >= cutoff,
        p_value=chi2_dist.sf(statistic, df),
    )
