"""Contingency tables over itemsets.

Section 3 of the paper views an itemset ``{i1..ik}`` through its
``2^k``-cell contingency table: cell ``r`` counts the baskets matching a
specific presence/absence pattern of the k items.  Expected cell values
are computed under the independence assumption,
``E[r] = n * prod_j E[r_j]/n``, from the single-item occurrence counts.

Cells are addressed by an integer in ``[0, 2^k)`` whose bit ``j`` (least
significant first) says whether the ``j``-th item of the (sorted)
itemset is *present*.  So for a pair, cell ``0b11`` is "both present"
and cell ``0b00`` is "neither".

Tables are stored sparsely — only occupied cells — which is what makes
the paper's ``O(min(n, 2^i))`` chi-squared evaluation possible.  Two
construction strategies are provided:

* :meth:`ContingencyTable.from_database` uses the database's vertical
  bitmaps and a superset Möbius inversion to obtain exact cell counts
  from ``2^k`` intersection popcounts (fast for the small itemsets a
  level-wise miner visits);
* :func:`count_tables_single_pass` implements the paper's alternative of
  one pass over the database per level, filling many tables at once.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.core.itemsets import Itemset
from repro.data.basket import BasketDatabase

__all__ = [
    "ContingencyTable",
    "ExpectedValueValidity",
    "count_cells",
    "count_tables_single_pass",
]

# Above this many items, the Möbius/bitmap construction (which touches
# all 2^k masks) gives way to a single sparse pass over the baskets.
_MAX_DENSE_ITEMS = 12


@dataclass(frozen=True, slots=True)
class ExpectedValueValidity:
    """Rule-of-thumb validity of the chi-squared approximation (§3.3).

    Statistics texts (Moore [22]) recommend trusting the chi-squared
    test only when every cell has expected value > 1 and at least 80% of
    cells have expected value > 5.
    """

    min_expected: float
    fraction_above_five: float

    @property
    def is_valid(self) -> bool:
        """True when the table passes both rule-of-thumb conditions."""
        return self.min_expected > 1.0 and self.fraction_above_five >= 0.8


class ContingencyTable:
    """A sparse ``2^k``-cell contingency table for one itemset.

    The table always covers the *whole* database, so the single-item
    marginals used for expectations are recoverable from the table
    itself and the counts sum to ``n``.
    """

    __slots__ = ("_itemset", "_n", "_counts", "_marginals")

    def __init__(
        self,
        itemset: Itemset,
        counts: Mapping[int, float],
        n: float | None = None,
    ) -> None:
        k = len(itemset)
        if k == 0:
            raise ValueError("a contingency table needs at least one item")
        n_cells = 1 << k
        cleaned: dict[int, float] = {}
        for cell, count in counts.items():
            if not 0 <= cell < n_cells:
                raise ValueError(f"cell index {cell} out of range for {k} items")
            if count < 0:
                raise ValueError(f"cell counts must be non-negative, got {count}")
            if count:
                cleaned[cell] = count
        total = sum(cleaned[cell] for cell in sorted(cleaned))
        if n is None:
            n = total
        elif total - n > 1e-9 * max(1.0, n):
            raise ValueError(f"cell counts sum to {total}, more than n={n}")
        if n <= 0:
            raise ValueError("the table must contain at least one observation")
        self._itemset = itemset
        self._n = n
        self._counts = cleaned
        marginals = [0.0] * k
        # Canonical cell order: the marginals are float sums, and the
        # mapping's insertion order is whatever the caller produced.
        for cell in sorted(cleaned):
            count = cleaned[cell]
            for j in range(k):
                if (cell >> j) & 1:
                    marginals[j] += count
        self._marginals: tuple[float, ...] = tuple(marginals)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_database(cls, db: BasketDatabase, itemset: Itemset) -> "ContingencyTable":
        """Exact cell counts for ``itemset`` over ``db``.

        Bypasses the public constructor's validation: counts produced by
        the counting kernels are sound by construction, and the table
        marginals are exactly the database item counts.  This is the
        miner's hottest allocation site.
        """
        counts = count_cells(db, itemset)
        table = object.__new__(cls)
        table._itemset = itemset
        table._n = db.n_baskets
        table._counts = counts
        table._marginals = tuple(float(db.item_count(i)) for i in itemset.items)
        return table

    @classmethod
    def _from_parts(
        cls,
        itemset: Itemset,
        occupied: dict[int, float],
        marginals: tuple[float, ...],
        n: float,
    ) -> "ContingencyTable":
        """Trusted assembly from precomputed parts — no validation, no copies.

        The hot construction path shared by every counting kernel:
        ``occupied`` must hold only non-zero cells and ``marginals`` must
        equal the per-item occurrence counts.  Callers own both
        invariants (they hold by construction for kernel output).
        """
        table = object.__new__(cls)
        table._itemset = itemset
        table._n = n
        table._counts = occupied
        table._marginals = marginals
        return table

    @classmethod
    def from_cell_counts(
        cls, itemset: Itemset, cells: Mapping[int, int], n: float
    ) -> "ContingencyTable":
        """Assemble a table from exact kernel counts over a whole database.

        The shared fast construction path behind the vectorized kernels
        and the parallel engine's shard merge: bypasses the validating
        constructor (counts from the counting kernels are sound by
        construction) and derives the marginals from the cells, so every
        backend produces identical tables.
        """
        k = len(itemset)
        occupied = {cell: count for cell, count in cells.items() if count}
        marginals = [0.0] * k
        # Kernel counts are integers (exact under any order), but summing
        # in canonical cell order keeps every backend's tables identical
        # even for float-valued inputs.
        for cell in sorted(occupied):
            count = occupied[cell]
            for j in range(k):
                if (cell >> j) & 1:
                    marginals[j] += count
        return cls._from_parts(itemset, occupied, tuple(marginals), n)

    @classmethod
    def from_percentages(
        cls,
        itemset: Itemset,
        percentages: Mapping[int, float],
        n: float = 100.0,
    ) -> "ContingencyTable":
        """Build a table from cell *percentages*, as the paper's examples do.

        ``percentages`` maps cell index to percent of baskets; counts are
        scaled so they sum to ``n``.
        """
        total = sum(percentages[cell] for cell in sorted(percentages))
        if total <= 0:
            raise ValueError("percentages must sum to a positive value")
        scale = n / total
        counts = {cell: pct * scale for cell, pct in percentages.items()}
        return cls(itemset, counts, n=n)

    # -- shape ----------------------------------------------------------------

    @property
    def itemset(self) -> Itemset:
        """The itemset this table describes."""
        return self._itemset

    @property
    def n(self) -> float:
        """Total number of observations (baskets)."""
        return self._n

    @property
    def n_items(self) -> int:
        """Number of items, i.e. table dimensionality k."""
        return len(self._itemset)

    @property
    def n_cells(self) -> int:
        """Total number of cells, ``2^k``."""
        return 1 << len(self._itemset)

    def cells(self) -> range:
        """All cell indices, occupied or not."""
        return range(self.n_cells)

    def occupied_cells(self) -> Iterator[int]:
        """Cell indices with a non-zero observed count, ascending."""
        return iter(sorted(self._counts))

    def nonzero_counts(self) -> Mapping[int, float]:
        """Read-only view of the occupied cells (cell -> observed count).

        The hot paths (chi-squared, cell support) iterate this directly
        rather than going through :meth:`observed` per cell.
        """
        return self._counts

    def marginal_probabilities(self) -> tuple[float, ...]:
        """p(i_j) for every itemset position, precomputed once."""
        n = self._n
        return tuple(m / n for m in self._marginals)

    @property
    def n_occupied(self) -> int:
        """Number of cells with a non-zero observed count."""
        return len(self._counts)

    def cell_pattern(self, cell: int) -> tuple[bool, ...]:
        """Presence flags of the cell, ordered like ``itemset.items``."""
        return tuple(bool((cell >> j) & 1) for j in range(self.n_items))

    def cell_of_pattern(self, pattern: Sequence[bool]) -> int:
        """Inverse of :meth:`cell_pattern`."""
        if len(pattern) != self.n_items:
            raise ValueError(
                f"pattern has {len(pattern)} flags for a {self.n_items}-item table"
            )
        cell = 0
        for j, present in enumerate(pattern):
            if present:
                cell |= 1 << j
        return cell

    # -- observed and expected -------------------------------------------------

    def observed(self, cell: int) -> float:
        """O(r): the observed count of a cell, always ``float``-typed.

        Empty cells return ``0.0`` (not the int ``0``) so callers of
        ``from_percentages`` tables — whose occupied counts are floats —
        see one consistent type across all cells.
        """
        if not 0 <= cell < self.n_cells:
            raise ValueError(f"cell index {cell} out of range")
        return float(self._counts.get(cell, 0.0))

    def marginal(self, position: int) -> float:
        """O(i_j): occurrences of the ``position``-th item of the itemset."""
        return self._marginals[position]

    def item_probability(self, position: int) -> float:
        """Estimated p(i_j) = O(i_j) / n."""
        return self._marginals[position] / self._n

    def expected(self, cell: int) -> float:
        """E[r] under full independence of the items (paper §3)."""
        if not 0 <= cell < self.n_cells:
            raise ValueError(f"cell index {cell} out of range")
        value = self._n
        for j in range(self.n_items):
            p = self._marginals[j] / self._n
            value *= p if (cell >> j) & 1 else 1.0 - p
        return value

    def observed_expected(self, occupied_only: bool = False) -> Iterator[tuple[float, float]]:
        """Yield ``(observed, expected)`` pairs over cells.

        With ``occupied_only`` the iteration is the sparse one the
        paper's massaged chi-squared formula needs.
        """
        cells = self.occupied_cells() if occupied_only else self.cells()
        for cell in cells:
            yield self.observed(cell), self.expected(cell)

    # -- diagnostics -----------------------------------------------------------

    def validity(self) -> ExpectedValueValidity:
        """Rule-of-thumb check for the chi-squared approximation (§3.3).

        Every expectation is a product of the k marginal factors, so the
        full ``2^k`` spectrum is built by doubling from the marginal
        probabilities — ``O(2^k)`` multiplications total instead of
        ``2^k`` Python :meth:`expected` calls of k multiplications each,
        and vectorized once the table is wide enough to amortise NumPy
        call overhead.  The factor order matches :meth:`expected`, so
        results are bit-identical to the per-cell evaluation.
        """
        n = self._n
        probabilities = self.marginal_probabilities()
        if self.n_cells >= 512:
            try:
                import numpy as np
            except ImportError:
                np = None
            if np is not None:
                expected = np.array([n], dtype=float)
                for p in probabilities:
                    expected = np.concatenate([expected * (1.0 - p), expected * p])
                return ExpectedValueValidity(
                    min_expected=float(expected.min()),
                    fraction_above_five=int((expected > 5.0).sum()) / self.n_cells,
                )
        expected_list = [float(n)]
        for p in probabilities:
            expected_list = [e * (1.0 - p) for e in expected_list] + [
                e * p for e in expected_list
            ]
        return ExpectedValueValidity(
            min_expected=min(expected_list),
            fraction_above_five=sum(1 for e in expected_list if e > 5.0) / self.n_cells,
        )

    def to_dense(self):
        """The table as a numpy array of shape ``(2,) * k``.

        Axis ``j`` corresponds to the ``j``-th item of the itemset;
        index 1 means present, 0 absent.
        """
        import numpy as np

        arr = np.zeros((2,) * self.n_items)
        for cell, count in self._counts.items():
            idx = tuple((cell >> j) & 1 for j in range(self.n_items))
            arr[idx] = count
        return arr

    def restrict(self, positions: Sequence[int]) -> "ContingencyTable":
        """Marginalise the table down to a subset of its items.

        ``positions`` index into the itemset; the result is the
        contingency table of the sub-itemset, obtained by summing out
        the dropped dimensions.  This is the paper's "merely restrict
        the range of r" operation, done without re-reading the database.
        """
        positions = sorted(set(positions))
        if not positions:
            raise ValueError("cannot restrict to zero items")
        if positions[-1] >= self.n_items:
            raise ValueError(f"position {positions[-1]} out of range")
        sub_items = Itemset(self._itemset[p] for p in positions)
        sub_counts: dict[int, float] = {}
        for cell, count in self._counts.items():
            sub_cell = 0
            for new_j, p in enumerate(positions):
                if (cell >> p) & 1:
                    sub_cell |= 1 << new_j
            sub_counts[sub_cell] = sub_counts.get(sub_cell, 0) + count
        return ContingencyTable(sub_items, sub_counts, n=self._n)

    def __repr__(self) -> str:
        return (
            f"ContingencyTable(itemset={self._itemset!r}, n={self._n}, "
            f"occupied={self.n_occupied}/{self.n_cells})"
        )


def count_cells(db: BasketDatabase, itemset: Itemset) -> dict[int, int]:
    """Exact sparse cell counts (cell index -> count) for one itemset.

    The shared counting kernel behind :meth:`ContingencyTable.from_database`
    and the sharded parallel engine (`repro.parallel`): narrow itemsets go
    through the bitmap/Möbius path, wide ones through one sparse scan.
    Counts cover the whole database, so they sum to ``db.n_baskets``.
    """
    if len(itemset) == 0:
        raise ValueError("a contingency table needs at least one item")
    if len(itemset) <= _MAX_DENSE_ITEMS:
        return _cells_by_moebius(db, itemset)
    return _cells_by_scan(db, itemset)


def _cells_pair(db: BasketDatabase, a: int, b: int) -> dict[int, int]:
    """Specialised pair counting: one bitmap AND, the rest by subtraction.

    This is the miner's hottest operation at level 2, so it bypasses the
    generic Möbius machinery.
    """
    n = db.n_baskets
    both = (db.item_bitmap(a) & db.item_bitmap(b)).bit_count()
    count_a = db.item_count(a)
    count_b = db.item_count(b)
    cells = {
        0b11: both,
        0b01: count_a - both,
        0b10: count_b - both,
        0b00: n - count_a - count_b + both,
    }
    return {cell: count for cell, count in cells.items() if count}


def _cells_triple(db: BasketDatabase, a: int, b: int, c: int) -> dict[int, int]:
    """Specialised triple counting: four ANDs + inclusion-exclusion."""
    n = db.n_baskets
    bm_a, bm_b, bm_c = db.item_bitmap(a), db.item_bitmap(b), db.item_bitmap(c)
    ab = bm_a & bm_b
    n_ab = ab.bit_count()
    n_ac = (bm_a & bm_c).bit_count()
    n_bc = (bm_b & bm_c).bit_count()
    n_abc = (ab & bm_c).bit_count()
    n_a, n_b, n_c = db.item_count(a), db.item_count(b), db.item_count(c)
    cells = {
        0b111: n_abc,
        0b011: n_ab - n_abc,
        0b101: n_ac - n_abc,
        0b110: n_bc - n_abc,
        0b001: n_a - n_ab - n_ac + n_abc,
        0b010: n_b - n_ab - n_bc + n_abc,
        0b100: n_c - n_ac - n_bc + n_abc,
        0b000: n - n_a - n_b - n_c + n_ab + n_ac + n_bc - n_abc,
    }
    return {cell: count for cell, count in cells.items() if count}


def _cells_by_moebius(db: BasketDatabase, itemset: Itemset) -> dict[int, int]:
    """Cell counts from subset supports via superset Möbius inversion.

    First computes ``g[m]`` = number of baskets containing all items of
    mask ``m`` (2^k popcounts over the item bitmaps, sharing work along
    a DFS), then inverts ``count[c] = sum_{m >= c} (-1)^{|m \\ c|} g[m]``
    in-place in ``O(k 2^k)``.  Sizes 2 and 3 — the bulk of any level-wise
    mine — take closed-form shortcuts.
    """
    items = itemset.items
    k = len(items)
    if k == 2:
        return _cells_pair(db, items[0], items[1])
    if k == 3:
        return _cells_triple(db, items[0], items[1], items[2])
    n_cells = 1 << k
    g = [0] * n_cells
    g[0] = db.n_baskets

    # DFS over masks: extend the running intersection one item at a time.
    # The stack holds (mask, bitmap-of-mask, next item position); a bitmap
    # of -1 stands for "all baskets" so the root never materialises it.
    stack: list[tuple[int, int, int]] = [(0, -1, 0)]
    while stack:
        mask, bitmap, start = stack.pop()
        for j in range(start, k):
            new_mask = mask | (1 << j)
            if bitmap == -1:
                new_bitmap = db.item_bitmap(items[j])
            else:
                new_bitmap = bitmap & db.item_bitmap(items[j])
            g[new_mask] = new_bitmap.bit_count()
            stack.append((new_mask, new_bitmap, j + 1))

    # In-place superset Möbius inversion.
    for j in range(k):
        bit = 1 << j
        for mask in range(n_cells):
            if not mask & bit:
                g[mask] -= g[mask | bit]
    return {cell: count for cell, count in enumerate(g) if count}


def _cells_by_scan(db: BasketDatabase, itemset: Itemset) -> dict[int, int]:
    """Cell counts by one sparse pass over the baskets.

    Only cells that actually occur are touched, so this works for
    itemsets far too wide for a dense table.  Cell 0 (all absent) is
    derived from the total rather than counted.
    """
    bit_of = {item: 1 << j for j, item in enumerate(itemset.items)}
    counts: dict[int, int] = {}
    seen = 0
    for basket in db:
        cell = 0
        for item in basket:
            bit = bit_of.get(item)
            if bit is not None:
                cell |= bit
        if cell:
            counts[cell] = counts.get(cell, 0) + 1
            seen += 1
    remainder = db.n_baskets - seen
    if remainder:
        counts[0] = remainder
    return counts


def count_tables_single_pass(
    db: BasketDatabase, itemsets: Iterable[Itemset]
) -> dict[Itemset, ContingencyTable]:
    """Build contingency tables for many itemsets in one database pass.

    This is the strategy §4 of the paper describes for a level-wise
    miner: "make one pass over the database at each level, constructing
    all the necessary contingency tables at once".  An inverted index
    from items to the candidate itemsets containing them confines the
    per-basket work to candidates the basket actually intersects; the
    all-absent cell is recovered from the total count afterwards.
    """
    itemsets = list(itemsets)
    bit_of: dict[Itemset, dict[int, int]] = {}
    by_item: dict[int, list[Itemset]] = {}
    for s in itemsets:
        bits = {item: 1 << j for j, item in enumerate(s.items)}
        bit_of[s] = bits
        for item in s:
            by_item.setdefault(item, []).append(s)

    counts: dict[Itemset, dict[int, int]] = {s: {} for s in itemsets}
    touched_total: dict[Itemset, int] = {s: 0 for s in itemsets}
    for basket in db:
        patterns: dict[Itemset, int] = {}
        for item in basket:
            for s in by_item.get(item, ()):
                patterns[s] = patterns.get(s, 0) | bit_of[s][item]
        # replint: disable=RPR003 -- integer increments only; addition is exact, order cannot change the counts
        for s, cell in patterns.items():
            table = counts[s]
            table[cell] = table.get(cell, 0) + 1
            touched_total[s] += 1

    n = db.n_baskets
    result: dict[Itemset, ContingencyTable] = {}
    for s in itemsets:
        cells = counts[s]
        remainder = n - touched_total[s]
        if remainder:
            cells[0] = remainder
        result[s] = ContingencyTable(s, cells, n=n)
    return result
