"""Rule objects: the mining outputs users consume.

A :class:`CorrelationRule` is the paper's output unit — a (minimal)
correlated itemset together with its chi-squared evidence and the
per-cell interest values that localise the dependence.  An
:class:`AssociationRule` is the support-confidence baseline's output,
kept for comparison experiments (Tables 3 vs 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.contingency import ContingencyTable
from repro.core.correlation import CorrelationResult
from repro.core.interest import CellInterest, interest_table, most_extreme_cell
from repro.core.itemsets import Itemset, ItemVocabulary

__all__ = ["CorrelationRule", "AssociationRule", "format_cell"]


def format_cell(
    itemset: Itemset,
    pattern: tuple[bool, ...],
    vocabulary: ItemVocabulary | None = None,
) -> str:
    """Render a contingency cell like the paper does: ``a ~b c``.

    Present items print as their name; absent items with a ``~`` prefix
    (the paper's overbar).  Without a vocabulary, ids print as ``i<id>``.
    """
    parts = []
    for item, present in zip(itemset.items, pattern):
        name = vocabulary.name_of(item) if vocabulary is not None else f"i{item}"
        parts.append(name if present else f"~{name}")
    return " ".join(parts)


@dataclass(frozen=True, slots=True)
class CorrelationRule:
    """A correlated itemset with its statistical evidence.

    Attributes:
        itemset: the correlated items.
        result: chi-squared statistic, cutoff, p-value, validity.
        table: the contingency table the decision was made on.
        minimal: True when no proper subset is correlated (border element).
    """

    itemset: Itemset
    result: CorrelationResult
    table: ContingencyTable = field(repr=False)
    minimal: bool = True

    @property
    def statistic(self) -> float:
        """The chi-squared value."""
        return self.result.statistic

    @property
    def p_value(self) -> float:
        """Upper-tail p-value at 1 dof."""
        return self.result.p_value

    def interests(self) -> list[CellInterest]:
        """Interest of every contingency cell (paper §3.1)."""
        return interest_table(self.table)

    def major_dependence(self) -> CellInterest:
        """The cell contributing most to chi-squared — the paper's
        "major dependence" column of Table 4."""
        return most_extreme_cell(self.table)

    def describe(self, vocabulary: ItemVocabulary | None = None) -> str:
        """One-line human-readable summary of the rule."""
        names = (
            " ".join(vocabulary.decode(self.itemset))
            if vocabulary is not None
            else " ".join(f"i{i}" for i in self.itemset)
        )
        major = self.major_dependence()
        cell = format_cell(self.itemset, major.pattern, vocabulary)
        return (
            f"{{{names}}}: chi2={self.statistic:.3f} (p={self.p_value:.3g}), "
            f"major dependence [{cell}] I={major.interest:.3f}"
        )


@dataclass(frozen=True, slots=True)
class AssociationRule:
    """A support-confidence rule ``antecedent => consequent`` (§1.1)."""

    antecedent: Itemset
    consequent: Itemset
    support: float
    confidence: float
    lift: float = math.nan

    def __post_init__(self) -> None:
        if self.antecedent & self.consequent:
            raise ValueError("rule sides must be disjoint")
        if len(self.antecedent) == 0 or len(self.consequent) == 0:
            raise ValueError("both rule sides must be non-empty")

    def passes(self, min_support: float, min_confidence: float) -> bool:
        """The support-confidence acceptance test."""
        return self.support >= min_support and self.confidence >= min_confidence

    def describe(self, vocabulary: ItemVocabulary | None = None) -> str:
        """One-line rendering, e.g. ``tea => coffee (s=0.20, c=0.80)``."""
        def names(itemset: Itemset) -> str:
            if vocabulary is not None:
                return " ".join(vocabulary.decode(itemset))
            return " ".join(f"i{i}" for i in itemset)

        text = f"{names(self.antecedent)} => {names(self.consequent)} "
        text += f"(s={self.support:.3f}, c={self.confidence:.3f}"
        if not math.isnan(self.lift):
            text += f", lift={self.lift:.3f}"
        return text + ")"
