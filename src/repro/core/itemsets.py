"""Itemsets and item vocabularies.

Items are represented internally as small non-negative integers (indices
into an :class:`ItemVocabulary`), which keeps itemsets compact and makes
contingency-table indexing a matter of bit arithmetic.  An
:class:`Itemset` is an immutable, hashable, canonically-ordered set of
item ids; it behaves like a sorted tuple for iteration and like a set for
algebra.

These are the atoms every other module builds on: baskets are sets of
items, contingency tables are indexed by presence/absence patterns of an
itemset, and the miners walk the lattice of itemsets.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from itertools import combinations

__all__ = ["Itemset", "ItemVocabulary", "empty_itemset"]


class Itemset:
    """An immutable set of item ids with a canonical (sorted) order.

    Supports the small algebra the mining algorithms need: union,
    difference, subset tests, and enumeration of sub- and supersets.
    Instances are hashable and totally ordered (lexicographically on the
    sorted item tuple), so they can key dicts and be sorted for stable
    output.

    >>> a = Itemset([3, 1])
    >>> b = Itemset([1])
    >>> b.issubset(a)
    True
    >>> list(a)
    [1, 3]
    >>> a | Itemset([7])
    Itemset(1, 3, 7)
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, items: Iterable[int] = ()) -> None:
        items = tuple(sorted(set(items)))
        for item in items:
            if not isinstance(item, int) or isinstance(item, bool):
                raise TypeError(f"item ids must be ints, got {item!r}")
            if item < 0:
                raise ValueError(f"item ids must be non-negative, got {item}")
        self._items: tuple[int, ...] = items
        self._hash = hash(items)

    @classmethod
    def _from_sorted(cls, items: tuple[int, ...]) -> "Itemset":
        """Internal fast constructor for already-sorted, validated tuples.

        The level-wise miners create millions of itemsets whose inputs
        are derived from existing (validated) itemsets; skipping the
        sort/validation there is a large constant-factor win.
        """
        itemset = object.__new__(cls)
        itemset._items = items
        itemset._hash = hash(items)
        return itemset

    # -- container protocol -------------------------------------------------

    @property
    def items(self) -> tuple[int, ...]:
        """The item ids in ascending order."""
        return self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[int]:
        return iter(self._items)

    def __contains__(self, item: object) -> bool:
        return item in self._items

    def __getitem__(self, index: int) -> int:
        return self._items[index]

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Itemset):
            return self._items == other._items
        return NotImplemented

    def __lt__(self, other: "Itemset") -> bool:
        if not isinstance(other, Itemset):
            return NotImplemented
        # Order primarily by size so that sorted output lists lattice
        # levels in order, then lexicographically for determinism.
        return (len(self._items), self._items) < (len(other._items), other._items)

    def __le__(self, other: "Itemset") -> bool:
        return self == other or self < other

    def __repr__(self) -> str:
        return f"Itemset({', '.join(map(str, self._items))})"

    # -- set algebra ----------------------------------------------------------

    def union(self, other: Iterable[int]) -> "Itemset":
        """Return the union of this itemset with ``other``."""
        return Itemset(self._items + tuple(other))

    __or__ = union

    def difference(self, other: Iterable[int]) -> "Itemset":
        """Return the items of ``self`` not present in ``other``."""
        removed = set(other)
        return Itemset(item for item in self._items if item not in removed)

    __sub__ = difference

    def intersection(self, other: Iterable[int]) -> "Itemset":
        """Return the items common to ``self`` and ``other``."""
        kept = set(other)
        return Itemset(item for item in self._items if item in kept)

    __and__ = intersection

    def add(self, item: int) -> "Itemset":
        """Return a new itemset with ``item`` added."""
        return Itemset(self._items + (item,))

    def remove(self, item: int) -> "Itemset":
        """Return a new itemset with ``item`` removed.

        Raises :class:`KeyError` if ``item`` is not present.
        """
        if item not in self._items:
            raise KeyError(item)
        return Itemset(i for i in self._items if i != item)

    def issubset(self, other: "Itemset | Iterable[int]") -> bool:
        """True when every item of ``self`` is in ``other``."""
        if isinstance(other, Itemset):
            other_items: frozenset[int] | tuple[int, ...] = other._items
            return set(self._items).issubset(other_items)
        return set(self._items).issubset(other)

    def issuperset(self, other: "Itemset | Iterable[int]") -> bool:
        """True when every item of ``other`` is in ``self``."""
        if isinstance(other, Itemset):
            return set(other._items).issubset(self._items)
        return set(other).issubset(self._items)

    # -- lattice neighbourhood --------------------------------------------

    def subsets(self, size: int | None = None) -> Iterator["Itemset"]:
        """Yield proper subsets, optionally restricted to a given size.

        Without ``size``, yields every proper subset including the empty
        itemset, in increasing-size order.
        """
        sizes: Sequence[int]
        if size is None:
            sizes = range(len(self._items))
        else:
            if size >= len(self._items):
                return
            sizes = (size,)
        for k in sizes:
            for combo in combinations(self._items, k):
                yield Itemset(combo)

    def immediate_subsets(self) -> Iterator["Itemset"]:
        """Yield the ``len(self)`` subsets obtained by dropping one item."""
        items = self._items
        for index in range(len(items)):
            yield Itemset._from_sorted(items[:index] + items[index + 1:])

    def immediate_supersets(self, universe: Iterable[int]) -> Iterator["Itemset"]:
        """Yield supersets obtained by adding one item from ``universe``."""
        present = set(self._items)
        for item in universe:
            if item not in present:
                yield self.add(item)


def empty_itemset() -> Itemset:
    """Return the empty itemset (the bottom of the lattice)."""
    return Itemset()


class ItemVocabulary:
    """A bidirectional mapping between item names and dense integer ids.

    The mining core works on integer item ids; user-facing data — census
    attribute names, words of a corpus, SKU strings — is registered here
    once and translated at the boundary.

    >>> vocab = ItemVocabulary()
    >>> vocab.add("tea")
    0
    >>> vocab.add("coffee")
    1
    >>> vocab.id_of("tea")
    0
    >>> vocab.name_of(1)
    'coffee'
    """

    __slots__ = ("_name_to_id", "_names")

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._name_to_id: dict[str, int] = {}
        self._names: list[str] = []
        for name in names:
            self.add(name)

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._name_to_id

    def add(self, name: str) -> int:
        """Register ``name`` (idempotent) and return its id."""
        existing = self._name_to_id.get(name)
        if existing is not None:
            return existing
        item_id = len(self._names)
        self._name_to_id[name] = item_id
        self._names.append(name)
        return item_id

    def id_of(self, name: str) -> int:
        """Return the id for ``name``; raises :class:`KeyError` if absent."""
        return self._name_to_id[name]

    def name_of(self, item_id: int) -> str:
        """Return the name for ``item_id``; raises :class:`IndexError` if absent."""
        if item_id < 0:
            raise IndexError(item_id)
        return self._names[item_id]

    def encode(self, names: Iterable[str]) -> Itemset:
        """Translate item names into an :class:`Itemset` of ids."""
        return Itemset(self.id_of(name) for name in names)

    def decode(self, itemset: Iterable[int]) -> tuple[str, ...]:
        """Translate item ids back into their names, in itemset order."""
        return tuple(self.name_of(item) for item in sorted(set(itemset)))

    def ids(self) -> range:
        """All registered item ids as a range (ids are dense)."""
        return range(len(self._names))
