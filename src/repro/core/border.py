"""The border of correlation (paper §2.2).

Because chi-squared significance is upward closed, the correlated
region of the itemset lattice is fully described by its *minimal*
elements: "we can list a set of itemsets such that every itemset above
(and including) the set in the item lattice possesses the property,
while every itemset below it does not."  :class:`Border` is that list —
an antichain of itemsets — with the queries a consumer of mining output
needs: is an itemset above/below the border, and is the antichain
well-formed.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.itemsets import Itemset

__all__ = ["Border"]


class Border:
    """An antichain of minimal itemsets representing an upward-closed set.

    Construction enforces minimality: adding an itemset that is a
    superset of a present element is a no-op, and adding a subset of
    present elements evicts them.  The result is the canonical border
    regardless of insertion order.
    """

    __slots__ = ("_elements", "_by_item")

    def __init__(self, elements: Iterable[Itemset] = ()) -> None:
        self._elements: set[Itemset] = set()
        # Inverted index item -> border elements containing it; makes
        # the dominance checks touch only related elements.
        self._by_item: dict[int, set[Itemset]] = {}
        for element in elements:
            self.add(element)

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Itemset]:
        return iter(sorted(self._elements))

    def __contains__(self, itemset: Itemset) -> bool:
        return itemset in self._elements

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Border):
            return self._elements == other._elements
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - borders are not dict keys
        return hash(frozenset(self._elements))

    def __repr__(self) -> str:
        return f"Border({sorted(self._elements)!r})"

    def _candidates_related_to(self, itemset: Itemset) -> set[Itemset]:
        related: set[Itemset] = set()
        for item in itemset:
            related |= self._by_item.get(item, set())
        return related

    def add(self, itemset: Itemset) -> bool:
        """Insert ``itemset``, maintaining the antichain invariant.

        Returns True when the border changed.  A superset of an existing
        element is ignored; subsets of ``itemset`` already present cause
        it to be ignored too (they dominate it); existing elements that
        are supersets of ``itemset`` are evicted.
        """
        if len(itemset) == 0:
            raise ValueError("the empty itemset cannot be a border element")
        if itemset in self._elements:
            return False
        related = self._candidates_related_to(itemset)
        for element in related:
            if element.issubset(itemset):
                return False
        evicted = [element for element in related if itemset.issubset(element)]
        for element in evicted:
            self._remove(element)
        self._elements.add(itemset)
        for item in itemset:
            self._by_item.setdefault(item, set()).add(itemset)
        return True

    def add_minimal(self, itemset: Itemset) -> None:
        """Insert an itemset the caller guarantees is antichain-safe.

        The level-wise miner only ever produces minimal correlated
        itemsets (a candidate's every subset sat in NOTSIG, so no border
        element is below it, and supersets of border elements are never
        generated), making the dominance scan of :meth:`add` pure
        overhead — quadratic once the border holds tens of thousands of
        elements, as on text corpora.  :meth:`validate` still checks the
        invariant after the fact; tests rely on that.
        """
        if len(itemset) == 0:
            raise ValueError("the empty itemset cannot be a border element")
        if itemset in self._elements:
            return
        self._elements.add(itemset)
        for item in itemset:
            self._by_item.setdefault(item, set()).add(itemset)

    def _remove(self, itemset: Itemset) -> None:
        self._elements.discard(itemset)
        for item in itemset:
            bucket = self._by_item.get(item)
            if bucket is not None:
                bucket.discard(itemset)

    def remove(self, itemset: Itemset) -> bool:
        """Remove a border element (a demotion); True when it was present.

        Removal trivially preserves the antichain invariant.  The
        incremental maintainer uses this when new evidence demotes a
        previously-correlated itemset back below the significance
        cutoff.
        """
        if itemset not in self._elements:
            return False
        self._remove(itemset)
        return True

    def diff(self, other: "Border") -> tuple[list[Itemset], list[Itemset]]:
        """``(promoted, demoted)`` relative to an older border, sorted.

        ``promoted`` are elements of ``self`` absent from ``other``
        (newly significant); ``demoted`` are elements of ``other``
        absent from ``self`` (no longer minimal or no longer
        significant).
        """
        promoted = sorted(self._elements - other._elements)
        demoted = sorted(other._elements - self._elements)
        return promoted, demoted

    def covers(self, itemset: Itemset) -> bool:
        """True when ``itemset`` is on or above the border.

        Equivalently: the upward-closed property holds for ``itemset``.
        """
        for element in self._candidates_related_to(itemset):
            if element.issubset(itemset):
                return True
        return False

    def is_minimal(self, itemset: Itemset) -> bool:
        """True when ``itemset`` is itself a border element."""
        return itemset in self._elements

    def elements(self) -> list[Itemset]:
        """The border elements, sorted (by size, then lexicographically)."""
        return sorted(self._elements)

    def levels(self) -> dict[int, list[Itemset]]:
        """Border elements grouped by itemset size."""
        grouped: dict[int, list[Itemset]] = {}
        for element in sorted(self._elements):
            grouped.setdefault(len(element), []).append(element)
        return grouped

    def validate(self) -> None:
        """Assert the antichain invariant; raises ValueError when broken."""
        elements = sorted(self._elements)
        for i, a in enumerate(elements):
            for b in elements[i + 1:]:
                if a.issubset(b) or b.issubset(a):
                    raise ValueError(f"border is not an antichain: {a!r} vs {b!r}")
