"""The interest measure (paper §3.1).

Dependence of a single contingency-table cell ``r`` is measured by

    I(r) = O(r) / E[r],

the ratio of observed to expected count.  Values above 1 indicate
positive dependence (the pattern occurs more often than independence
predicts), values below 1 negative dependence, and 0 an impossible
combination.  The cell with the most *extreme* interest — the one
maximising ``|I(r) - 1| * sqrt(E[r])`` — is exactly the cell
contributing most to the chi-squared value, so interest localises a
significant correlation to the pattern that drives it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.contingency import ContingencyTable

__all__ = ["CellInterest", "interest", "interest_table", "most_extreme_cell"]


@dataclass(frozen=True, slots=True)
class CellInterest:
    """Interest and chi-squared contribution of one cell."""

    cell: int
    pattern: tuple[bool, ...]
    observed: float
    expected: float
    interest: float
    chi2_contribution: float

    @property
    def direction(self) -> str:
        """``positive`` / ``negative`` / ``independent`` dependence."""
        if math.isclose(self.interest, 1.0, rel_tol=1e-12, abs_tol=1e-12):
            return "independent"
        return "positive" if self.interest > 1.0 else "negative"

    @property
    def extremeness(self) -> float:
        """|I(r) - 1| * sqrt(E[r]) — the square root of the cell's chi-squared contribution."""
        return abs(self.interest - 1.0) * math.sqrt(self.expected)


def interest(table: ContingencyTable, cell: int) -> float:
    """I(r) = O(r)/E[r] for one cell.

    A cell with zero expectation and zero observation has undefined
    interest; we return ``nan`` for it rather than raising, since such
    structural zeros legitimately occur for degenerate marginals.
    """
    observed = table.observed(cell)
    expected = table.expected(cell)
    if expected == 0.0:
        return math.nan if observed == 0 else math.inf
    return observed / expected


def interest_table(table: ContingencyTable) -> list[CellInterest]:
    """Interest of every cell, in cell-index order.

    Includes unoccupied cells — an interest of 0 ("impossible event") is
    one of the paper's most telling outputs, e.g. *veteran and more than
    3 children borne* in the census data.
    """
    results: list[CellInterest] = []
    for cell in table.cells():
        observed = table.observed(cell)
        expected = table.expected(cell)
        if expected == 0.0:
            value = math.nan if observed == 0 else math.inf
            contribution = math.nan if observed == 0 else math.inf
        else:
            value = observed / expected
            deviation = observed - expected
            contribution = deviation * deviation / expected
        results.append(
            CellInterest(
                cell=cell,
                pattern=table.cell_pattern(cell),
                observed=observed,
                expected=expected,
                interest=value,
                chi2_contribution=contribution,
            )
        )
    return results


def most_extreme_cell(table: ContingencyTable) -> CellInterest:
    """The cell with the largest chi-squared contribution.

    By the identity in §3.1 this is also the cell whose interest is
    farthest from 1 once scaled by sqrt(E[r]); the paper reads it as the
    "major dependence" of a correlated itemset (Table 4).
    """
    cells = [c for c in interest_table(table) if not math.isnan(c.chi2_contribution)]
    if not cells:
        raise ValueError("table has no cell with defined interest")
    return max(cells, key=lambda c: c.chi2_contribution)
