"""High-level mining API.

The friendly entry points a downstream user starts with: test one
itemset, mine a whole database, or compare the correlation framework
against support-confidence on the same data — the comparison the paper
runs in Examples 1 and 4.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.contingency import ContingencyTable
from repro.core.correlation import CorrelationTest
from repro.core.itemsets import Itemset
from repro.core.rules import AssociationRule, CorrelationRule
from repro.data.basket import BasketDatabase
from repro.measures.cellsupport import CellSupport

if TYPE_CHECKING:  # avoid a circular import; algorithms import core
    from repro.algorithms.chi2support import MiningResult
    from repro.obs import Telemetry

__all__ = ["correlation_rule", "mine_correlations", "FrameworkComparison", "compare_frameworks"]


def _resolve_itemset(db: BasketDatabase, items: Iterable[int | str]) -> Itemset:
    resolved: list[int] = []
    for item in items:
        if isinstance(item, str):
            resolved.append(db.vocabulary.id_of(item))
        else:
            resolved.append(item)
    return Itemset(resolved)


def correlation_rule(
    db: BasketDatabase,
    items: Iterable[int | str],
    significance: float = 0.95,
) -> CorrelationRule:
    """Test one itemset for correlation and package the evidence.

    ``items`` may mix item ids and names.  ``minimal`` is not checked
    here (a single-itemset query has no subset context); the miner sets
    it for discovered rules.

    >>> db = BasketDatabase.from_baskets(
    ...     [["tea", "coffee"]] * 20 + [["coffee"]] * 70 + [["tea"]] * 5 + [[]] * 5)
    >>> rule = correlation_rule(db, ["tea", "coffee"])
    >>> rule.result.correlated
    False
    """
    itemset = _resolve_itemset(db, items)
    if len(itemset) < 2:
        raise ValueError("correlation needs at least two items")
    table = ContingencyTable.from_database(db, itemset)
    test = CorrelationTest(significance=significance)
    return CorrelationRule(itemset=itemset, result=test(table), table=table, minimal=False)


def mine_correlations(
    db: BasketDatabase,
    significance: float = 0.95,
    support_count: float = 1,
    support_fraction: float = 0.26,
    max_level: int | None = None,
    counting: str = "bitmap",
    workers: int | None = None,
    cache_size: int = 256,
    telemetry: "Telemetry | None" = None,
    **kwargs: object,
) -> "MiningResult":
    """Mine all significant (supported, minimally correlated) itemsets.

    The main entry point; see :class:`ChiSquaredSupportMiner` for the
    advanced knobs reachable through ``kwargs``.  ``counting`` selects
    the table-counting backend (``"bitmap"``, ``"single_pass"``,
    ``"cube"``, the NumPy batch-sweep ``"vectorized"``, the sharded
    multi-process ``"parallel"``, whose shards themselves run the
    vectorized kernels when NumPy is available, or the
    candidate-generation-free FP-tree sweep ``"fptree"``); ``workers`` and
    ``cache_size`` configure the parallel engine and are ignored by the
    serial backends.

    ``telemetry`` (a :class:`repro.obs.Telemetry`) turns on the run's
    observability: hierarchical spans, mining metrics, and the Table-5
    run report, all reachable afterwards through the returned result's
    ``run_report()`` / ``render_telemetry()`` or the bundle itself.
    The default is the shared no-op bundle, which costs nearly nothing.
    """
    from repro.algorithms.chi2support import ChiSquaredSupportMiner

    miner = ChiSquaredSupportMiner(
        significance=significance,
        support=CellSupport(count=support_count, fraction=support_fraction),
        max_level=max_level,
        counting=counting,
        workers=workers,
        cache_size=cache_size,
        telemetry=telemetry,
        **kwargs,  # type: ignore[arg-type]
    )
    return miner.mine(db)


@dataclass(frozen=True, slots=True)
class FrameworkComparison:
    """Both frameworks' verdicts on one itemset, side by side."""

    correlation: CorrelationRule
    association_rules: tuple[AssociationRule, ...]

    @property
    def chi_squared(self) -> float:
        """The correlation framework's statistic."""
        return self.correlation.statistic

    def accepted_association_rules(
        self, min_support: float, min_confidence: float
    ) -> list[AssociationRule]:
        """The rules the support-confidence framework would report."""
        return [rule for rule in self.association_rules if rule.passes(min_support, min_confidence)]


def compare_frameworks(
    db: BasketDatabase,
    items: Iterable[int | str],
    significance: float = 0.95,
    min_confidence: float = 0.0,
) -> FrameworkComparison:
    """Run both frameworks on one itemset (the Examples 1 and 4 setup).

    Association rules are generated for every antecedent/consequent
    partition of the itemset; filter with
    :meth:`FrameworkComparison.accepted_association_rules`.
    """
    from repro.algorithms.apriori import apriori
    from repro.algorithms.rulegen import rules_for_itemset

    itemset = _resolve_itemset(db, items)
    rule = correlation_rule(db, itemset, significance=significance)
    frequencies = apriori(db, min_support_count=1, max_size=len(itemset))
    if itemset in frequencies:
        association = tuple(rules_for_itemset(frequencies, itemset, min_confidence))
    else:
        association = ()
    return FrameworkComparison(correlation=rule, association_rules=association)
