"""High-level mining API.

The friendly entry points a downstream user starts with: test one
itemset, mine a whole database, or compare the correlation framework
against support-confidence on the same data — the comparison the paper
runs in Examples 1 and 4.

This module also hosts the *incremental* mining layer the streaming
service builds on: :class:`IncrementalMiner` maintains the SIG/NOTSIG
border over an :class:`~repro.data.appendable.AppendableBasketDatabase`
across appends, recounting only what a delta of baskets can have
changed, while staying bit-identical to a cold batch re-mine of the
accumulated database at every generation (the differential property
suite in ``tests/service`` asserts exactly that).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.border import Border
from repro.core.contingency import ContingencyTable, count_tables_single_pass
from repro.core.correlation import CorrelationTest
from repro.core.itemsets import Itemset, ItemVocabulary
from repro.core.rules import AssociationRule, CorrelationRule
from repro.data.appendable import AppendableBasketDatabase, StagedAppend
from repro.data.basket import BasketDatabase
from repro.measures.cellsupport import CellSupport

if TYPE_CHECKING:  # avoid a circular import; algorithms import core
    from repro.algorithms.chi2support import MiningResult
    from repro.obs import Telemetry

__all__ = [
    "correlation_rule",
    "mine_correlations",
    "FrameworkComparison",
    "compare_frameworks",
    "AppendOutcome",
    "IncrementalMiner",
]


def _resolve_itemset(db: BasketDatabase, items: Iterable[int | str]) -> Itemset:
    resolved: list[int] = []
    for item in items:
        if isinstance(item, str):
            resolved.append(db.vocabulary.id_of(item))
        else:
            resolved.append(item)
    return Itemset(resolved)


def correlation_rule(
    db: BasketDatabase,
    items: Iterable[int | str],
    significance: float = 0.95,
) -> CorrelationRule:
    """Test one itemset for correlation and package the evidence.

    ``items`` may mix item ids and names.  ``minimal`` is not checked
    here (a single-itemset query has no subset context); the miner sets
    it for discovered rules.

    >>> db = BasketDatabase.from_baskets(
    ...     [["tea", "coffee"]] * 20 + [["coffee"]] * 70 + [["tea"]] * 5 + [[]] * 5)
    >>> rule = correlation_rule(db, ["tea", "coffee"])
    >>> rule.result.correlated
    False
    """
    itemset = _resolve_itemset(db, items)
    if len(itemset) < 2:
        raise ValueError("correlation needs at least two items")
    table = ContingencyTable.from_database(db, itemset)
    test = CorrelationTest(significance=significance)
    return CorrelationRule(itemset=itemset, result=test(table), table=table, minimal=False)


def mine_correlations(
    db: BasketDatabase,
    significance: float = 0.95,
    support_count: float = 1,
    support_fraction: float = 0.26,
    max_level: int | None = None,
    counting: str = "bitmap",
    workers: int | None = None,
    cache_size: int = 256,
    telemetry: "Telemetry | None" = None,
    **kwargs: object,
) -> "MiningResult":
    """Mine all significant (supported, minimally correlated) itemsets.

    The main entry point; see :class:`ChiSquaredSupportMiner` for the
    advanced knobs reachable through ``kwargs``.  ``counting`` selects
    the table-counting backend (``"bitmap"``, ``"single_pass"``,
    ``"cube"``, the NumPy batch-sweep ``"vectorized"``, the sharded
    multi-process ``"parallel"``, whose shards themselves run the
    vectorized kernels when NumPy is available, or the
    candidate-generation-free FP-tree sweep ``"fptree"``); ``workers`` and
    ``cache_size`` configure the parallel engine and are ignored by the
    serial backends.

    ``telemetry`` (a :class:`repro.obs.Telemetry`) turns on the run's
    observability: hierarchical spans, mining metrics, and the Table-5
    run report, all reachable afterwards through the returned result's
    ``run_report()`` / ``render_telemetry()`` or the bundle itself.
    The default is the shared no-op bundle, which costs nearly nothing.
    """
    from repro.algorithms.chi2support import ChiSquaredSupportMiner

    miner = ChiSquaredSupportMiner(
        significance=significance,
        support=CellSupport(count=support_count, fraction=support_fraction),
        max_level=max_level,
        counting=counting,
        workers=workers,
        cache_size=cache_size,
        telemetry=telemetry,
        **kwargs,  # type: ignore[arg-type]
    )
    return miner.mine(db)


@dataclass(frozen=True, slots=True)
class FrameworkComparison:
    """Both frameworks' verdicts on one itemset, side by side."""

    correlation: CorrelationRule
    association_rules: tuple[AssociationRule, ...]

    @property
    def chi_squared(self) -> float:
        """The correlation framework's statistic."""
        return self.correlation.statistic

    def accepted_association_rules(
        self, min_support: float, min_confidence: float
    ) -> list[AssociationRule]:
        """The rules the support-confidence framework would report."""
        return [rule for rule in self.association_rules if rule.passes(min_support, min_confidence)]


def compare_frameworks(
    db: BasketDatabase,
    items: Iterable[int | str],
    significance: float = 0.95,
    min_confidence: float = 0.0,
) -> FrameworkComparison:
    """Run both frameworks on one itemset (the Examples 1 and 4 setup).

    Association rules are generated for every antecedent/consequent
    partition of the itemset; filter with
    :meth:`FrameworkComparison.accepted_association_rules`.
    """
    from repro.algorithms.apriori import apriori
    from repro.algorithms.rulegen import rules_for_itemset

    itemset = _resolve_itemset(db, items)
    rule = correlation_rule(db, itemset, significance=significance)
    frequencies = apriori(db, min_support_count=1, max_size=len(itemset))
    if itemset in frequencies:
        association = tuple(rules_for_itemset(frequencies, itemset, min_confidence))
    else:
        association = ()
    return FrameworkComparison(correlation=rule, association_rules=association)


# -- incremental mining --------------------------------------------------------


class _PendingVocabulary:
    """The vocabulary surface of a database mid-append: just the id range."""

    __slots__ = ("_n_items",)

    def __init__(self, n_items: int) -> None:
        self._n_items = n_items

    def __len__(self) -> int:
        return self._n_items

    def ids(self) -> range:
        return range(self._n_items)


class _PendingView:
    """What the accumulated database *will* look like after the commit.

    The level-wise miner reads only aggregate state from its database
    when an engine does the counting — basket count, item count, and the
    per-item occurrence counts (the level-1 data).  All three are
    computed arithmetically from the pre-append database plus the staged
    delta, without mutating anything, so the whole decision cascade runs
    against the post-append world while the real database stays
    untouched and queryable.
    """

    __slots__ = ("n_baskets", "n_items", "vocabulary", "_item_counts")

    def __init__(self, n_baskets: int, n_items: int, item_counts: tuple[int, ...]) -> None:
        self.n_baskets = n_baskets
        self.n_items = n_items
        self.vocabulary = _PendingVocabulary(n_items)
        self._item_counts = item_counts

    def item_counts(self) -> tuple[int, ...]:
        return self._item_counts

    def item_count(self, item: int) -> int:
        return self._item_counts[item]


def _extract_cells(tables: dict[Itemset, ContingencyTable]) -> dict[Itemset, dict[int, int]]:
    """Exact integer cell counts out of a batch of kernel-built tables."""
    return {
        itemset: {int(cell): int(count) for cell, count in table.nonzero_counts().items()}
        for itemset, table in tables.items()
    }


class _IncrementalTableEngine:
    """Serves post-append contingency tables from cumulative cell counts.

    Injected into :class:`~repro.algorithms.chi2support.ChiSquaredSupportMiner`
    through the existing engine hook, so the *decision cascade* (support
    test, statistic, border updates, candidate join) is the batch
    miner's own code — the only thing incremental about the run is where
    the tables come from:

    * itemsets counted at the previous generation reuse their cached
      base cells and add the delta's cells (counted over the small
      delta-only database);
    * never-before-seen candidates are counted over the full accumulated
      base database once, then join the cache.

    All cells are exact integers and the merged table goes through
    :meth:`ContingencyTable.from_cell_counts` — the same canonical-order
    marginal derivation every batch backend uses — so the tables, and
    therefore every decision made on them, are bit-identical to a cold
    batch mine.
    """

    def __init__(
        self,
        view: _PendingView,
        base_db: BasketDatabase | None,
        delta_db: BasketDatabase,
        cached_cells: dict[Itemset, dict[int, int]],
        backend: str,
        workers: int | None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.db = view
        self._base_db = base_db
        self._delta_db = delta_db
        self._cached = cached_cells
        self._backend = backend
        self._workers = workers
        self._telemetry = telemetry
        self.new_cells: dict[Itemset, dict[int, int]] = {}
        self.served = 0
        self.recounted = 0

    def _count(
        self, db: BasketDatabase, itemsets: Sequence[Itemset]
    ) -> dict[Itemset, dict[int, int]]:
        """Count cells with the configured backend (all are bit-identical)."""
        if not itemsets:
            return {}
        backend = self._backend
        if backend == "single_pass":
            return _extract_cells(count_tables_single_pass(db, itemsets))
        if backend == "vectorized":
            from repro.kernels import count_tables_vectorized

            return _extract_cells(count_tables_vectorized(db, itemsets))
        if backend == "parallel":
            from repro.parallel import ParallelCountingEngine

            # Share the append's telemetry bundle so worker-side counters
            # merged by the pool land in this run's registry and /metrics.
            with ParallelCountingEngine(
                db, workers=self._workers, telemetry=self._telemetry
            ) as engine:
                return _extract_cells(engine.count_tables(itemsets))
        if backend == "fptree":
            from repro.fptree import FPTreePairEngine

            return _extract_cells(FPTreePairEngine(db).count_tables(itemsets))
        # bitmap and cube: per-candidate exact counting over the
        # vertical index (a delta-sized datacube would cost more than
        # it answers; the counts are identical either way).
        from repro.core.contingency import count_cells

        return {
            itemset: {int(c): int(v) for c, v in count_cells(db, itemset).items()}
            for itemset in itemsets
        }

    def count_tables(self, candidates: Sequence[Itemset]) -> dict[Itemset, ContingencyTable]:
        fresh = [c for c in candidates if c not in self._cached]
        delta_cells = self._count(self._delta_db, list(candidates))
        base_fresh: dict[Itemset, dict[int, int]] = {}
        if self._base_db is not None:
            base_items = self._base_db.n_items
            # Candidates containing brand-new items cannot be counted
            # over the base database (their ids exceed its index) and
            # don't need to be: a new item occurs in zero base baskets,
            # so the candidate's base cells are exactly the cells of its
            # old-item restriction.  Provisional ids always sort after
            # existing ids, so the restriction occupies the low bit
            # positions and the cell indices map across unchanged.
            inside = [c for c in fresh if not c.items or c.items[-1] < base_items]
            base_fresh = self._count(self._base_db, inside)
            base_n = self._base_db.n_baskets
            for candidate in fresh:
                if candidate in base_fresh:
                    continue
                old_items = tuple(i for i in candidate.items if i < base_items)
                if old_items:
                    from repro.core.contingency import count_cells

                    sub_cells = count_cells(self._base_db, Itemset(old_items))
                    base_fresh[candidate] = {
                        int(c): int(v) for c, v in sub_cells.items()
                    }
                else:
                    base_fresh[candidate] = {0: base_n}
        n = self.db.n_baskets
        tables: dict[Itemset, ContingencyTable] = {}
        for candidate in candidates:
            cached = self._cached.get(candidate)
            if cached is not None:
                base_cells = cached
                self.served += 1
            else:
                base_cells = base_fresh.get(candidate, {})
                self.recounted += 1
            merged = dict(base_cells)
            for cell, count in delta_cells.get(candidate, {}).items():
                merged[cell] = merged.get(cell, 0) + count
            self.new_cells[candidate] = merged
            tables[candidate] = ContingencyTable.from_cell_counts(candidate, merged, n)
        return tables


@dataclass(slots=True)
class AppendOutcome:
    """What one committed append changed.

    ``promoted``/``demoted`` are the border delta: itemsets that entered
    or left the SIG border at this generation.  ``tables_served`` /
    ``tables_recounted`` measure the incremental win — candidates whose
    base cells came from the cumulative cache versus a fresh count over
    the accumulated database.  ``result`` is the full post-append mining
    result (``None`` only while the database is still empty).
    """

    generation: int
    n_appended: int
    n_baskets: int
    n_items: int
    new_items: tuple[str, ...]
    touched_items: frozenset[int]
    promoted: list[Itemset] = field(default_factory=list)
    demoted: list[Itemset] = field(default_factory=list)
    tables_served: int = 0
    tables_recounted: int = 0
    hypotheses_tested: int = 0
    result: "MiningResult | None" = None


class IncrementalMiner:
    """Maintains mining state over an append-only database.

    Each :meth:`append` stages the delta, re-runs the Figure 1 decision
    cascade against a *pending view* of the grown database (serving
    tables incrementally — see :class:`_IncrementalTableEngine`), and
    only then commits the mutation.  A backend failure mid-append
    therefore leaves the previous generation fully intact and
    queryable.

    The maintained invariant, enforced by the differential property
    suite: after every append, :attr:`result` is bit-identical to
    ``mine_correlations`` run cold on the accumulated database with the
    same parameters and backend.

    >>> miner = IncrementalMiner(support_count=2, support_fraction=0.3)
    >>> outcome = miner.append([["tea", "coffee"]] * 45 + [["tea"]] * 5
    ...                        + [["coffee"]] * 25 + [[]] * 25)
    >>> [miner.db.vocabulary.decode(i) for i in outcome.promoted]
    [('tea', 'coffee')]
    >>> miner.append([["tea"], ["coffee", "milk"]]).generation
    2
    """

    def __init__(
        self,
        significance: float = 0.95,
        support_count: float = 1,
        support_fraction: float = 0.26,
        max_level: int | None = None,
        counting: str = "bitmap",
        workers: int | None = None,
        db: AppendableBasketDatabase | None = None,
        telemetry_factory: "Callable[[], Telemetry] | None" = None,
    ) -> None:
        from repro.algorithms.chi2support import ChiSquaredSupportMiner

        # Delegate backend-name validation to the canonical check so the
        # accepted set can never drift from the batch miner's.
        ChiSquaredSupportMiner(counting=counting)
        self.significance = significance
        self.support = CellSupport(count=support_count, fraction=support_fraction)
        self.max_level = max_level
        self.counting = counting
        self.workers = workers
        self.db = db if db is not None else AppendableBasketDatabase.empty()
        self._telemetry_factory = telemetry_factory
        self._cells: dict[Itemset, dict[int, int]] = {}
        self._result: "MiningResult | None" = None
        self._cumulative_tests = 0
        self._delta_vocab = ItemVocabulary()

    @property
    def generation(self) -> int:
        """The database generation (number of committed appends)."""
        return self.db.generation

    @property
    def result(self) -> "MiningResult | None":
        """The current mining result; ``None`` until data arrives."""
        return self._result

    @property
    def cumulative_tests(self) -> int:
        """Chi-squared evaluations performed across all generations."""
        return self._cumulative_tests

    @property
    def border(self) -> Border:
        """The current SIG border (empty before any data)."""
        return self._result.border if self._result is not None else Border()

    def _telemetry(self) -> "Telemetry":
        if self._telemetry_factory is not None:
            return self._telemetry_factory()
        from repro.obs import NULL_TELEMETRY

        return NULL_TELEMETRY

    def _delta_database(self, staged: StagedAppend) -> BasketDatabase:
        """The delta as a standalone database over the post-append id space."""
        while len(self._delta_vocab) < staged.new_k:
            self._delta_vocab.add(f"item{len(self._delta_vocab)}")
        return BasketDatabase(list(staged.baskets), self._delta_vocab)

    def append(
        self, baskets: Iterable[Iterable[str]] | Iterable[Iterable[int]], numeric: bool = False
    ) -> AppendOutcome:
        """Append baskets, update the border, and report what changed.

        Phase A (fallible, zero mutation): stage the delta, compute the
        pending aggregates, and run the full decision cascade with
        tables served incrementally.  Phase B (infallible): commit the
        staged delta and swap in the new cumulative state.  Any
        exception during phase A leaves the previous generation exactly
        as it was.
        """
        staged = self.db.stage_ids(baskets) if numeric else self.db.stage_named(baskets)  # type: ignore[arg-type]
        old_border = self.border
        if staged.n_new_baskets == 0:
            # Nothing can change: no baskets means no new items either.
            generation = self.db.commit(staged)
            return AppendOutcome(
                generation=generation,
                n_appended=0,
                n_baskets=self.db.n_baskets,
                n_items=self.db.n_items,
                new_items=(),
                touched_items=frozenset(),
                result=self._result,
            )

        # -- phase A: everything that can fail, against immutable state --
        new_n = staged.base_baskets + staged.n_new_baskets
        new_k = staged.new_k
        counts = list(self.db.item_counts()) + [0] * len(staged.new_names)
        for basket in staged.baskets:
            for item in basket:
                counts[item] += 1
        view = _PendingView(new_n, new_k, tuple(counts))
        telemetry = self._telemetry()
        engine = _IncrementalTableEngine(
            view,
            self.db if self.db.n_baskets else None,
            self._delta_database(staged),
            self._cells,
            self.counting,
            self.workers,
            telemetry=telemetry,
        )
        from repro.algorithms.chi2support import ChiSquaredSupportMiner

        miner = ChiSquaredSupportMiner(
            significance=self.significance,
            support=self.support,
            max_level=self.max_level,
            counting="parallel",
            engine=engine,
            telemetry=telemetry,
        )
        result = miner.mine(view)  # type: ignore[arg-type]

        # -- phase B: the infallible commit --
        generation = self.db.commit(staged)
        self._cells = engine.new_cells
        self._result = result
        promoted, demoted = result.border.diff(old_border)
        hypotheses = sum(
            stats.candidates - stats.discarded for stats in result.level_stats
        )
        self._cumulative_tests += hypotheses
        return AppendOutcome(
            generation=generation,
            n_appended=staged.n_new_baskets,
            n_baskets=self.db.n_baskets,
            n_items=self.db.n_items,
            new_items=staged.new_names,
            touched_items=staged.touched_items,
            promoted=promoted,
            demoted=demoted,
            tables_served=engine.served,
            tables_recounted=engine.recounted,
            hypotheses_tested=hypotheses,
            result=result,
        )
