"""Core: itemsets, contingency tables, the chi-squared correlation test,
interest, borders, and the high-level mining API."""

from repro.core.border import Border
from repro.core.categorical import (
    CategoricalResult,
    CategoricalTable,
    categorical_chi_squared_test,
)
from repro.core.contingency import (
    ContingencyTable,
    ExpectedValueValidity,
    count_tables_single_pass,
)
from repro.core.correlation import (
    CorrelationResult,
    CorrelationTest,
    RobustResult,
    chi_squared,
    chi_squared_dense,
    chi_squared_ignoring_small_cells,
    chi_squared_sparse,
    robust_independence_test,
)
from repro.core.interest import CellInterest, interest, interest_table, most_extreme_cell
from repro.core.itemsets import Itemset, ItemVocabulary, empty_itemset
from repro.core.mining import (
    FrameworkComparison,
    compare_frameworks,
    correlation_rule,
    mine_correlations,
)
from repro.core.report import (
    mining_result_to_dict,
    render_contingency,
    render_contingency_2x2,
    render_level_stats,
    render_rules,
    rule_to_dict,
)
from repro.core.rules import AssociationRule, CorrelationRule, format_cell
from repro.core.screening import PairScreen, pairwise_screen

__all__ = [
    "Border",
    "CategoricalResult",
    "CategoricalTable",
    "categorical_chi_squared_test",
    "ContingencyTable",
    "ExpectedValueValidity",
    "count_tables_single_pass",
    "CorrelationResult",
    "CorrelationTest",
    "RobustResult",
    "chi_squared",
    "chi_squared_dense",
    "chi_squared_ignoring_small_cells",
    "chi_squared_sparse",
    "robust_independence_test",
    "CellInterest",
    "interest",
    "interest_table",
    "most_extreme_cell",
    "Itemset",
    "ItemVocabulary",
    "empty_itemset",
    "FrameworkComparison",
    "compare_frameworks",
    "correlation_rule",
    "mine_correlations",
    "AssociationRule",
    "CorrelationRule",
    "format_cell",
    "PairScreen",
    "pairwise_screen",
    "mining_result_to_dict",
    "render_contingency",
    "render_contingency_2x2",
    "render_level_stats",
    "render_rules",
    "rule_to_dict",
]
