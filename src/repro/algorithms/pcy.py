"""The Park-Chen-Yu hash-based Apriori variant [24].

Section 4 compares the chi2-support algorithm against PCY: "Their
algorithm also uses hashing to construct a candidate set CAND, which
they then iterate over to verify the results ... Another difference is
we use perfect hashing while Park, Chen, and Yu allow collisions.  While
collisions reduce the effectiveness of pruning, they do not affect the
final result."

PCY augments the level-1 counting pass: every *pair* in every basket is
hashed into a fixed-size bucket array of counters.  A pair can only be
frequent if its bucket total reaches the support threshold, so at level
2 the candidate set is pruned by the bucket bitmap before any exact
counting happens.  Levels above 2 fall back to plain Apriori joins.

The final output is identical to Apriori's (a property test pins this);
only the candidate counts differ, which the result records so the
benchmarks can compare pruning power against the paper's perfect-hash
approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.algorithms.apriori import AprioriResult, AprioriLevelStats, apriori_join
from repro.core.itemsets import Itemset
from repro.data.basket import BasketDatabase

__all__ = ["PCYResult", "pcy"]


@dataclass(slots=True)
class PCYResult:
    """Apriori-compatible output plus PCY-specific pruning diagnostics."""

    counts: dict[Itemset, int]
    n_baskets: int
    min_support_count: int
    level_stats: list[AprioriLevelStats]
    n_buckets: int
    frequent_buckets: int
    pairs_pruned_by_buckets: int

    def to_apriori_result(self) -> AprioriResult:
        """View as a plain Apriori result (same frequent itemsets)."""
        return AprioriResult(
            counts=dict(self.counts),
            n_baskets=self.n_baskets,
            min_support_count=self.min_support_count,
            level_stats=list(self.level_stats),
        )


def _pair_bucket(a: int, b: int, n_buckets: int) -> int:
    """The PCY pair hash: cheap, fixed, collisions allowed by design."""
    return (a * 2_654_435_761 + b * 40_503) % n_buckets


def pcy(
    db: BasketDatabase,
    min_support_count: int,
    n_buckets: int = 1 << 16,
    max_size: int | None = None,
) -> PCYResult:
    """Mine frequent itemsets with PCY's bucket-filtered level 2.

    ``n_buckets`` trades memory for pruning power: more buckets mean
    fewer collisions and a candidate set closer to the true frequent
    pairs.
    """
    if min_support_count < 1:
        raise ValueError(f"min_support_count must be >= 1, got {min_support_count}")
    if n_buckets < 1:
        raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")

    counts: dict[Itemset, int] = {}
    stats: list[AprioriLevelStats] = []
    k = db.n_items
    from math import comb

    # Pass 1: item counts and the pair-bucket counters.
    buckets = [0] * n_buckets
    item_counts = list(db.item_counts())
    for basket in db:
        for a, b in combinations(basket, 2):
            buckets[_pair_bucket(a, b, n_buckets)] += 1

    frequent_items = [i for i in db.vocabulary.ids() if item_counts[i] >= min_support_count]
    for item in frequent_items:
        counts[Itemset([item])] = item_counts[item]
    stats.append(AprioriLevelStats(level=1, lattice_itemsets=k, candidates=k, frequent=len(frequent_items)))

    bucket_frequent = [count >= min_support_count for count in buckets]
    n_frequent_buckets = sum(bucket_frequent)

    # Level 2: Apriori candidates filtered through the bucket bitmap.
    pruned_by_buckets = 0
    level2: list[Itemset] = []
    candidates2 = 0
    for a, b in combinations(frequent_items, 2):
        if not bucket_frequent[_pair_bucket(a, b, n_buckets)]:
            pruned_by_buckets += 1
            continue
        candidates2 += 1
        count = db.support_count((a, b))
        if count >= min_support_count:
            pair = Itemset((a, b))
            counts[pair] = count
            level2.append(pair)
    stats.append(
        AprioriLevelStats(level=2, lattice_itemsets=comb(k, 2), candidates=candidates2, frequent=len(level2))
    )

    # Levels >= 3: plain Apriori.
    frequent_level = level2
    size = 3
    while frequent_level and (max_size is None or size <= max_size):
        frequent_set = set(frequent_level)
        candidates = [
            candidate
            for candidate in apriori_join(frequent_level)
            if all(subset in frequent_set for subset in candidate.immediate_subsets())
        ]
        next_level: list[Itemset] = []
        for candidate in candidates:
            count = db.support_count(candidate)
            if count >= min_support_count:
                counts[candidate] = count
                next_level.append(candidate)
        stats.append(
            AprioriLevelStats(
                level=size,
                lattice_itemsets=comb(k, size),
                candidates=len(candidates),
                frequent=len(next_level),
            )
        )
        frequent_level = next_level
        size += 1

    return PCYResult(
        counts=counts,
        n_baskets=db.n_baskets,
        min_support_count=min_support_count,
        level_stats=stats,
        n_buckets=n_buckets,
        frequent_buckets=n_frequent_buckets,
        pairs_pruned_by_buckets=pruned_by_buckets,
    )
