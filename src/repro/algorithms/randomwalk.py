"""Random-walk border discovery (paper §2.1, §4, §6).

The paper repeatedly points at "random walk algorithms" [14] as the
non-level-wise alternative: "a given walk can stop as soon as it crosses
the border.  It can then do a local analysis of the border near the
crossing."  This module implements that idea for the correlation border.

Each walk starts from a random supported pair and adds random items one
at a time, staying inside the supported region (support is downward
closed, so an unsupported set ends the walk — nothing above it can be
significant).  The moment the walk crosses into correlated territory
(correlation is upward closed), it has an itemset on or above the
border; a greedy downward pass then removes items while correlation
persists, landing on a *minimal* correlated itemset.  Upward closure
guarantees greedy minimisation is exact: if no immediate subset is
correlated, no subset is.

Because walks sample the border rather than sweep it, the algorithm
also supports the pruning §4 says a level-wise search cannot do:
discarding itemsets with *very high* chi-squared values ("probably so
obvious as to be uninteresting"), a criterion that is not downward
closed.  Anti-support pruning (not usable with chi-squared) is likewise
accepted here when paired with a plain frequency walk, but refused with
the chi-squared statistic, mirroring §4.

Section 6 notes the walk "has a natural implementation in terms of a
datacube of the count values for contingency tables"; pass a
:class:`~repro.data.datacube.CountDatacube` as ``cube`` and every
table along a walk becomes a roll-up with no database access.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.border import Border
from repro.core.contingency import ContingencyTable
from repro.core.correlation import CorrelationTest
from repro.core.itemsets import Itemset
from repro.core.rules import CorrelationRule
from repro.data.basket import BasketDatabase
from repro.measures.cellsupport import CellSupport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.datacube import CountDatacube

__all__ = ["RandomWalkResult", "RandomWalkMiner"]


@dataclass(slots=True)
class RandomWalkResult:
    """Minimal correlated itemsets found by sampling walks.

    Unlike the level-wise miner, coverage is probabilistic: ``border``
    contains the minimal correlated itemsets *discovered*, a subset of
    the true border that grows with ``n_walks``.
    """

    rules: list[CorrelationRule]
    border: Border
    walks: int
    crossings: int
    dead_ends: int


class RandomWalkMiner:
    """Monte-Carlo border search for significant itemsets.

    Attributes:
        test: the correlation test defining the border.
        support: cell-based support confining the walkable region.
        n_walks: number of independent walks.
        max_steps: per-walk cap on upward steps.
        max_statistic: optional ceiling — crossings with a chi-squared
            value above it are dropped as "so obvious as to be
            uninteresting" (§4).
        seed: RNG seed; walks are deterministic given the seed.
    """

    def __init__(
        self,
        test: CorrelationTest | None = None,
        support: CellSupport | None = None,
        n_walks: int = 200,
        max_steps: int = 10,
        max_statistic: float | None = None,
        seed: int = 0,
        cube: "CountDatacube | None" = None,
    ) -> None:
        if n_walks < 1:
            raise ValueError(f"n_walks must be >= 1, got {n_walks}")
        if max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        self.test = test if test is not None else CorrelationTest()
        self.support = support if support is not None else CellSupport(count=1, fraction=0.26)
        self.n_walks = n_walks
        self.max_steps = max_steps
        self.max_statistic = max_statistic
        self.seed = seed
        self.cube = cube

    def _table(self, db: BasketDatabase, itemset: Itemset) -> ContingencyTable:
        if self.cube is not None:
            return self.cube.table_for(itemset)
        return ContingencyTable.from_database(db, itemset)

    def _minimise(self, db: BasketDatabase, itemset: Itemset) -> Itemset:
        """Greedy downward pass: drop items while correlation persists."""
        current = itemset
        improved = True
        while improved and len(current) > 2:
            improved = False
            for subset in current.immediate_subsets():
                if self.test.is_correlated(self._table(db, subset)):
                    current = subset
                    improved = True
                    break
        return current

    def mine(self, db: BasketDatabase) -> RandomWalkResult:
        """Run ``n_walks`` walks and return the sampled border."""
        if db.n_baskets == 0:
            raise ValueError("cannot mine an empty database")
        rng = random.Random(self.seed)
        if self.cube is not None:
            # Cube-backed walks stay inside the cube's dimensions.
            universe = list(self.cube.dimensions)
        else:
            universe = list(db.vocabulary.ids())
        if len(universe) < 2:
            raise ValueError("need at least two items to walk")

        border = Border()
        rules: dict[Itemset, CorrelationRule] = {}
        crossings = 0
        dead_ends = 0

        for _ in range(self.n_walks):
            a, b = rng.sample(universe, 2)
            current = Itemset((a, b))
            for _ in range(self.max_steps):
                table = self._table(db, current)
                if not self.support(table):
                    dead_ends += 1
                    break
                if self.test.is_correlated(table):
                    crossings += 1
                    minimal = self._minimise(db, current)
                    minimal_table = self._table(db, minimal)
                    result = self.test(minimal_table)
                    if (
                        self.max_statistic is not None
                        and result.statistic > self.max_statistic
                    ):
                        break
                    if self.support(minimal_table) and minimal not in rules:
                        rules[minimal] = CorrelationRule(
                            itemset=minimal,
                            result=result,
                            table=minimal_table,
                            minimal=True,
                        )
                        border.add(minimal)
                    break
                remaining = [item for item in universe if item not in current]
                if not remaining:
                    dead_ends += 1
                    break
                current = current.add(rng.choice(remaining))
            else:
                dead_ends += 1

        ordered = [rules[itemset] for itemset in sorted(rules)]
        return RandomWalkResult(
            rules=ordered,
            border=border,
            walks=self.n_walks,
            crossings=crossings,
            dead_ends=dead_ends,
        )
