"""Toivonen's sampling algorithm for frequent itemsets [29].

The paper's related work leans on Toivonen (VLDB'96): mine a random
sample of the database at a *lowered* support threshold, then verify the
sample's frequent itemsets — together with their **negative border** —
against the full database in a single pass.  If no negative-border
itemset turns out to be globally frequent, the result is provably
complete; otherwise the misses are reported so the caller can rerun
with a larger sample (the original paper's fallback).

The negative border is the set of minimal itemsets *not* frequent in
the sample — every itemset whose proper subsets are all sample-frequent
but which is not itself.  Any globally-frequent itemset missed by the
sample must have an ancestor in the negative border, which is what makes
checking it sufficient.

This complements the other baselines (Apriori, PCY) and exercises the
same downward-closure machinery the chi2-support miner builds on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.algorithms.apriori import apriori
from repro.core.itemsets import Itemset
from repro.core.lattice import apriori_join
from repro.data.basket import BasketDatabase

__all__ = ["SamplingResult", "toivonen_sample_mine", "negative_border"]


def negative_border(
    frequent: set[Itemset], n_items: int, max_size: int | None = None
) -> set[Itemset]:
    """Minimal itemsets not in ``frequent`` (all proper subsets are).

    Singletons outside ``frequent`` are in the border by definition
    (their only proper subset, the empty set, is trivially frequent).
    """
    border: set[Itemset] = set()
    for item in range(n_items):
        singleton = Itemset([item])
        if singleton not in frequent:
            border.add(singleton)

    by_size: dict[int, list[Itemset]] = {}
    for itemset in sorted(frequent):
        by_size.setdefault(len(itemset), []).append(itemset)

    top = max(by_size) if by_size else 0
    if max_size is not None:
        top = min(top, max_size - 1)
    for size in range(1, top + 1):
        level = by_size.get(size, [])
        for candidate in apriori_join(level):
            if candidate in frequent:
                continue
            if all(subset in frequent for subset in candidate.immediate_subsets()):
                border.add(candidate)
    return border


@dataclass(slots=True)
class SamplingResult:
    """Output of one sampling round.

    ``frequent`` holds the itemsets verified frequent on the FULL
    database with their exact counts.  ``misses`` are negative-border
    itemsets that turned out to be globally frequent: when non-empty the
    result may be incomplete and the caller should enlarge the sample.
    """

    frequent: dict[Itemset, int]
    misses: list[Itemset]
    sample_size: int
    sample_threshold: float
    candidates_verified: int

    @property
    def complete(self) -> bool:
        """True when the sampling guarantee held (no misses)."""
        return not self.misses


def toivonen_sample_mine(
    db: BasketDatabase,
    min_support: float,
    sample_fraction: float = 0.2,
    lowering: float = 0.8,
    max_size: int | None = None,
    seed: int = 0,
) -> SamplingResult:
    """One round of Toivonen's algorithm.

    Args:
        db: the full database.
        min_support: the target (relative) support threshold.
        sample_fraction: fraction of baskets drawn (with replacement,
            as in the original analysis).
        lowering: the sample threshold is ``lowering * min_support`` —
            below 1 to reduce the probability of misses.
        max_size: optional cap on itemset size.
        seed: sampling RNG seed (deterministic results).
    """
    if not 0.0 < min_support <= 1.0:
        raise ValueError(f"min_support must be in (0, 1], got {min_support}")
    if not 0.0 < sample_fraction <= 1.0:
        raise ValueError(f"sample_fraction must be in (0, 1], got {sample_fraction}")
    if not 0.0 < lowering <= 1.0:
        raise ValueError(f"lowering must be in (0, 1], got {lowering}")
    if db.n_baskets == 0:
        raise ValueError("cannot mine an empty database")

    rng = random.Random(seed)
    sample_size = max(1, round(sample_fraction * db.n_baskets))
    indices = [rng.randrange(db.n_baskets) for _ in range(sample_size)]
    sample = db.sample(indices)

    sample_threshold = lowering * min_support
    sample_result = apriori(sample, min_support=sample_threshold, max_size=max_size)
    sample_frequent = set(sample_result.counts)

    # Verify sample-frequent itemsets plus the negative border on the
    # full database; one "pass" = exact bitmap counts per candidate.
    border = negative_border(sample_frequent, db.n_items, max_size=max_size)
    candidates = sample_frequent | border
    threshold_count = min_support * db.n_baskets

    frequent: dict[Itemset, int] = {}
    misses: list[Itemset] = []
    for candidate in sorted(candidates):
        count = db.support_count(candidate)
        if count >= threshold_count:
            frequent[candidate] = count
            if candidate in border:
                misses.append(candidate)

    return SamplingResult(
        frequent=frequent,
        misses=sorted(misses),
        sample_size=sample_size,
        sample_threshold=sample_threshold,
        candidates_verified=len(candidates),
    )
