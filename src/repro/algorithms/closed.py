"""Maximal and closed frequent itemsets — the support border.

Section 2.2 frames upward-closed properties through their border; the
downward-closed mirror image is classical: the **maximal frequent
itemsets** are exactly the (upper) border of the support predicate —
"discovering all most specific sentences" in the language of the
random-walk paper [14] this work builds on.  **Closed** itemsets refine
the picture: an itemset is closed when no proper superset has the same
support, and the closed sets compress the full frequent collection
without losing any counts.

Both are post-processing over an
:class:`~repro.algorithms.apriori.AprioriResult`; no further database
passes are needed (every superset a check consults is itself frequent
when it matters).
"""

from __future__ import annotations

from repro.algorithms.apriori import AprioriResult
from repro.core.border import Border
from repro.core.itemsets import Itemset

__all__ = ["maximal_frequent", "closed_frequent", "support_border"]


def maximal_frequent(result: AprioriResult) -> list[Itemset]:
    """Frequent itemsets with no frequent proper superset.

    The upper border of support: every frequent itemset is a subset of
    some maximal one, and everything above the maximal sets is
    infrequent.  O(total frequent * average size) via immediate-superset
    containment checks against the frequent family, exploiting that a
    frequent superset of S of any size implies a frequent immediate
    superset (downward closure).
    """
    frequent = set(result.counts)
    by_size: dict[int, set[Itemset]] = {}
    for itemset in frequent:
        by_size.setdefault(len(itemset), set()).add(itemset)
    maximal: list[Itemset] = []
    all_items = {item for itemset in frequent for item in itemset}
    for itemset in sorted(frequent):
        has_frequent_superset = any(
            itemset.add(item) in by_size.get(len(itemset) + 1, ())
            for item in all_items
            if item not in itemset
        )
        if not has_frequent_superset:
            maximal.append(itemset)
    return sorted(maximal)


def closed_frequent(result: AprioriResult) -> dict[Itemset, int]:
    """Frequent itemsets whose every proper superset has strictly lower support.

    Returns the closed sets with their counts — a lossless compression
    of the frequent collection: the support of any frequent itemset is
    the maximum count among the closed supersets containing it.
    """
    counts = result.counts
    by_size: dict[int, set[Itemset]] = {}
    for itemset in counts:
        by_size.setdefault(len(itemset), set()).add(itemset)
    all_items = {item for itemset in counts for item in itemset}
    closed: dict[Itemset, int] = {}
    for itemset, count in counts.items():
        bigger = by_size.get(len(itemset) + 1, ())
        is_closed = True
        for item in all_items:
            if item in itemset:
                continue
            superset = itemset.add(item)
            if superset in bigger and counts[superset] == count:
                is_closed = False
                break
        if is_closed:
            closed[itemset] = count
    return closed


def support_border(result: AprioriResult) -> Border:
    """The maximal frequent itemsets packaged as a :class:`Border`.

    Note the orientation: support is downward closed, so this border
    bounds the frequent region from *above* (its ``covers`` method
    answers "is every subset of this itemset frequent" for itemsets on
    or below an element — use ``any(element.issuperset(s))``).  The
    antichain structure and validation are what :class:`Border`
    provides; orientation is the caller's concern.
    """
    border = Border()
    for itemset in maximal_frequent(result):
        # maximal sets form an antichain already; add_minimal skips the
        # dominance scan.
        border.add_minimal(itemset)
    border.validate()
    return border
