"""Association-rule generation from frequent itemsets.

The second half of the support-confidence framework (§2.1: "first
finding supported itemsets, and then discovering rules in those itemsets
that have large confidence").  Because confidence has *no* closure
property (Example 2), this step is a post-processing pass over the
frequent sets — exactly the structural weakness the paper's border-based
pruning avoids.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.algorithms.apriori import AprioriResult
from repro.core.itemsets import Itemset
from repro.core.rules import AssociationRule

__all__ = ["generate_rules", "rules_for_itemset"]


def rules_for_itemset(
    result: AprioriResult,
    itemset: Itemset,
    min_confidence: float,
) -> Iterator[AssociationRule]:
    """All confident rules partitioning one frequent itemset.

    Every non-empty proper subset A of the itemset defines a rule
    ``A => S \\ A`` with confidence ``supp(S) / supp(A)``.  The subset
    supports are available in the Apriori result by downward closure.
    """
    if itemset not in result.counts:
        raise KeyError(f"{itemset!r} is not a frequent itemset in this result")
    union_count = result.counts[itemset]
    n = result.n_baskets
    for antecedent in itemset.subsets():
        if len(antecedent) == 0 or len(antecedent) == len(itemset):
            continue
        antecedent_count = result.counts.get(antecedent)
        if antecedent_count is None or antecedent_count == 0:
            # Cannot happen for true Apriori output (downward closure),
            # but guard against hand-built results.
            continue
        confidence = union_count / antecedent_count
        if confidence >= min_confidence:
            consequent = itemset - antecedent
            consequent_count = result.counts.get(consequent)
            lift = (
                (union_count / n) / ((antecedent_count / n) * (consequent_count / n))
                if consequent_count
                else float("nan")
            )
            yield AssociationRule(
                antecedent=antecedent,
                consequent=consequent,
                support=union_count / n,
                confidence=confidence,
                lift=lift,
            )


def generate_rules(
    result: AprioriResult,
    min_confidence: float,
) -> list[AssociationRule]:
    """All confident rules from every frequent itemset of size >= 2."""
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError(f"min_confidence must be in (0, 1], got {min_confidence}")
    rules: list[AssociationRule] = []
    for itemset in result.itemsets():
        if len(itemset) < 2:
            continue
        rules.extend(rules_for_itemset(result, itemset, min_confidence))
    return rules
