"""Apriori: the support-confidence baseline (Agrawal-Srikant [5]).

The paper contrasts its correlation framework against "the
support-confidence framework for association rules" throughout; this
module provides that baseline.  Frequent-itemset discovery is the
classic level-wise search exploiting the *downward closure* of support
("if a set of items has support, then all its subsets also have
support"); rule generation from the frequent sets lives in
:mod:`repro.algorithms.rulegen`.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

from repro.core.itemsets import Itemset
from repro.core.lattice import apriori_join
from repro.data.basket import BasketDatabase

__all__ = ["AprioriResult", "apriori", "brute_force_frequent"]


@dataclass(frozen=True, slots=True)
class AprioriLevelStats:
    """Per-level counters, comparable with the chi2-support miner's."""

    level: int
    lattice_itemsets: int
    candidates: int
    frequent: int


@dataclass(slots=True)
class AprioriResult:
    """Frequent itemsets with their absolute support counts."""

    counts: dict[Itemset, int]
    n_baskets: int
    min_support_count: int
    level_stats: list[AprioriLevelStats]

    def support(self, itemset: Itemset) -> float:
        """Relative support of a frequent itemset (KeyError if infrequent)."""
        return self.counts[itemset] / self.n_baskets

    def itemsets(self, size: int | None = None) -> list[Itemset]:
        """All frequent itemsets, optionally restricted to one size."""
        found = (s for s in self.counts if size is None or len(s) == size)
        return sorted(found)

    def __len__(self) -> int:
        return len(self.counts)

    def __contains__(self, itemset: Itemset) -> bool:
        return itemset in self.counts


def apriori(
    db: BasketDatabase,
    min_support: float | None = None,
    min_support_count: int | None = None,
    max_size: int | None = None,
    counting: str = "bitmap",
) -> AprioriResult:
    """Mine all frequent itemsets at the given support threshold.

    Exactly one of ``min_support`` (a fraction of baskets) or
    ``min_support_count`` (an absolute count) must be given.

    ``counting`` selects the support-counting machinery: ``"bitmap"``
    (default — a popcount of intersected item bitmaps per candidate) or
    ``"hashtree"`` (the original Agrawal–Srikant structure: one pass
    over the baskets per level through a candidate hash tree,
    :class:`repro.hashing.hashtree.HashTree`).  Results are identical.
    """
    if (min_support is None) == (min_support_count is None):
        raise ValueError("specify exactly one of min_support / min_support_count")
    if counting not in ("bitmap", "hashtree"):
        raise ValueError(f"unknown counting strategy {counting!r}")
    if min_support is not None:
        if not 0.0 < min_support <= 1.0:
            raise ValueError(f"min_support must be in (0, 1], got {min_support}")
        threshold = min_support * db.n_baskets
    else:
        assert min_support_count is not None
        if min_support_count < 1:
            raise ValueError(f"min_support_count must be >= 1, got {min_support_count}")
        threshold = float(min_support_count)

    counts: dict[Itemset, int] = {}
    stats: list[AprioriLevelStats] = []
    k = db.n_items

    frequent_level: list[Itemset] = []
    item_counts = db.item_counts()
    for item in db.vocabulary.ids():
        if item_counts[item] >= threshold:
            itemset = Itemset([item])
            counts[itemset] = item_counts[item]
            frequent_level.append(itemset)
    stats.append(
        AprioriLevelStats(level=1, lattice_itemsets=k, candidates=k, frequent=len(frequent_level))
    )

    size = 2
    while frequent_level and (max_size is None or size <= max_size):
        frequent_set = set(frequent_level)
        candidates = [
            candidate
            for candidate in apriori_join(frequent_level)
            if all(subset in frequent_set for subset in candidate.immediate_subsets())
        ]
        if counting == "hashtree" and candidates:
            from repro.hashing.hashtree import HashTree

            tree = HashTree(candidates)
            tree.count_baskets(db)
            candidate_counts = tree.counts()
        else:
            candidate_counts = None
        next_level: list[Itemset] = []
        for candidate in candidates:
            if candidate_counts is not None:
                count = candidate_counts[candidate]
            else:
                count = db.support_count(candidate)
            if count >= threshold:
                counts[candidate] = count
                next_level.append(candidate)
        stats.append(
            AprioriLevelStats(
                level=size,
                lattice_itemsets=comb(k, size),
                candidates=len(candidates),
                frequent=len(next_level),
            )
        )
        frequent_level = next_level
        size += 1

    return AprioriResult(
        counts=counts,
        n_baskets=db.n_baskets,
        min_support_count=int(threshold) if threshold == int(threshold) else int(threshold) + 1,
        level_stats=stats,
    )


def brute_force_frequent(
    db: BasketDatabase, min_support_count: int, max_size: int | None = None
) -> dict[Itemset, int]:
    """Exhaustive frequent-itemset enumeration — the test oracle.

    Counts every itemset up to ``max_size`` directly; exponential in the
    item count, for small test databases only.
    """
    from itertools import combinations

    items = list(db.vocabulary.ids())
    top = len(items) if max_size is None else min(max_size, len(items))
    result: dict[Itemset, int] = {}
    for size in range(1, top + 1):
        for combo in combinations(items, size):
            itemset = Itemset(combo)
            count = db.support_count(itemset)
            if count >= min_support_count:
                result[itemset] = count
    return result
