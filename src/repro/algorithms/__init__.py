"""Mining algorithms: the paper's chi2-support miner and the baselines."""

from repro.algorithms.apriori import AprioriResult, apriori, brute_force_frequent
from repro.algorithms.chi2support import (
    ChiSquaredSupportMiner,
    LevelStats,
    MiningResult,
    mine_significant_itemsets,
)
from repro.algorithms.closed import closed_frequent, maximal_frequent, support_border
from repro.algorithms.negative import NegativeImplication, mine_negative_implications
from repro.algorithms.pcy import PCYResult, pcy
from repro.algorithms.randomwalk import RandomWalkMiner, RandomWalkResult
from repro.algorithms.rulegen import generate_rules, rules_for_itemset
from repro.algorithms.sampling import (
    SamplingResult,
    negative_border,
    toivonen_sample_mine,
)

__all__ = [
    "AprioriResult",
    "apriori",
    "brute_force_frequent",
    "ChiSquaredSupportMiner",
    "LevelStats",
    "MiningResult",
    "mine_significant_itemsets",
    "closed_frequent",
    "maximal_frequent",
    "support_border",
    "NegativeImplication",
    "mine_negative_implications",
    "PCYResult",
    "pcy",
    "RandomWalkMiner",
    "RandomWalkResult",
    "generate_rules",
    "rules_for_itemset",
    "SamplingResult",
    "negative_border",
    "toivonen_sample_mine",
]
