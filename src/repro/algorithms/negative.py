"""Negative implication mining — the fire-code scenario (§1, §4).

The introduction motivates rules the support-confidence framework cannot
express: "fire code inspectors trying to mine useful fire prevention
measures might like to know of any negative correlations between
certain types of electrical wiring and the occurrence of fires", and
"when people buy batteries, they do not usually also buy cat food".
Section 4 adds the pruning idea — **anti-support**, "where only rarely
occurring combinations of items are interesting" — but forbids pairing
it with the chi-squared test, whose approximation collapses exactly on
the rare events anti-support selects.

This module completes the thought with the tool §3.3 recommends for
that regime: mine pairs of *individually common* items whose
*co-occurrence* is rare (the anti-support filter), and certify the
negative dependence with **Fisher's exact test**, which is valid at any
cell count.  The output is the paper's missing rule type: "people who
have A tend not to have B", with an exact p-value.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.core.itemsets import Itemset
from repro.data.basket import BasketDatabase
from repro.stats.fisher import FisherResult, fisher_exact_2x2

__all__ = ["NegativeImplication", "mine_negative_implications"]


@dataclass(frozen=True, slots=True)
class NegativeImplication:
    """A certified 'A tends to exclude B' pattern.

    Attributes:
        itemset: the two mutually-avoiding items.
        cooccurrences: observed baskets containing both.
        expected_cooccurrences: count expected under independence.
        fisher: the exact test result (two-sided p-value, odds ratio).
    """

    itemset: Itemset
    cooccurrences: int
    expected_cooccurrences: float
    fisher: FisherResult

    @property
    def p_value(self) -> float:
        """Exact two-sided p-value of the dependence."""
        return self.fisher.p_value

    def describe(self, vocabulary=None) -> str:
        """One-line rendering of the negative implication."""
        if vocabulary is not None:
            a, b = vocabulary.decode(self.itemset)
        else:
            a, b = (f"i{item}" for item in self.itemset)
        return (
            f"{a} -/-> {b}: seen together {self.cooccurrences}x, "
            f"expected {self.expected_cooccurrences:.1f}x "
            f"(exact p={self.p_value:.2g}, odds ratio {self.fisher.odds_ratio:.3f})"
        )


def mine_negative_implications(
    db: BasketDatabase,
    min_item_count: int,
    max_cooccurrence: int,
    significance: float = 0.95,
) -> list[NegativeImplication]:
    """Find pairs of common items that avoid each other.

    Args:
        db: the basket database.
        min_item_count: both items must individually occur at least this
            often (the "support" half — the pattern must involve things
            that actually happen).
        max_cooccurrence: the pair may co-occur at most this often (the
            anti-support ceiling of §4).
        significance: acceptance level; a pair is reported when Fisher's
            exact two-sided p-value is <= 1 - significance *and* the
            dependence is negative (fewer co-occurrences than expected).

    Returns implications sorted by ascending p-value.
    """
    if min_item_count < 1:
        raise ValueError(f"min_item_count must be >= 1, got {min_item_count}")
    if max_cooccurrence < 0:
        raise ValueError(f"max_cooccurrence must be >= 0, got {max_cooccurrence}")
    if not 0.0 < significance < 1.0:
        raise ValueError(f"significance must be in (0, 1), got {significance}")
    alpha = 1.0 - significance
    n = db.n_baskets
    if n == 0:
        raise ValueError("cannot mine an empty database")

    counts = db.item_counts()
    common = [item for item in db.vocabulary.ids() if counts[item] >= min_item_count]

    results: list[NegativeImplication] = []
    for a, b in combinations(common, 2):
        both = (db.item_bitmap(a) & db.item_bitmap(b)).bit_count()
        if both > max_cooccurrence:
            continue
        expected = counts[a] * counts[b] / n
        if both >= expected:
            continue  # not a negative dependence
        only_a = counts[a] - both
        only_b = counts[b] - both
        neither = n - counts[a] - counts[b] + both
        fisher = fisher_exact_2x2(both, only_a, only_b, neither)
        if fisher.p_value <= alpha:
            results.append(
                NegativeImplication(
                    itemset=Itemset((a, b)),
                    cooccurrences=both,
                    expected_cooccurrences=expected,
                    fisher=fisher,
                )
            )
    results.sort(key=lambda implication: implication.p_value)
    return results
