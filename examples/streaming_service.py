"""Streaming service demo: append baskets over HTTP, watch the border move.

Boots the mining service in-process (the same server ``python -m repro
serve`` runs), feeds it Quest baskets in three appends, and queries it
between appends — showing what the batch algorithm of the paper looks
like as a long-lived service with incrementally maintained state.

Every append re-derives the full SIG border from merged cached + delta
counts, so the state after each generation is bit-identical to a cold
batch mine — this script checks that, and checks that the per-append
telemetry reconciliation agreed.  CI runs it as the service smoke test.

    python examples/streaming_service.py
"""

import json
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms.chi2support import ChiSquaredSupportMiner  # noqa: E402
from repro.data.basket import BasketDatabase  # noqa: E402
from repro.data.quest import QuestParameters, generate_quest  # noqa: E402
from repro.measures.cellsupport import CellSupport  # noqa: E402
from repro.obs import Telemetry, validate_exposition  # noqa: E402
from repro.service import MiningService, serve  # noqa: E402


def request(base: str, method: str, path: str, body=None, headers=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        base + path, data=data, method=method, headers=headers or {}
    )
    with urllib.request.urlopen(req, timeout=30) as response:
        return json.loads(response.read())


def main() -> None:
    quest = generate_quest(
        QuestParameters(seed=41, n_transactions=240, n_items=24, n_patterns=8)
    )
    baskets = [list(basket) for basket in quest]
    chunks = [baskets[:80], baskets[80:160], baskets[160:]]

    service = MiningService(
        support_count=5, support_fraction=0.3, telemetry=Telemetry.create()
    )
    server = serve(service)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    print(f"service up at {base}")

    accumulated: list[list[int]] = []
    for chunk in chunks:
        outcome = request(base, "POST", "/append", {"baskets": chunk, "numeric": True})
        accumulated.extend(chunk)
        assert outcome["reconciliation_agreed"], "telemetry reconciliation failed"
        print(
            f"generation {outcome['generation']}: +{outcome['appended']} baskets "
            f"-> {outcome['significant']} significant itemsets "
            f"({len(outcome['promoted'])} promoted, {len(outcome['demoted'])} demoted; "
            f"{outcome['tables_served']} tables served from cache, "
            f"{outcome['tables_recounted']} recounted)"
        )
        # Point-query between appends: the first lookup counts and
        # caches the table, the repeat is a cache hit, and the next
        # append invalidates it (its items are in every chunk).
        for _ in range(2):
            point = request(base, "POST", "/query/itemset", {"items": [2, 6]})
        print(
            f"  point query {{item2 item6}}: chi2={point['chi_squared']:.2f} "
            f"correlated={point['correlated']} n={point['n']}"
        )

    # -- prove the incremental state equals a cold batch mine -----------
    batch_db = BasketDatabase.from_id_baskets(
        [tuple(b) for b in accumulated], n_items=service.miner.db.n_items
    )
    batch = ChiSquaredSupportMiner(
        support=CellSupport(count=5, fraction=0.3)
    ).mine(batch_db)
    incremental = service.miner.result
    batch_rules = sorted((r.itemset.items, r.statistic) for r in batch.rules)
    incremental_rules = sorted(
        (r.itemset.items, r.statistic) for r in incremental.rules
    )
    assert incremental_rules == batch_rules, "incremental state diverged from batch"
    print(
        f"differential check: {len(batch_rules)} rules bit-identical "
        "to a cold batch mine"
    )

    # -- query the live service -----------------------------------------
    top = request(base, "GET", "/query/topk?k=3&min_cooccurrence=2")
    print("top pair correlations right now:")
    for entry in top["entries"]:
        print(
            f"  #{entry['rank']}: {{{' '.join(entry['items'])}}} "
            f"chi2={entry['chi2']:.2f} (together {entry['cooccurrence']}x)"
        )

    status = request(base, "GET", "/status")
    cache = status["cache"]
    print(
        f"table cache at generation {cache['generation']}: "
        f"{cache['hits']} hits, {cache['invalidations']} invalidated, "
        f"{cache['refreshes']} refreshed in place"
    )

    # -- telemetry reconciliation across the service lifetime -----------
    # /metrics defaults to Prometheus text; the JSON snapshot is behind
    # content negotiation.  Check both faces: the text must satisfy the
    # in-repo exposition validator, the JSON drives the reconciliation.
    with urllib.request.urlopen(base + "/metrics", timeout=30) as response:
        assert response.headers["Content-Type"].startswith("text/plain")
        problems = validate_exposition(response.read().decode("utf-8"))
    assert problems == [], problems
    print("GET /metrics serves validator-clean Prometheus text")

    snapshot = request(
        base, "GET", "/metrics", headers={"Accept": "application/json"}
    )
    requests_by_key = {
        key: value
        for key, value in snapshot["counters"].items()
        if key.startswith("service_requests")
    }
    total = sum(sorted(requests_by_key.values()))
    errors = sum(
        value
        for key, value in sorted(requests_by_key.items())
        if 'status="error"' in key
    )
    assert snapshot["gauges"]["index_generation"] == status["generation"]
    assert errors == 0, requests_by_key
    print(
        f"telemetry reconciles: {total} requests counted, 0 errors, "
        f"index_generation gauge == {status['generation']}"
    )

    # -- flight recorder: a 4xx leaves a correlated post-mortem ---------
    try:
        request(base, "GET", "/definitely/not/a/path")
        raise AssertionError("expected a 404")
    except urllib.error.HTTPError as error:
        assert error.code == 404
        failing_id = error.headers["X-Request-Id"]
        error.read()
    flight = request(base, "GET", "/debug/flight")
    failing = [
        entry for entry in flight["entries"] if entry["request_id"] == failing_id
    ]
    assert len(failing) == 1 and failing[0]["status"] == 404, flight["entries"]
    dump_path = Path("service-flight.json")
    dump_path.write_text(json.dumps(flight, indent=2, sort_keys=True) + "\n")
    print(
        f"flight recorder holds the 404 under {failing_id}; "
        f"dump written to {dump_path}"
    )

    server.shutdown()
    server.server_close()
    print("service smoke: OK")


if __name__ == "__main__":
    main()
