"""Text mining: replay Section 5.2 — term dependence in news articles.

Generates the synthetic clari.world.africa-style corpus (91 articles),
runs the paper's preprocessing (alphabetic tokenization, 200-word floor,
10% document-frequency pruning) and mines correlated word itemsets,
printing a Table 4-style report of correlated words with their major
dependence.

    python examples/text_mining.py [--max-level N]
"""

import argparse

from repro import CellSupport, ChiSquaredSupportMiner
from repro.core.rules import format_cell
from repro.data.corpusgen import generate_news_corpus
from repro.data.text import TextPipeline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--max-level",
        type=int,
        default=3,
        help="largest itemset size to mine (2 = pairs only, fast; 3 = paper's depth)",
    )
    args = parser.parse_args()

    documents = generate_news_corpus()
    db = TextPipeline(min_words=200, min_document_frequency=0.10).run(documents)
    print(
        f"corpus: {db.n_baskets} articles, {db.n_items} distinct words "
        "after df >= 10% pruning\n"
    )

    # Like the paper, report word pairs and triples; with a dense
    # uncorrelated background vocabulary, deeper levels explode
    # combinatorially without adding reportable structure.
    support = CellSupport(count=5, fraction=0.3)
    result = ChiSquaredSupportMiner(
        significance=0.95, support=support, max_level=args.max_level
    ).mine(db)

    pairs = [r for r in result.rules if len(r.itemset) == 2]
    triples = [r for r in result.rules if len(r.itemset) == 3]
    total_pairs = db.n_items * (db.n_items - 1) // 2
    print(
        f"correlated pairs: {len(pairs)} of {total_pairs} "
        f"({100 * len(pairs) / total_pairs:.1f}%)"
    )
    print(f"minimal correlated triples: {len(triples)}\n")

    print(f"{'correlated words':<38} {'chi2':>9}  major dependence")
    print("-" * 78)
    interesting = sorted(pairs, key=lambda r: -r.statistic)[:10] + sorted(
        triples, key=lambda r: -r.statistic
    )[:4]
    for rule in interesting:
        words = " ".join(db.vocabulary.decode(rule.itemset))
        major = rule.major_dependence()
        cell = format_cell(rule.itemset, major.pattern, db.vocabulary)
        print(f"{words:<38} {rule.statistic:>9.3f}  [{cell}] I={major.interest:.2f}")

    if triples:
        print(
            "\nNote: as in the paper, no triple approaches the chi-squared "
            "magnitude of the top pairs\n(minimal 3-way correlations are "
            "weak residuals once the pairwise structure is removed):"
        )
        top_triple = max(r.statistic for r in triples)
        top_pair = max(r.statistic for r in pairs)
        print(f"  max pair chi2 = {top_pair:.1f}, max triple chi2 = {top_triple:.1f}")


if __name__ == "__main__":
    main()
