"""Quickstart: mine correlation rules from a handful of market baskets.

Runs in well under a second and shows the three core moves of the
library: build a basket database, test one itemset, and mine the whole
database for significant (supported + minimally correlated) itemsets.

    python examples/quickstart.py
"""

from repro import BasketDatabase, CellSupport, ChiSquaredSupportMiner, correlation_rule
from repro.core.interest import interest_table
from repro.core.rules import format_cell


def main() -> None:
    # The paper's Example 1: tea and coffee.  20% of baskets have both,
    # 70% coffee only, 5% tea only, 5% neither.
    db = BasketDatabase.from_baskets(
        [["tea", "coffee"]] * 20
        + [["coffee"]] * 70
        + [["tea"]] * 5
        + [[]] * 5
    )

    # -- 1. Interrogate one itemset -------------------------------------
    rule = correlation_rule(db, ["tea", "coffee"], significance=0.95)
    print("tea & coffee:")
    print(f"  chi-squared = {rule.statistic:.3f} (cutoff {rule.result.cutoff:.2f})")
    print(f"  correlated at 95%? {rule.result.correlated}")
    print("  per-cell interest (O/E):")
    for cell in interest_table(rule.table):
        label = format_cell(rule.itemset, cell.pattern, db.vocabulary)
        print(f"    [{label:>12}] observed={cell.observed:5.1f} interest={cell.interest:.3f}")
    print(
        "  -> the support-confidence framework would report 'tea => coffee'\n"
        "     (support 0.20, confidence 0.80), but the both-present cell has\n"
        "     interest 0.89 < 1: buying tea makes coffee LESS likely.\n"
    )

    # -- 2. Mine a database with a strong planted correlation -----------
    db2 = BasketDatabase.from_baskets(
        [["bread", "butter"]] * 40
        + [["bread"]] * 10
        + [["butter"]] * 10
        + [["milk"]] * 20
        + [[]] * 20
    )
    miner = ChiSquaredSupportMiner(
        significance=0.95, support=CellSupport(count=5, fraction=0.3)
    )
    result = miner.mine(db2)
    print("mined significant itemsets:")
    for found in result.rules:
        print(" ", found.describe(db2.vocabulary))
    print("\nper-level pruning statistics:")
    for stats in result.level_stats:
        print(
            f"  level {stats.level}: {stats.candidates} candidates of "
            f"{stats.lattice_itemsets} lattice itemsets "
            f"({stats.significant} significant, {stats.not_significant} supported-but-uncorrelated, "
            f"{stats.discarded} discarded)"
        )


if __name__ == "__main__":
    main()
