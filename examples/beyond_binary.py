"""Beyond binary items: the extensions Section 5.1 and 6 sketch.

Two things the paper says it *could* do but doesn't implement:

1. **Non-collapsed (categorical) tables.**  "Because we have collapsed
   the answers 'does not drive' and 'carpools,' we cannot answer this
   question.  A non-collapsed chi-squared table, with more than two rows
   and columns, could find finer-grained dependency."  We build that
   table for a synthetic commute x marital-status population and locate
   the dependence that the binary collapse hides.

2. **A datacube backend for random walks.**  "A random walk algorithm
   has a natural implementation in terms of a datacube of the count
   values for contingency tables."  We materialise a cube over the
   census attributes and run the walk entirely against roll-ups.

    python examples/beyond_binary.py
"""

import random

from repro import CellSupport, CountDatacube, RandomWalkMiner
from repro.core.categorical import CategoricalTable, categorical_chi_squared_test
from repro.data.census import synthesize_census


def non_collapsed_commute() -> None:
    print("=" * 72)
    print("1. Non-collapsed chi-squared: commute (3 values) x married (2 values)")
    print("=" * 72)
    rng = random.Random(1997)
    commute_names = ["drives alone", "carpools", "does not drive"]
    marital_names = ["married", "single"]
    table = CategoricalTable([3, 2])
    for _ in range(10_000):
        married = rng.random() < 0.55
        if married:
            # Married people drive alone; children can't drive at all.
            commute = rng.choices([0, 1, 2], weights=[70, 20, 10])[0]
        else:
            # The unmarried pool mixes carpooling adults and children.
            commute = rng.choices([0, 1, 2], weights=[35, 25, 40])[0]
        table.add((commute, 0 if married else 1))

    result = categorical_chi_squared_test(table, significance=0.95)
    print(
        f"chi-squared = {result.statistic:.1f} at {result.df} dof "
        f"(cutoff {result.cutoff:.2f}) -> correlated: {result.correlated}"
    )
    print(f"{'cell':<28} {'O':>6} {'E':>8} {'interest':>9}")
    for commute in range(3):
        for marital in range(2):
            cell = (commute, marital)
            label = f"{commute_names[commute]} & {marital_names[marital]}"
            print(
                f"  {label:<26} {table.observed(cell):>6.0f} "
                f"{table.expected(cell):>8.1f} {table.interest(cell):>9.2f}"
            )
    print(
        "  -> the binary collapse ('drives alone' vs everything else) hides\n"
        "     that 'does not drive' and 'carpools' pull in opposite directions;\n"
        "     the 3x2 table separates them, answering the paper's open question.\n"
    )


def cube_backed_walk() -> None:
    print("=" * 72)
    print("2. Random walk on a census datacube (no database access per step)")
    print("=" * 72)
    db = synthesize_census()
    cube = CountDatacube(db, range(db.n_items))
    print(
        f"cube over {len(cube.dimensions)} attributes: "
        f"{cube.n_occupied} occupied cells summarise {cube.n} people"
    )
    walker = RandomWalkMiner(
        support=CellSupport(count=0.01 * db.n_baskets, fraction=0.26),
        n_walks=120,
        seed=5,
        cube=cube,
    )
    result = walker.mine(db)
    print(
        f"{result.walks} walks: {result.crossings} border crossings, "
        f"{len(result.rules)} distinct minimal correlated itemsets"
    )
    for rule in result.rules[:8]:
        print(" ", rule.describe(db.vocabulary))


if __name__ == "__main__":
    non_collapsed_commute()
    cube_backed_walk()
