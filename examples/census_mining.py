"""Census mining: replay Section 5.1 of the paper.

Synthesizes the 30 370-person census population from the paper's own
published pairwise tables, mines it with the chi2-support algorithm at
the paper's settings (95% significance, 1% support), and walks through
the analyses the paper narrates: the military/age dependence of
Example 4, the surprising non-correlation of family size with the
immigration markers, and the structurally impossible cells.

    python examples/census_mining.py
"""

from repro import CellSupport, ChiSquaredSupportMiner
from repro.core.contingency import ContingencyTable
from repro.core.interest import interest_table, most_extreme_cell
from repro.core.itemsets import Itemset
from repro.data.census import CENSUS_ATTRIBUTES, synthesize_census


def main() -> None:
    db = synthesize_census()
    print(f"census: n={db.n_baskets} people, k={db.n_items} binary attributes\n")

    # -- Example 4: military service vs age -----------------------------
    table = ContingencyTable.from_database(db, Itemset([2, 7]))
    print("military service (i2) x age (i7):")
    for cell in table.cells():
        pattern = table.cell_pattern(cell)
        label = " ".join(
            ("" if present else "~") + f"i{item}"
            for item, present in zip((2, 7), pattern)
        )
        print(f"  [{label:>8}] O={table.observed(cell):7.0f} E={table.expected(cell):9.1f}")
    from repro.core.correlation import chi_squared

    print(f"  chi-squared = {chi_squared(table):.2f} (paper: 2006.34)")
    extreme = most_extreme_cell(table)
    print(
        "  dominant dependence: being a veteran AND over 40 "
        f"(interest {extreme.interest:.2f})\n"
    )

    # -- Full mine at the paper's settings ---------------------------------
    support = CellSupport(count=0.01 * db.n_baskets, fraction=0.26)
    result = ChiSquaredSupportMiner(significance=0.95, support=support).mine(db)
    pairs = [r for r in result.rules if len(r.itemset) == 2]
    print(f"significant pairs at 95%: {len(pairs)} of 45")

    uncorrelated = [s for s in result.supported_uncorrelated if len(s) == 2]
    print("pairs NOT correlated (the paper's surprise list):")
    for itemset in uncorrelated:
        a, b = itemset.items
        print(
            f"  {{i{a}, i{b}}}: {CENSUS_ATTRIBUTES[a].attribute!r} vs "
            f"{CENSUS_ATTRIBUTES[b].attribute!r}"
        )
    print(
        "\n  {i1,i4} and {i1,i5} pair family size with immigration markers —\n"
        "  the non-correlation that §5.1 spends two paragraphs mulling over.\n"
    )

    # -- Impossible events: interest 0 ----------------------------------
    print("impossible combinations (interest exactly 0):")
    for a, b in ((1, 8), (4, 5)):
        table = ContingencyTable.from_database(db, Itemset([a, b]))
        for cell in interest_table(table):
            if cell.observed == 0 and cell.expected > 1:
                label = " ".join(
                    ("" if present else "~") + f"i{item}"
                    for item, present in zip((a, b), cell.pattern)
                )
                print(f"  [{label}] expected {cell.expected:.0f} people, observed 0")


if __name__ == "__main__":
    main()
