"""From raw census answers to correlation rules — the full §5.1 pipeline.

The paper's census experiment implicitly contains a preprocessing step:
individual answers ("carpools", age 37, two children, ...) are collapsed
into the ten binary items of Table 1. This example runs that whole
pipeline: synthesize raw person records, apply the Table 1 collapse via
the discretization schema, mine the result, and compare rule rankings —
the Example 4 argument that support-ordering buries what chi-squared
finds dominant.

    python examples/records_pipeline.py
"""

from repro import CellSupport, ChiSquaredSupportMiner
from repro.data.census import CENSUS_ATTRIBUTES
from repro.data.census_records import census_schema, synthesize_census_records
from repro.data.discretize import discretize
from repro.measures.ranking import (
    rank_by_statistic,
    rank_by_support,
    ranking_displacement,
)


def main() -> None:
    records = synthesize_census_records()
    print(f"raw records: {len(records)} people")
    sample = records[0]
    print("  e.g.", {k: sample[k] for k in ("commute", "sex", "age", "married")})

    schema = census_schema()
    db = discretize(records, schema)
    print(f"collapsed to {db.n_items} binary items (Table 1 schema):")
    for j, attribute in enumerate(CENSUS_ATTRIBUTES[:4]):
        print(f"  i{j}: {attribute.attribute!r}")
    print("  ...\n")

    support = CellSupport(count=0.01 * db.n_baskets, fraction=0.26)
    result = ChiSquaredSupportMiner(significance=0.95, support=support).mine(db)
    pairs = [r for r in result.rules if len(r.itemset) == 2]
    print(f"significant pairs: {len(pairs)} of 45\n")

    by_support = rank_by_support(pairs)
    by_statistic = rank_by_statistic(pairs)
    print("top 5 by SUPPORT (the traditional ranking):")
    for rule in by_support[:5]:
        print("  ", rule.describe(db.vocabulary))
    print("top 5 by CHI-SQUARED (the paper's ranking):")
    for rule in by_statistic[:5]:
        print("  ", rule.describe(db.vocabulary))

    displacement = ranking_displacement(by_support, by_statistic)
    print(
        f"\nmean rank displacement between the two orders: {displacement:.1f} positions"
        f" (over {len(pairs)} rules) — Example 4's complaint, quantified."
    )


if __name__ == "__main__":
    main()
