"""The pitfalls of support-confidence, dramatized (Examples 1 and 2).

Two short morality plays from the paper:

1. *Misleading rules* — ``tea => coffee`` passes any reasonable support
   and confidence bar while tea actually DEPRESSES coffee purchases
   (Example 1); and a negative implication the framework cannot even
   express (batteries vs cat food).
2. *No border for confidence* — ``c => d`` is confident but its superset
   rule ``{c, t} => d`` is not (Example 2), so confidence cannot drive
   lattice pruning, while the chi-squared border can.

    python examples/market_basket_pitfalls.py
"""

from repro import BasketDatabase, compare_frameworks
from repro.core.interest import interest
from repro.measures.classic import confidence, rule_stats


def tea_coffee() -> None:
    print("=" * 72)
    print("Example 1: a rule that passes support-confidence yet is misleading")
    print("=" * 72)
    db = BasketDatabase.from_baskets(
        [["tea", "coffee"]] * 20 + [["coffee"]] * 70 + [["tea"]] * 5 + [[]] * 5
    )
    comparison = compare_frameworks(db, ["tea", "coffee"])
    tea = db.vocabulary.encode(["tea"])
    coffee = db.vocabulary.encode(["coffee"])
    stats = rule_stats(db, tea, coffee)
    print(f"tea => coffee: support={stats.support:.2f}, confidence={stats.confidence:.2f}")
    print("  -> accepted by support-confidence at (s=5%, c=50%)")
    both = comparison.correlation.table.cell_of_pattern((True, True))
    print(f"lift / interest of (tea AND coffee) = {interest(comparison.correlation.table, both):.2f}")
    print(
        f"chi-squared = {comparison.chi_squared:.2f} "
        f"(cutoff {comparison.correlation.result.cutoff:.2f})"
    )
    print(
        "  -> the correlation framework reports NEGATIVE dependence:\n"
        "     a tea buyer is LESS likely to buy coffee than average (0.89 < 1).\n"
    )


def batteries_catfood() -> None:
    print("=" * 72)
    print("Negative implication: invisible to support-confidence")
    print("=" * 72)
    db = BasketDatabase.from_baskets(
        [["batteries"]] * 30 + [["catfood"]] * 30 + [["batteries", "catfood"]] * 2 + [[]] * 38
    )
    comparison = compare_frameworks(db, ["batteries", "catfood"])
    table = comparison.correlation.table
    both = table.cell_of_pattern((True, True))
    print(
        f"P[batteries and catfood] = {table.observed(both) / table.n:.2f}, "
        f"interest = {interest(table, both):.2f}"
    )
    print(f"chi-squared = {comparison.chi_squared:.2f}: significant negative correlation")
    print(
        "  -> 'people who buy batteries do NOT buy cat food' is mineable as a\n"
        "     correlation rule; the support-confidence framework can only stay silent."
    )
    # The dedicated miner for this rule type (anti-support + Fisher exact,
    # valid even where chi-squared's approximation is not):
    from repro.algorithms.negative import mine_negative_implications

    for implication in mine_negative_implications(db, min_item_count=20, max_cooccurrence=5):
        print("  negative miner:", implication.describe(db.vocabulary))
    print()


def confidence_has_no_border() -> None:
    print("=" * 72)
    print("Example 2: confidence is not upward closed (no border)")
    print("=" * 72)
    db = BasketDatabase.from_baskets(
        [["c", "t", "d"]] * 8
        + [["c", "d"]] * 40
        + [["c", "t"]] * 10
        + [["c"]] * 35
        + [["d"]] * 4
        + [[]] * 3
    )
    c = db.vocabulary.encode(["c"])
    d = db.vocabulary.encode(["d"])
    ct = db.vocabulary.encode(["c", "t"])
    conf_c = confidence(db, c, d)
    conf_ct = confidence(db, ct, d)
    print(f"confidence(c => d)    = {conf_c:.2f}  (>= 0.50: accepted)")
    print(f"confidence(c,t => d)  = {conf_ct:.2f}  (<  0.50: rejected)")
    print(
        "  -> a superset fails where its subset passed, so there is no\n"
        "     border in the lattice and confidence testing must remain a\n"
        "     post-processing step.  Chi-squared significance IS upward\n"
        "     closed (Theorem 1), which is what makes border mining work."
    )


if __name__ == "__main__":
    tea_coffee()
    batteries_catfood()
    confidence_has_no_border()
