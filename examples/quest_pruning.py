"""Quest pruning study: replay Section 5.3 at a configurable scale.

Generates IBM-Quest-style synthetic market baskets and reports the
Table 5 pruning counters — how many itemsets exist per level, how many
the miner actually examines (|CAND|), and how the examined ones split
into discarded / SIG / NOTSIG.  Pass ``--full`` for the paper's exact
scale (99 997 baskets, 870 items; takes a couple of minutes); the
default is a faster 20 000 x 300 slice with the same shape.

    python examples/quest_pruning.py [--full]
"""

import argparse
import time

from repro import CellSupport, ChiSquaredSupportMiner
from repro.data.quest import QuestParameters, generate_quest


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale run")
    parser.add_argument(
        "--keep-items",
        type=int,
        default=127,
        help="calibrate support so about this many items pass level 1",
    )
    args = parser.parse_args()

    if args.full:
        params = QuestParameters()  # 99 997 x 870, |T|=20, |I|=4
    else:
        params = QuestParameters(
            n_transactions=20_000, n_items=300, n_patterns=700, seed=1997
        )

    started = time.perf_counter()
    db = generate_quest(params)
    generated = time.perf_counter() - started
    print(
        f"quest data: {db.n_baskets} baskets x {db.n_items} items "
        f"(|T|={params.avg_transaction_size:.0f}, |I|={params.avg_pattern_size:.0f}) "
        f"generated in {generated:.1f}s"
    )

    # Calibrate the support count the way the paper's run evidently did:
    # pick s so that a target number of items clear it, which makes
    # |CAND| at level 2 roughly C(keep, 2).
    counts = sorted(db.item_counts(), reverse=True)
    keep = min(args.keep_items, db.n_items - 1)
    s = counts[keep - 1]
    support = CellSupport(count=s, fraction=0.6)
    print(f"support: count s={s}, fraction p=0.6 (~{keep} items clear level 1)\n")

    started = time.perf_counter()
    result = ChiSquaredSupportMiner(significance=0.95, support=support).mine(db)
    mined = time.perf_counter() - started

    header = f"{'level':>5} {'itemsets':>15} {'|CAND|':>8} {'discards':>9} {'|SIG|':>7} {'|NOTSIG|':>9}"
    print(header)
    print("-" * len(header))
    for stats in result.level_stats:
        print(
            f"{stats.level:>5} {stats.lattice_itemsets:>15,} {stats.candidates:>8} "
            f"{stats.discarded:>9} {stats.significant:>7} {stats.not_significant:>9}"
        )
    print(f"\nmined in {mined:.1f}s; {result.items_examined} itemsets examined in total")
    examined_fraction = result.items_examined / sum(
        stats.lattice_itemsets for stats in result.level_stats
    )
    print(f"pruning examined only {100 * examined_fraction:.4f}% of the lattice levels visited")


if __name__ == "__main__":
    main()
