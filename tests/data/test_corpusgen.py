"""Unit tests for the synthetic news corpus generator."""

import pytest

from repro.data.corpusgen import (
    PLANTED_TOPICS,
    NewsCorpusParameters,
    generate_news_corpus,
)
from repro.data.text import TextPipeline, tokenize


class TestParameters:
    def test_defaults_match_paper_shape(self):
        params = NewsCorpusParameters()
        assert params.n_documents == 91
        assert params.min_words == 200

    def test_validation(self):
        with pytest.raises(ValueError):
            NewsCorpusParameters(n_documents=0)
        with pytest.raises(ValueError):
            NewsCorpusParameters(min_words=10, max_words=5)
        with pytest.raises(ValueError):
            NewsCorpusParameters(two_topic_probability=2.0)


class TestGeneration:
    def test_document_count_and_length(self):
        docs = generate_news_corpus()
        assert len(docs) == 91
        assert all(len(tokenize(doc)) >= 200 for doc in docs)

    def test_deterministic(self):
        assert generate_news_corpus() == generate_news_corpus()

    def test_seed_changes_output(self):
        other = generate_news_corpus(NewsCorpusParameters(seed=2024))
        assert other != generate_news_corpus()

    def test_planted_words_present(self):
        text = " ".join(generate_news_corpus())
        for topic in PLANTED_TOPICS:
            for word in topic.words:
                assert word in text

    def test_pipeline_keeps_planted_markers(self):
        db = TextPipeline().run(generate_news_corpus())
        assert db.n_baskets == 91
        # mandela and nelson both survive the 10% df pruning.
        assert "mandela" in db.vocabulary
        assert "nelson" in db.vocabulary

    def test_mandela_nelson_correlated(self):
        """The headline Table 4 pair emerges from the generator."""
        from repro.core.contingency import ContingencyTable
        from repro.core.correlation import chi_squared

        db = TextPipeline().run(generate_news_corpus())
        itemset = db.vocabulary.encode(["mandela", "nelson"])
        value = chi_squared(ContingencyTable.from_database(db, itemset))
        assert value > 3.84
