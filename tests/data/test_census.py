"""Unit tests for the reconstructed census dataset."""

import pytest

pytest.importorskip("numpy", reason="census reconstruction (IPF) needs the [fast] extra")

from repro.core.contingency import ContingencyTable
from repro.core.correlation import chi_squared
from repro.core.itemsets import Itemset
from repro.data.census import (
    CENSUS_ATTRIBUTES,
    PAPER_N,
    TABLE2_CHI2,
    TABLE3_SUPPORT_PERCENTAGES,
    census_vocabulary,
    example3_sample,
    pairwise_targets,
)


class TestSchema:
    def test_ten_attributes(self):
        assert len(CENSUS_ATTRIBUTES) == 10
        assert CENSUS_ATTRIBUTES[7].attribute == "no more than 40 years old"

    def test_vocabulary_order(self):
        vocab = census_vocabulary()
        assert vocab.id_of("i0") == 0
        assert vocab.id_of("i9") == 9

    def test_table3_has_all_45_pairs(self):
        assert len(TABLE3_SUPPORT_PERCENTAGES) == 45
        assert set(TABLE3_SUPPORT_PERCENTAGES) == {
            (a, b) for a in range(10) for b in range(a + 1, 10)
        }

    def test_table3_rows_sum_to_100(self):
        for pair, cells in TABLE3_SUPPORT_PERCENTAGES.items():
            assert sum(cells) == pytest.approx(100.0, abs=0.35), pair

    def test_table3_marginals_consistent_across_pairs(self):
        # P(a) derived from any row mentioning a must agree to rounding.
        marginals: dict[int, list[float]] = {}
        for (a, b), (s_ab, s_nab, s_anb, s_nanb) in TABLE3_SUPPORT_PERCENTAGES.items():
            marginals.setdefault(a, []).append(s_ab + s_anb)
            marginals.setdefault(b, []).append(s_ab + s_nab)
        for item, values in marginals.items():
            assert max(values) - min(values) < 0.35, item

    def test_table2_has_all_45_pairs(self):
        assert len(TABLE2_CHI2) == 45


class TestSynthesizedCensus:
    def test_size(self, census_db):
        assert census_db.n_baskets == PAPER_N
        assert census_db.n_items == 10

    def test_pairwise_tables_match_paper(self, census_db):
        """Every pair's cell percentages within rounding of Table 3."""
        for (a, b), (s_ab, s_nab, s_anb, s_nanb) in TABLE3_SUPPORT_PERCENTAGES.items():
            table = ContingencyTable.from_database(census_db, Itemset([a, b]))
            n = census_db.n_baskets
            assert table.observed(0b11) / n * 100 == pytest.approx(s_ab, abs=0.3)
            assert table.observed(0b10) / n * 100 == pytest.approx(s_nab, abs=0.3)
            assert table.observed(0b01) / n * 100 == pytest.approx(s_anb, abs=0.3)
            assert table.observed(0b00) / n * 100 == pytest.approx(s_nanb, abs=0.3)

    def test_structural_zeros(self, census_db):
        # Male with 3+ children borne: impossible (paper: interest 0.000).
        i1 = census_db.vocabulary.id_of("i1")
        i8 = census_db.vocabulary.id_of("i8")
        table = ContingencyTable.from_database(census_db, Itemset([i1, i8]))
        assert table.observed(0b10) == 0  # ~i1 (3+ children) and i8 (male)
        # Not-a-citizen yet born in the US: impossible.
        table45 = ContingencyTable.from_database(census_db, Itemset([4, 5]))
        assert table45.observed(0b11) == 0

    def test_significance_agreement_with_table2(self, census_db):
        """Significance decisions match the paper on at least 44/45 pairs.

        The one borderline pair (i0, i4: paper 4.57 vs cutoff 3.84) can
        fall either side under Table 3's 0.1%-rounding noise.
        """
        agree = 0
        for (a, b), paper_value in TABLE2_CHI2.items():
            table = ContingencyTable.from_database(census_db, Itemset([a, b]))
            ours = chi_squared(table)
            if (ours >= 3.8414588) == (paper_value >= 3.8414588):
                agree += 1
        assert agree >= 44

    def test_chi2_magnitudes_track_paper(self, census_db):
        """Large published statistics reproduce within a few percent."""
        for (a, b), paper_value in TABLE2_CHI2.items():
            if paper_value < 50:
                continue  # small values are dominated by rounding noise
            table = ContingencyTable.from_database(census_db, Itemset([a, b]))
            ours = chi_squared(table)
            assert ours == pytest.approx(paper_value, rel=0.15), (a, b)

    @pytest.mark.parametrize(
        "pair,paper_interests",
        [
            # Rows of Table 2 that are cleanly legible in the source:
            # (I(ab), I(~a b), I(a ~b), I(~a ~b)).
            ((4, 5), (0.000, 1.071, 9.602, 0.391)),
            ((6, 9), (1.163, 0.945, 0.888, 1.038)),
            ((0, 1), (1.025, 0.995, 0.773, 1.050)),
        ],
    )
    def test_table2_interest_anchors(self, census_db, pair, paper_interests):
        """Published interest values reproduce to ~0.01."""
        a, b = pair
        table = ContingencyTable.from_database(census_db, Itemset([a, b]))

        def cell_interest(pattern):
            cell = table.cell_of_pattern(pattern)
            expected = table.expected(cell)
            return table.observed(cell) / expected if expected else float("nan")

        ours = (
            cell_interest((True, True)),
            cell_interest((False, True)),
            cell_interest((True, False)),
            cell_interest((False, False)),
        )
        for measured, published in zip(ours, paper_interests):
            assert measured == pytest.approx(published, abs=0.02)

    def test_example4_military_age(self, census_db):
        """chi2(i2, i7) ~ 2006.34 and is significant (paper Example 4)."""
        table = ContingencyTable.from_database(census_db, Itemset([2, 7]))
        value = chi_squared(table)
        assert value == pytest.approx(2006.34, rel=0.05)
        assert value > 3.84


class TestExample3Sample:
    def test_nine_baskets(self):
        db = example3_sample()
        assert db.n_baskets == 9

    def test_documented_pattern_count(self):
        # O(i1 i2 i3 ~i4 i5 ~i6 i7 ~i8 i9) = 2 (persons 1 and 5).
        db = example3_sample()
        pattern = (1, 2, 3, 5, 7, 9)
        assert sum(1 for basket in db if basket == pattern) == 2

    def test_marginals_match_example(self):
        db = example3_sample()
        assert db.item_count(8) == 5
        assert db.item_count(9) == 3
        assert db.support_count(Itemset([8, 9])) == 1

    def test_chi2_is_0_900(self):
        db = example3_sample()
        table = ContingencyTable.from_database(db, Itemset([8, 9]))
        assert chi_squared(table) == pytest.approx(0.900, abs=5e-4)
        # Paper: not significant at 95%.
        assert chi_squared(table) < 3.84
