"""Unit tests for BasketDatabase."""

import pytest

from repro.core.itemsets import Itemset, ItemVocabulary
from repro.data.basket import BasketDatabase


@pytest.fixture
def db():
    return BasketDatabase.from_baskets(
        [["a", "b"], ["b", "c"], ["a"], [], ["a", "b", "c"]]
    )


class TestConstruction:
    def test_from_baskets_builds_vocabulary(self, db):
        assert db.n_items == 3
        assert db.vocabulary.id_of("a") == 0

    def test_from_baskets_shared_vocabulary(self):
        vocab = ItemVocabulary(["x", "y"])
        db = BasketDatabase.from_baskets([["y"]], vocabulary=vocab)
        assert db[0] == (1,)

    def test_from_baskets_dedupes_within_basket(self):
        db = BasketDatabase.from_baskets([["a", "a", "b"]])
        assert db[0] == (0, 1)

    def test_from_id_baskets(self):
        db = BasketDatabase.from_id_baskets([[2, 0], [1]], n_items=4)
        assert db.n_items == 4
        assert db[0] == (0, 2)
        assert db.vocabulary.name_of(3) == "item3"

    def test_from_id_baskets_infers_size(self):
        db = BasketDatabase.from_id_baskets([[5]])
        assert db.n_items == 6

    def test_from_id_baskets_vocabulary_too_small(self):
        vocab = ItemVocabulary(["only"])
        with pytest.raises(ValueError):
            BasketDatabase.from_id_baskets([[3]], vocabulary=vocab)

    def test_from_id_baskets_n_items_conflict(self):
        vocab = ItemVocabulary(["a", "b"])
        with pytest.raises(ValueError):
            BasketDatabase.from_id_baskets([[0]], n_items=5, vocabulary=vocab)


class TestBooleanMatrix:
    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        pytest.importorskip("numpy", reason="boolean-matrix interchange needs the [fast] extra")

    def test_roundtrip(self, db):
        matrix = db.to_boolean_matrix()
        rebuilt = BasketDatabase.from_boolean_matrix(
            matrix, item_names=list(db.vocabulary)
        )
        assert list(rebuilt) == list(db)
        assert list(rebuilt.vocabulary) == list(db.vocabulary)

    def test_matrix_shape_and_values(self, db):
        matrix = db.to_boolean_matrix()
        assert matrix.shape == (5, 3)
        assert matrix[0].tolist() == [True, True, False]
        assert matrix[3].tolist() == [False, False, False]

    def test_from_matrix_default_names(self):
        db = BasketDatabase.from_boolean_matrix([[True, False], [False, True]])
        assert db.basket_names(0) == ("item0",)

    def test_from_matrix_validation(self):
        with pytest.raises(ValueError):
            BasketDatabase.from_boolean_matrix([True, False])  # 1-D
        with pytest.raises(ValueError):
            BasketDatabase.from_boolean_matrix([[True]], item_names=["a", "b"])

    def test_mining_from_matrix(self):
        import numpy as np

        rng = np.random.default_rng(5)
        first = rng.random(300) < 0.5
        second = first ^ (rng.random(300) < 0.1)  # mostly copies of first
        noise = rng.random(300) < 0.4
        matrix = np.stack([first, second, noise], axis=1)
        db = BasketDatabase.from_boolean_matrix(matrix, item_names=["a", "b", "n"])
        from repro.core.mining import correlation_rule

        rule = correlation_rule(db, ["a", "b"])
        assert rule.result.correlated


class TestAccessors:
    def test_len_and_iter(self, db):
        assert len(db) == 5
        assert list(db)[2] == (0,)

    def test_basket_names(self, db):
        assert db.basket_names(4) == ("a", "b", "c")

    def test_empty_basket_preserved(self, db):
        assert db[3] == ()


class TestCounts:
    def test_item_count(self, db):
        assert db.item_count(0) == 3  # a
        assert db.item_count(1) == 3  # b
        assert db.item_count(2) == 2  # c

    def test_item_counts_tuple(self, db):
        assert db.item_counts() == (3, 3, 2)

    def test_support_count_pair(self, db):
        assert db.support_count(Itemset([0, 1])) == 2
        assert db.support_count(Itemset([0, 2])) == 1

    def test_support_count_empty_itemset(self, db):
        assert db.support_count(Itemset([])) == 5

    def test_support_fraction(self, db):
        assert db.support(Itemset([0, 1])) == pytest.approx(0.4)

    def test_support_on_empty_db_rejected(self):
        db = BasketDatabase.from_baskets([])
        with pytest.raises(ValueError):
            db.support(Itemset([0]))

    def test_support_accepts_plain_iterables(self, db):
        assert db.support_count([0, 1]) == 2


class TestBitmaps:
    def test_item_bitmap_bits(self, db):
        bitmap = db.item_bitmap(0)  # a in baskets 0, 2, 4
        assert bitmap == (1 << 0) | (1 << 2) | (1 << 4)

    def test_itemset_bitmap_intersection(self, db):
        bitmap = db.itemset_bitmap(Itemset([0, 1]))
        assert bitmap == (1 << 0) | (1 << 4)

    def test_empty_itemset_bitmap_all_ones(self, db):
        assert db.itemset_bitmap(Itemset([])) == (1 << 5) - 1

    def test_bitmap_consistency_large(self):
        import random

        rng = random.Random(5)
        baskets = [
            [i for i in range(10) if rng.random() < 0.3] for _ in range(1000)
        ]
        db = BasketDatabase.from_id_baskets(baskets, n_items=10)
        for item in range(10):
            count = sum(1 for basket in baskets if item in basket)
            assert db.item_count(item) == count
            assert db.item_bitmap(item).bit_count() == count


class TestDerivedDatabases:
    def test_restricted_to(self, db):
        restricted = db.restricted_to([0, 2])
        assert restricted[0] == (0,)  # b dropped
        assert restricted[4] == (0, 2)
        assert restricted.n_baskets == 5

    def test_sample(self, db):
        sampled = db.sample([0, 4])
        assert sampled.n_baskets == 2
        assert sampled[1] == (0, 1, 2)
