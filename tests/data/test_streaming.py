"""Unit tests for the streaming basket database."""

import pytest

from repro.algorithms.chi2support import ChiSquaredSupportMiner
from repro.core.contingency import count_tables_single_pass
from repro.core.itemsets import Itemset
from repro.data.basket import BasketDatabase
from repro.data.io import write_named_baskets, write_numeric_baskets
from repro.data.streaming import StreamingBasketDatabase
from repro.measures.cellsupport import CellSupport


@pytest.fixture
def in_memory_db():
    return BasketDatabase.from_baskets(
        [["bread", "butter"]] * 40
        + [["bread"]] * 10
        + [["butter"]] * 10
        + [["milk"]] * 20
        + [[]] * 20
    )


@pytest.fixture
def named_file(tmp_path, in_memory_db):
    path = tmp_path / "baskets.txt"
    write_named_baskets(in_memory_db, path)
    return path


class TestStreamingSource:
    def test_priming_pass_statistics(self, named_file, in_memory_db):
        stream = StreamingBasketDatabase(named_file)
        assert stream.n_baskets == in_memory_db.n_baskets
        assert stream.n_items == in_memory_db.n_items
        for item in range(stream.n_items):
            name = stream.vocabulary.name_of(item)
            assert stream.item_count(item) == in_memory_db.item_count(
                in_memory_db.vocabulary.id_of(name)
            )

    def test_iteration_re_reads_file(self, named_file):
        stream = StreamingBasketDatabase(named_file)
        first = list(stream)
        second = list(stream)
        assert first == second
        assert len(first) == stream.n_baskets

    def test_numeric_format(self, tmp_path):
        db = BasketDatabase.from_id_baskets([[0, 2], [1], []], n_items=3)
        path = tmp_path / "b.dat"
        write_numeric_baskets(db, path)
        stream = StreamingBasketDatabase(path, numeric=True)
        assert list(stream) == list(db)
        assert stream.item_counts() == db.item_counts()

    def test_numeric_negative_id_rejected(self, tmp_path):
        path = tmp_path / "bad.dat"
        path.write_text("0 -1\n", encoding="utf-8")
        with pytest.raises(ValueError):
            StreamingBasketDatabase(path, numeric=True)

    def test_support_count_by_scan(self, named_file, in_memory_db):
        stream = StreamingBasketDatabase(named_file)
        pair = stream.vocabulary.encode(["bread", "butter"])
        expected = in_memory_db.support_count(
            in_memory_db.vocabulary.encode(["bread", "butter"])
        )
        assert stream.support_count(pair) == expected
        assert stream.support_count(Itemset([])) == stream.n_baskets

    def test_bitmap_operations_refused(self, named_file):
        stream = StreamingBasketDatabase(named_file)
        with pytest.raises(NotImplementedError):
            stream.item_bitmap(0)
        with pytest.raises(NotImplementedError):
            stream.itemset_bitmap(Itemset([0]))


class TestFileChangeDetection:
    """The file must not change between passes — and now that's enforced.

    Multi-level mining reads the file once per level; if the bytes
    change between passes, level-k counts silently disagree with the
    level-1 marginals from the priming pass.
    """

    def test_append_between_passes_detected(self, named_file):
        stream = StreamingBasketDatabase(named_file)
        list(stream)  # a clean pass succeeds
        with open(named_file, "a", encoding="utf-8") as handle:
            handle.write("bread butter\n")
        with pytest.raises(RuntimeError, match="changed since it was opened"):
            list(stream)

    def test_same_size_rewrite_detected(self, named_file):
        import os

        stream = StreamingBasketDatabase(named_file)
        original = named_file.read_bytes()
        named_file.write_bytes(original)  # same size, new mtime
        os.utime(named_file, ns=(0, 123456789))  # force a distinct mtime_ns
        with pytest.raises(RuntimeError, match="changed since it was opened"):
            list(stream)

    def test_support_count_scan_also_guarded(self, named_file):
        stream = StreamingBasketDatabase(named_file)
        pair = stream.vocabulary.encode(["bread", "butter"])
        assert stream.support_count(pair) == 40
        with open(named_file, "a", encoding="utf-8") as handle:
            handle.write("bread butter\n")
        with pytest.raises(RuntimeError, match="changed since it was opened"):
            stream.support_count(pair)

    def test_unchanged_file_keeps_streaming(self, named_file):
        stream = StreamingBasketDatabase(named_file)
        assert list(stream) == list(stream)

    def test_mining_over_mutated_file_fails_loudly(self, named_file):
        from repro.measures.cellsupport import CellSupport

        stream = StreamingBasketDatabase(named_file)
        with open(named_file, "a", encoding="utf-8") as handle:
            handle.write("milk\n")
        miner = ChiSquaredSupportMiner(
            support=CellSupport(5, 0.3), counting="single_pass"
        )
        with pytest.raises(RuntimeError, match="changed since it was opened"):
            miner.mine(stream)


class TestStreamingMining:
    def test_single_pass_tables_match_in_memory(self, named_file, in_memory_db):
        stream = StreamingBasketDatabase(named_file)
        itemsets = [Itemset([0, 1]), Itemset([0, 2])]
        streamed = count_tables_single_pass(stream, itemsets)
        direct = count_tables_single_pass(in_memory_db, itemsets)
        # Vocabulary orders coincide (same insertion order), so compare cells.
        for itemset in itemsets:
            for cell in streamed[itemset].cells():
                assert streamed[itemset].observed(cell) == direct[itemset].observed(cell)

    def test_miner_runs_over_stream(self, named_file, in_memory_db):
        stream = StreamingBasketDatabase(named_file)
        miner = ChiSquaredSupportMiner(
            support=CellSupport(5, 0.3), counting="single_pass"
        )
        streamed = miner.mine(stream)
        in_memory = miner.mine(in_memory_db)
        streamed_names = {
            stream.vocabulary.decode(rule.itemset) for rule in streamed.rules
        }
        memory_names = {
            in_memory_db.vocabulary.decode(rule.itemset) for rule in in_memory.rules
        }
        assert streamed_names == memory_names
        assert ("bread", "butter") in streamed_names

    def test_bitmap_counting_fails_loudly(self, named_file):
        stream = StreamingBasketDatabase(named_file)
        miner = ChiSquaredSupportMiner(support=CellSupport(5, 0.3), counting="bitmap")
        with pytest.raises(NotImplementedError, match="single_pass"):
            miner.mine(stream)
