"""Unit tests for the parity (high-border) generator."""

import pytest

from repro.algorithms.chi2support import ChiSquaredSupportMiner
from repro.core.contingency import ContingencyTable
from repro.core.correlation import chi_squared
from repro.core.itemsets import Itemset
from repro.data.parity import generate_parity_data, planted_border
from repro.measures.cellsupport import CellSupport


class TestGenerator:
    def test_shape(self):
        db = generate_parity_data(500, [3, 4], noise_items=2, seed=1)
        assert db.n_baskets == 500
        assert db.n_items == 9

    def test_even_parity_invariant(self):
        db = generate_parity_data(300, [4], seed=2)
        for basket in db:
            assert len(basket) % 2 == 0  # even number of group members

    def test_marginals_near_half(self):
        db = generate_parity_data(4000, [3], noise_items=1, seed=3)
        for item in range(db.n_items):
            assert db.item_count(item) / db.n_baskets == pytest.approx(0.5, abs=0.05)

    def test_deterministic(self):
        a = generate_parity_data(100, [3], seed=7)
        b = generate_parity_data(100, [3], seed=7)
        assert list(a) == list(b)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_parity_data(0, [3])
        with pytest.raises(ValueError):
            generate_parity_data(10, [1])
        with pytest.raises(ValueError):
            generate_parity_data(10, [], noise_items=0)
        with pytest.raises(ValueError):
            generate_parity_data(10, [2], noise_items=-1)

    def test_planted_border_layout(self):
        assert planted_border([3, 2]) == [Itemset([3, 4]), Itemset([0, 1, 2])]


class TestBorderPlacement:
    @pytest.fixture(scope="class")
    def db(self):
        return generate_parity_data(4000, [3], noise_items=2, seed=11)

    def test_proper_subsets_independent(self, db):
        """Every pair inside the group has chi-squared far below cutoff."""
        for pair in Itemset([0, 1, 2]).subsets(2):
            value = chi_squared(ContingencyTable.from_database(db, pair))
            assert value < 3.84 * 2  # statistical noise only

    def test_full_group_maximally_dependent(self, db):
        """chi-squared of the full parity group is ~n."""
        table = ContingencyTable.from_database(db, Itemset([0, 1, 2]))
        value = chi_squared(table)
        assert value == pytest.approx(db.n_baskets, rel=0.1)

    def test_impossible_cells(self, db):
        """Odd-parity patterns never occur."""
        table = ContingencyTable.from_database(db, Itemset([0, 1, 2]))
        for cell in table.cells():
            if bin(cell).count("1") % 2 == 1:
                assert table.observed(cell) == 0

    def test_levelwise_miner_recovers_planted_border(self, db):
        result = ChiSquaredSupportMiner(support=CellSupport(5, 0.3)).mine(db)
        found = {rule.itemset for rule in result.rules}
        assert Itemset([0, 1, 2]) in found
        # No pair inside the group sneaks into the border.
        for pair in Itemset([0, 1, 2]).subsets(2):
            assert pair not in found

    def test_deeper_border(self):
        """A 4-item group places the border at level 4.

        At 95% significance the ~5% false-positive rate lets a noise
        triple cross the cutoff and mask the planted element (a genuine
        multiple-testing effect of the framework); 99.9% suppresses the
        noise while the parity group's chi-squared of ~n sails over any
        cutoff.
        """
        db = generate_parity_data(6000, [4], seed=13)
        result = ChiSquaredSupportMiner(
            significance=0.999, support=CellSupport(5, 0.3)
        ).mine(db)
        assert Itemset([0, 1, 2, 3]) in {rule.itemset for rule in result.rules}
        # Everything below level 4 stayed uncorrelated.
        assert all(len(rule.itemset) >= 4 for rule in result.rules)

    def test_multiple_testing_at_95(self):
        """The 95% cutoff admits noise itemsets across a large search —
        the practical reason to raise significance on wide lattices."""
        db = generate_parity_data(6000, [4], seed=13)
        result = ChiSquaredSupportMiner(support=CellSupport(5, 0.3)).mine(db)
        # Some rule is found, but not necessarily the planted one.
        assert result.rules
        loose = {rule.itemset for rule in result.rules}
        strict = {
            rule.itemset
            for rule in ChiSquaredSupportMiner(
                significance=0.999, support=CellSupport(5, 0.3)
            ).mine(db).rules
        }
        assert strict == {Itemset([0, 1, 2, 3])}
        assert loose != strict
