"""Unit tests for basket file I/O."""

import pytest

from repro.core.itemsets import ItemVocabulary
from repro.data.basket import BasketDatabase
from repro.data.io import (
    read_named_baskets,
    read_numeric_baskets,
    write_named_baskets,
    write_numeric_baskets,
)


class TestNamedFormat:
    def test_roundtrip(self, tmp_path):
        db = BasketDatabase.from_baskets([["tea", "coffee"], ["tea"], []])
        path = tmp_path / "baskets.txt"
        write_named_baskets(db, path)
        loaded = read_named_baskets(path)
        assert loaded.n_baskets == 3
        assert loaded.basket_names(0) == ("tea", "coffee")
        assert loaded[2] == ()

    def test_read_with_shared_vocabulary(self, tmp_path):
        path = tmp_path / "b.txt"
        path.write_text("b a\n", encoding="utf-8")
        vocab = ItemVocabulary(["a", "b"])
        db = read_named_baskets(path, vocabulary=vocab)
        assert db[0] == (0, 1)

    def test_empty_lines_are_empty_baskets(self, tmp_path):
        path = tmp_path / "b.txt"
        path.write_text("a\n\nb\n", encoding="utf-8")
        db = read_named_baskets(path)
        assert db.n_baskets == 3
        assert db[1] == ()


class TestNumericFormat:
    def test_roundtrip(self, tmp_path):
        db = BasketDatabase.from_id_baskets([[0, 2], [1], []], n_items=3)
        path = tmp_path / "baskets.dat"
        write_numeric_baskets(db, path)
        loaded = read_numeric_baskets(path, n_items=3)
        assert list(loaded) == list(db)

    def test_read_respects_n_items(self, tmp_path):
        path = tmp_path / "b.dat"
        path.write_text("0 1\n", encoding="utf-8")
        db = read_numeric_baskets(path, n_items=10)
        assert db.n_items == 10

    def test_read_bad_token_raises(self, tmp_path):
        path = tmp_path / "b.dat"
        path.write_text("0 x\n", encoding="utf-8")
        with pytest.raises(ValueError):
            read_numeric_baskets(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_numeric_baskets(tmp_path / "missing.dat")


class TestGzipTransparency:
    def test_named_gz_roundtrip(self, tmp_path):
        db = BasketDatabase.from_baskets([["tea", "coffee"], [], ["tea"]])
        path = tmp_path / "baskets.txt.gz"
        write_named_baskets(db, path)
        # The file really is gzip, not plain text.
        import gzip

        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"
        loaded = read_named_baskets(path)
        assert list(loaded) == list(db)

    def test_numeric_gz_roundtrip(self, tmp_path):
        db = BasketDatabase.from_id_baskets([[0, 1], [2], []], n_items=3)
        path = tmp_path / "baskets.dat.gz"
        write_numeric_baskets(db, path)
        loaded = read_numeric_baskets(path, n_items=3)
        assert list(loaded) == list(db)
