"""Unit tests for the text-to-basket pipeline."""

import pytest

from repro.data.text import TextPipeline, corpus_to_baskets, tokenize


class TestTokenize:
    def test_alphabetic_runs_only(self):
        assert tokenize("Hello, world! 42 times") == ["hello", "world", "times"]

    def test_possessive_splits(self):
        # Paper: "'s' as a possessive suffix would be its own word".
        assert tokenize("Mandela's party") == ["mandela", "s", "party"]

    def test_numbers_ignored(self):
        assert tokenize("1996 articles") == ["articles"]

    def test_lowercasing(self):
        assert tokenize("Liberia LIBERIA liberia") == ["liberia"] * 3

    def test_empty_text(self):
        assert tokenize("") == []

    def test_hyphenation_splits(self):
        assert tokenize("peace-keeping") == ["peace", "keeping"]


class TestTextPipeline:
    def test_short_documents_dropped(self):
        pipeline = TextPipeline(min_words=5, min_document_frequency=0.0)
        db = pipeline.run(["one two three four five", "too short"])
        assert db.n_baskets == 1

    def test_document_frequency_pruning(self):
        pipeline = TextPipeline(min_words=1, min_document_frequency=0.6)
        docs = ["common rare", "common", "common other"]
        db = pipeline.run(docs)
        assert "common" in db.vocabulary
        assert "rare" not in db.vocabulary
        assert "other" not in db.vocabulary

    def test_baskets_are_distinct_words(self):
        pipeline = TextPipeline(min_words=1, min_document_frequency=0.0)
        db = pipeline.run(["word word word other"])
        assert db.basket_names(0) == ("other", "word")

    def test_frequency_floor_is_fraction_of_kept_documents(self):
        # 4 docs, one dropped for length; floor 0.5 -> word must appear
        # in >= 1.5 of the 3 kept docs, i.e. 2.
        pipeline = TextPipeline(min_words=3, min_document_frequency=0.5)
        docs = [
            "alpha beta gamma",
            "alpha delta epsilon",
            "zeta eta theta",
            "x",  # dropped
        ]
        db = pipeline.run(docs)
        assert "alpha" in db.vocabulary
        assert "beta" not in db.vocabulary

    def test_validation(self):
        with pytest.raises(ValueError):
            TextPipeline(min_words=-1)
        with pytest.raises(ValueError):
            TextPipeline(min_document_frequency=1.5)

    def test_corpus_to_baskets_defaults(self):
        # The paper's defaults: 200-word floor, 10% df pruning.
        long_doc = " ".join(["word"] * 200)
        db = corpus_to_baskets([long_doc, "short"])
        assert db.n_baskets == 1
        assert "word" in db.vocabulary

    def test_vocabulary_sorted(self):
        pipeline = TextPipeline(min_words=1, min_document_frequency=0.0)
        db = pipeline.run(["zebra apple mango"])
        assert list(db.vocabulary) == sorted(db.vocabulary)
