"""Unit tests for the Quest synthetic generator (scaled-down settings)."""

import pytest

from repro.data.quest import QuestParameters, generate_quest


@pytest.fixture(scope="module")
def small_db():
    params = QuestParameters(
        n_transactions=2000,
        n_items=100,
        avg_transaction_size=10,
        avg_pattern_size=4,
        n_patterns=50,
        seed=7,
    )
    return generate_quest(params)


class TestParameters:
    def test_defaults_match_paper(self):
        params = QuestParameters()
        assert params.n_transactions == 99_997
        assert params.n_items == 870
        assert params.avg_transaction_size == 20.0
        assert params.avg_pattern_size == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QuestParameters(n_transactions=0)
        with pytest.raises(ValueError):
            QuestParameters(n_items=0)
        with pytest.raises(ValueError):
            QuestParameters(avg_transaction_size=0)
        with pytest.raises(ValueError):
            QuestParameters(correlation=1.5)
        with pytest.raises(ValueError):
            QuestParameters(n_patterns=0)


class TestGeneration:
    def test_shape(self, small_db):
        assert small_db.n_baskets == 2000
        assert small_db.n_items == 100

    def test_average_basket_size_near_target(self, small_db):
        sizes = [len(basket) for basket in small_db]
        assert sum(sizes) / len(sizes) == pytest.approx(10, rel=0.25)

    def test_items_in_range(self, small_db):
        for basket in small_db:
            assert all(0 <= item < 100 for item in basket)

    def test_no_duplicates_in_basket(self, small_db):
        for basket in small_db:
            assert len(basket) == len(set(basket))

    def test_deterministic(self):
        params = QuestParameters(n_transactions=50, n_items=30, n_patterns=10, seed=3)
        a = generate_quest(params)
        b = generate_quest(params)
        assert list(a) == list(b)

    def test_seed_changes_data(self):
        base = QuestParameters(n_transactions=50, n_items=30, n_patterns=10, seed=3)
        other = QuestParameters(n_transactions=50, n_items=30, n_patterns=10, seed=4)
        assert list(generate_quest(base)) != list(generate_quest(other))

    def test_pattern_structure_produces_correlations(self, small_db):
        """Planted patterns make some pair far more frequent than chance."""
        from repro.core.contingency import ContingencyTable
        from repro.core.correlation import chi_squared
        from repro.core.itemsets import Itemset

        counts = small_db.item_counts()
        popular = sorted(range(100), key=lambda i: -counts[i])[:12]
        best = max(
            chi_squared(
                ContingencyTable.from_database(small_db, Itemset([a, b]))
            )
            for i, a in enumerate(popular)
            for b in popular[i + 1:]
        )
        assert best > 50  # unmistakably non-independent
