"""Unit tests for the discretization schema."""

import pytest

from repro.data.discretize import (
    BinnedAttribute,
    BooleanAttribute,
    CategoryAttribute,
    ThresholdAttribute,
    discretize,
)


RECORDS = [
    {"married": True, "age": 35, "commute": "drives", "income": 30_000},
    {"married": False, "age": 52, "commute": "carpool", "income": 80_000},
    {"married": True, "age": 41, "commute": "none", "income": 55_000},
    {"married": False, "age": 28, "commute": "drives", "income": 20_000},
]


class TestBooleanAttribute:
    def test_truthiness(self):
        attribute = BooleanAttribute("married", "married")
        assert attribute.items_for(RECORDS[0]) == ["married"]
        assert attribute.items_for(RECORDS[1]) == []

    def test_predicate(self):
        attribute = BooleanAttribute("age", "adult", predicate=lambda v: v >= 18)
        assert attribute.items_for({"age": 20}) == ["adult"]
        assert attribute.items_for({"age": 10}) == []

    def test_missing_field_raises(self):
        with pytest.raises(KeyError):
            BooleanAttribute("nope", "x").items_for({"married": True})


class TestThresholdAttribute:
    def test_le_direction_matches_paper_i7(self):
        attribute = ThresholdAttribute("age", "age<=40", 40)
        assert attribute.items_for({"age": 40}) == ["age<=40"]
        assert attribute.items_for({"age": 41}) == []

    def test_ge_direction(self):
        attribute = ThresholdAttribute("income", "high", 50_000, direction="ge")
        assert attribute.items_for({"income": 50_000}) == ["high"]
        assert attribute.items_for({"income": 49_999}) == []

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            ThresholdAttribute("age", "x", 1, direction="lt")


class TestCategoryAttribute:
    def test_membership(self):
        attribute = CategoryAttribute("commute", "drives_alone", ["drives"])
        assert attribute.items_for(RECORDS[0]) == ["drives_alone"]
        assert attribute.items_for(RECORDS[1]) == []

    def test_multiple_values_collapse(self):
        attribute = CategoryAttribute("commute", "no_solo", ["carpool", "none"])
        assert attribute.items_for(RECORDS[1]) == ["no_solo"]
        assert attribute.items_for(RECORDS[2]) == ["no_solo"]

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            CategoryAttribute("commute", "x", [])


class TestBinnedAttribute:
    def test_manual_edges(self):
        attribute = BinnedAttribute("income", "income", [30_000, 60_000])
        assert attribute.items_for({"income": 10_000}) == ["income[0]"]
        assert attribute.items_for({"income": 30_000}) == ["income[1]"]
        assert attribute.items_for({"income": 99_000}) == ["income[2]"]
        assert attribute.item_names() == ["income[0]", "income[1]", "income[2]"]

    def test_equal_width(self):
        attribute = BinnedAttribute.equal_width("x", "x", [0, 10], bins=2)
        assert attribute.edges == (5.0,)

    def test_quantiles(self):
        attribute = BinnedAttribute.quantiles("x", "x", range(100), bins=4)
        assert len(attribute.edges) == 3
        assert attribute.edges[0] == pytest.approx(25, abs=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            BinnedAttribute("x", "x", [3, 1])
        with pytest.raises(ValueError):
            BinnedAttribute("x", "x", [1, 1])
        with pytest.raises(ValueError):
            BinnedAttribute.equal_width("x", "x", [5, 5], bins=2)
        with pytest.raises(ValueError):
            BinnedAttribute.equal_width("x", "x", [], bins=2)
        with pytest.raises(ValueError):
            BinnedAttribute.quantiles("x", "x", range(10), bins=1)


class TestDiscretize:
    def test_full_schema(self):
        schema = [
            BooleanAttribute("married", "married"),
            ThresholdAttribute("age", "age<=40", 40),
            CategoryAttribute("commute", "drives_alone", ["drives"]),
            BinnedAttribute("income", "income", [40_000]),
        ]
        db = discretize(RECORDS, schema)
        assert db.n_baskets == 4
        assert db.basket_names(0) == ("married", "age<=40", "drives_alone", "income[0]")
        assert db.basket_names(1) == ("income[1]",)

    def test_vocabulary_preseeded_and_stable(self):
        schema = [BinnedAttribute("income", "income", [40_000])]
        db = discretize(RECORDS[:1], schema)  # only bin 0 occurs
        assert list(db.vocabulary) == ["income[0]", "income[1]"]

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            discretize(RECORDS, [])

    def test_mined_end_to_end(self):
        """Discretized records feed straight into the miner."""
        import random

        from repro.algorithms.chi2support import ChiSquaredSupportMiner
        from repro.measures.cellsupport import CellSupport

        rng = random.Random(2)
        records = []
        for _ in range(400):
            age = rng.randint(18, 80)
            # Plant a dependence: older people are more often married.
            married = rng.random() < (0.25 if age <= 40 else 0.75)
            records.append({"age": age, "married": married})
        schema = [
            ThresholdAttribute("age", "age<=40", 40),
            BooleanAttribute("married", "married"),
        ]
        db = discretize(records, schema)
        result = ChiSquaredSupportMiner(support=CellSupport(5, 0.3)).mine(db)
        assert db.vocabulary.encode(["age<=40", "married"]) in {
            r.itemset for r in result.rules
        }
