"""Unit tests for iterative proportional fitting."""

import pytest

np = pytest.importorskip("numpy")

from repro.data.ipf import PairwiseTarget, fit_pairwise, materialize_counts


class TestPairwiseTarget:
    def test_normalized(self):
        target = PairwiseTarget(0, 1, (1.0, 1.0, 1.0, 1.0))
        assert target.normalized() == (0.25, 0.25, 0.25, 0.25)

    def test_rejects_self_pair(self):
        with pytest.raises(ValueError):
            PairwiseTarget(1, 1, (1, 1, 1, 1))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PairwiseTarget(0, 1, (-1, 1, 1, 1))

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            PairwiseTarget(0, 1, (0, 0, 0, 0))


class TestFitPairwise:
    def test_single_pair_exact(self):
        target = PairwiseTarget(0, 1, (0.1, 0.2, 0.3, 0.4))
        result = fit_pairwise(2, [target])
        assert result.converged
        assert result.pairwise(0, 1) == pytest.approx((0.1, 0.2, 0.3, 0.4), abs=1e-9)

    def test_consistent_three_attribute_system(self):
        # Independent attributes: targets are products of marginals.
        p = [0.3, 0.6, 0.5]

        def cells(a, b):
            return (
                (1 - p[a]) * (1 - p[b]),
                p[a] * (1 - p[b]),
                (1 - p[a]) * p[b],
                p[a] * p[b],
            )

        targets = [PairwiseTarget(a, b, cells(a, b)) for a in range(3) for b in range(a + 1, 3)]
        result = fit_pairwise(3, targets)
        assert result.converged
        for a in range(3):
            assert result.marginal(a) == pytest.approx(p[a], abs=1e-8)

    def test_mapping_input_form(self):
        result = fit_pairwise(2, {(0, 1): (0.25, 0.25, 0.25, 0.25)})
        assert result.pairwise(0, 1) == pytest.approx((0.25,) * 4, abs=1e-9)

    def test_zero_target_cell_honoured(self):
        target = PairwiseTarget(0, 1, (0.5, 0.0, 0.25, 0.25))
        result = fit_pairwise(2, [target])
        fitted = result.pairwise(0, 1)
        assert fitted[1] == pytest.approx(0.0, abs=1e-15)

    def test_joint_is_distribution(self):
        targets = [PairwiseTarget(0, 1, (0.4, 0.1, 0.1, 0.4))]
        result = fit_pairwise(4, targets)
        assert result.joint.sum() == pytest.approx(1.0)
        assert (result.joint >= 0).all()

    def test_attribute_out_of_range(self):
        with pytest.raises(ValueError):
            fit_pairwise(2, [PairwiseTarget(0, 5, (1, 1, 1, 1))])

    def test_inconsistent_targets_report_residual(self):
        # Marginal of attribute 0 differs between the two targets: IPF
        # cannot satisfy both, must still terminate with finite error.
        targets = [
            PairwiseTarget(0, 1, (0.4, 0.1, 0.4, 0.1)),  # p(a0) = 0.2
            PairwiseTarget(0, 2, (0.1, 0.4, 0.1, 0.4)),  # p(a0) = 0.8
        ]
        result = fit_pairwise(3, targets, max_iterations=50)
        assert not result.converged
        assert np.isfinite(result.max_error)


class TestMaterializeCounts:
    def test_exact_total(self):
        joint = np.array([0.3, 0.3, 0.4])
        counts = materialize_counts(joint, 10)
        assert counts.sum() == 10

    def test_largest_remainder(self):
        joint = np.array([0.5, 0.25, 0.25])
        counts = materialize_counts(joint, 2)
        assert counts.tolist() == [1, 1, 0] or counts.tolist() == [1, 0, 1]

    def test_deterministic(self):
        joint = np.random.default_rng(0).random(64)
        assert (materialize_counts(joint, 1000) == materialize_counts(joint, 1000)).all()

    def test_unnormalised_input_ok(self):
        counts = materialize_counts(np.array([2.0, 2.0]), 10)
        assert counts.tolist() == [5, 5]

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            materialize_counts(np.zeros(4), 5)

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            materialize_counts(np.array([1.0]), -1)
