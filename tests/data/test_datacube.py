"""Unit tests for the count datacube (§6 connection)."""

import pytest

from repro.core.contingency import ContingencyTable
from repro.core.itemsets import Itemset
from repro.data.basket import BasketDatabase
from repro.data.datacube import CountDatacube


@pytest.fixture
def db():
    return BasketDatabase.from_baskets(
        [["a", "b"], ["a", "b", "c"], ["a"], ["b"], ["b", "c"], ["c"], [], ["a", "c"]]
    )


class TestConstruction:
    def test_dimensions_sorted_deduped(self, db):
        cube = CountDatacube(db, [2, 0, 2])
        assert cube.dimensions == (0, 2)

    def test_rejects_empty_dimensions(self, db):
        with pytest.raises(ValueError):
            CountDatacube(db, [])

    def test_rejects_unknown_item(self, db):
        with pytest.raises(ValueError):
            CountDatacube(db, [0, 99])

    def test_occupied_bounded(self, db):
        cube = CountDatacube(db, [0, 1, 2])
        assert cube.n_occupied <= min(db.n_baskets, 8)
        assert cube.n == db.n_baskets


class TestQueries:
    def test_full_pattern_count(self, db):
        cube = CountDatacube(db, [0, 1, 2])
        assert cube.count({0: True, 1: True, 2: True}) == 1
        assert cube.count({0: False, 1: False, 2: False}) == 1

    def test_partial_pattern_marginalises(self, db):
        cube = CountDatacube(db, [0, 1, 2])
        assert cube.count({0: True}) == db.item_count(0)
        assert cube.count({0: True, 1: False}) == 2  # baskets {a}, {a,c}

    def test_support_count_matches_database(self, db):
        cube = CountDatacube(db, [0, 1, 2])
        for items in ([0], [0, 1], [1, 2], [0, 1, 2]):
            assert cube.support_count(Itemset(items)) == db.support_count(Itemset(items))

    def test_unknown_pattern_item_raises(self, db):
        cube = CountDatacube(db, [0, 1])
        with pytest.raises(KeyError):
            cube.count({2: True})


class TestRollUp:
    def test_table_for_matches_direct_construction(self, db):
        cube = CountDatacube(db, [0, 1, 2])
        for items in ([0, 1], [1, 2], [0, 1, 2], [0]):
            itemset = Itemset(items)
            rolled = cube.table_for(itemset)
            direct = ContingencyTable.from_database(db, itemset)
            assert rolled.n == direct.n
            for cell in direct.cells():
                assert rolled.observed(cell) == direct.observed(cell)

    def test_table_for_non_dimension_raises(self, db):
        cube = CountDatacube(db, [0, 1])
        with pytest.raises(KeyError):
            cube.table_for(Itemset([0, 2]))


class TestCubeBackedRandomWalk:
    def test_walk_results_match_database_backed(self):
        import random

        from repro.algorithms.randomwalk import RandomWalkMiner
        from repro.measures.cellsupport import CellSupport

        rng = random.Random(4)
        baskets = []
        for _ in range(300):
            basket = set()
            if rng.random() < 0.5:
                basket |= {0, 1}
            for item in range(2, 6):
                if rng.random() < 0.3:
                    basket.add(item)
            baskets.append(sorted(basket))
        db = BasketDatabase.from_id_baskets(baskets, n_items=6)
        cube = CountDatacube(db, range(6))
        kwargs = dict(support=CellSupport(5, 0.3), n_walks=100, seed=8)
        plain = RandomWalkMiner(**kwargs).mine(db)
        cubed = RandomWalkMiner(cube=cube, **kwargs).mine(db)
        assert [r.itemset for r in plain.rules] == [r.itemset for r in cubed.rules]
