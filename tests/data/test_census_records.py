"""Unit tests for the raw-records census pipeline."""

from collections import Counter

import pytest

pytest.importorskip("numpy", reason="census reconstruction (IPF) needs the [fast] extra")

from repro.data.census import synthesize_census
from repro.data.census_records import census_schema, synthesize_census_records
from repro.data.discretize import discretize


@pytest.fixture(scope="module")
def small_records():
    return synthesize_census_records(n=2000, seed=7)


class TestSchema:
    def test_item_order_matches_table1(self):
        schema = census_schema()
        names = [name for attribute in schema for name in attribute.item_names()]
        assert names == [f"i{j}" for j in range(10)]

    def test_i1_cross_field_semantics(self):
        schema = census_schema()
        i1 = schema[1]
        assert i1.items_for({"sex": "male", "children_borne": 5}) == ["i1"]
        assert i1.items_for({"sex": "female", "children_borne": 2}) == ["i1"]
        assert i1.items_for({"sex": "female", "children_borne": 3}) == []

    def test_i7_age_threshold(self):
        schema = census_schema()
        i7 = schema[7]
        assert i7.items_for({"age": 40}) == ["i7"]
        assert i7.items_for({"age": 41}) == []


class TestRecords:
    def test_record_fields(self, small_records):
        record = small_records[0]
        assert set(record) == {
            "commute",
            "sex",
            "children_borne",
            "veteran",
            "native_english",
            "us_citizen",
            "born_in_us",
            "married",
            "age",
            "householder",
        }

    def test_deterministic(self):
        a = synthesize_census_records(n=500, seed=3)
        b = synthesize_census_records(n=500, seed=3)
        assert a == b

    def test_ages_within_bands(self, small_records):
        for record in small_records:
            assert 18 <= record["age"] <= 90

    def test_no_male_with_three_children(self, small_records):
        for record in small_records:
            if record["sex"] == "male":
                assert record["children_borne"] < 3


class TestRoundTrip:
    def test_collapse_reproduces_basket_census_exactly(self, small_records):
        """Discretizing the raw records yields the exact basket multiset."""
        db_records = discretize(small_records, census_schema())
        db_baskets = synthesize_census(n=2000)
        assert db_records.n_items == db_baskets.n_items == 10
        assert Counter(db_records) == Counter(db_baskets)

    def test_mining_records_matches_example4(self):
        """Example 4's chi-squared emerges from the raw-record pipeline."""
        from repro.core.contingency import ContingencyTable
        from repro.core.correlation import chi_squared
        from repro.core.itemsets import Itemset

        records = synthesize_census_records()  # full n = 30370
        db = discretize(records, census_schema())
        value = chi_squared(ContingencyTable.from_database(db, Itemset([2, 7])))
        assert value == pytest.approx(2006.34, rel=0.05)
