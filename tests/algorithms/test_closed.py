"""Unit tests for maximal and closed frequent itemsets."""

import random

import pytest

from repro.algorithms.apriori import apriori
from repro.algorithms.closed import closed_frequent, maximal_frequent, support_border
from repro.core.itemsets import Itemset
from repro.data.basket import BasketDatabase


@pytest.fixture
def db():
    return BasketDatabase.from_baskets(
        [["a", "b", "c"]] * 10
        + [["a", "b"]] * 5
        + [["a"]] * 5
        + [["d"]] * 8
        + [[]] * 2
    )


class TestMaximalFrequent:
    def test_identifies_maximal_sets(self, db):
        result = apriori(db, min_support_count=8)
        maximal = maximal_frequent(result)
        # {a,b,c} has count 10; d has 8; everything else is dominated.
        assert Itemset([0, 1, 2]) in maximal
        assert db.vocabulary.encode(["d"]) in maximal
        assert Itemset([0, 1]) not in maximal

    def test_every_frequent_dominated_by_a_maximal(self, db):
        result = apriori(db, min_support_count=8)
        maximal = maximal_frequent(result)
        for itemset in result.itemsets():
            assert any(itemset.issubset(m) for m in maximal)

    def test_antichain(self, db):
        result = apriori(db, min_support_count=8)
        maximal = maximal_frequent(result)
        for i, a in enumerate(maximal):
            for b in maximal[i + 1:]:
                assert not a.issubset(b) and not b.issubset(a)

    def test_empty_result(self):
        db = BasketDatabase.from_baskets([["a"]])
        result = apriori(db, min_support_count=5)
        assert maximal_frequent(result) == []


class TestClosedFrequent:
    def test_closed_sets_have_strict_superset_supports(self, db):
        result = apriori(db, min_support_count=5)
        closed = closed_frequent(result)
        for itemset, count in closed.items():
            for other, other_count in result.counts.items():
                if itemset != other and itemset.issubset(other):
                    assert other_count < count

    def test_non_closed_excluded(self, db):
        # {b} (count 15) always co-occurs with a: {a,b} also 15 -> b not closed.
        result = apriori(db, min_support_count=5)
        closed = closed_frequent(result)
        b = db.vocabulary.encode(["b"])
        ab = db.vocabulary.encode(["a", "b"])
        assert b not in closed
        assert ab in closed

    def test_lossless_compression(self):
        """Support of any frequent itemset = max count over closed supersets."""
        rng = random.Random(9)
        baskets = [
            [i for i in range(5) if rng.random() < 0.45] for _ in range(200)
        ]
        db = BasketDatabase.from_id_baskets(baskets, n_items=5)
        result = apriori(db, min_support_count=10)
        closed = closed_frequent(result)
        for itemset, count in result.counts.items():
            recovered = max(
                (c for s, c in closed.items() if itemset.issubset(s)), default=None
            )
            assert recovered == count

    def test_maximal_subset_of_closed(self, db):
        result = apriori(db, min_support_count=5)
        closed = set(closed_frequent(result))
        for itemset in maximal_frequent(result):
            assert itemset in closed


class TestSupportBorder:
    def test_border_is_validated_antichain(self, db):
        result = apriori(db, min_support_count=8)
        border = support_border(result)
        border.validate()
        assert set(border.elements()) == set(maximal_frequent(result))
