"""Unit tests for the Apriori baseline."""

import pytest

from repro.algorithms.apriori import apriori, brute_force_frequent
from repro.core.itemsets import Itemset
from repro.data.basket import BasketDatabase


@pytest.fixture
def db():
    return BasketDatabase.from_baskets(
        [["a", "b", "c"]] * 4
        + [["a", "b"]] * 3
        + [["a", "c"]] * 2
        + [["b"]] * 1
        + [[]] * 2
    )


class TestApriori:
    def test_counts_correct(self, db):
        result = apriori(db, min_support_count=2)
        a, b, c = (db.vocabulary.id_of(x) for x in "abc")
        assert result.counts[Itemset([a])] == 9
        assert result.counts[Itemset([a, b])] == 7
        assert result.counts[Itemset([a, b, c])] == 4

    def test_threshold_excludes(self, db):
        result = apriori(db, min_support_count=5)
        b, c = db.vocabulary.id_of("b"), db.vocabulary.id_of("c")
        assert Itemset([b, c]) not in result  # count 4 < 5

    def test_relative_support_threshold(self, db):
        result = apriori(db, min_support=0.5)
        # n=12, threshold 6: {a}=9, {b}=8, {c}=6, {ab}=7, {ac}=6, {bc}=4.
        assert len(result.itemsets(1)) == 3
        assert set(result.itemsets(2)) == {
            db.vocabulary.encode(["a", "b"]),
            db.vocabulary.encode(["a", "c"]),
        }

    def test_exactly_one_threshold_kind(self, db):
        with pytest.raises(ValueError):
            apriori(db)
        with pytest.raises(ValueError):
            apriori(db, min_support=0.5, min_support_count=2)

    def test_invalid_thresholds(self, db):
        with pytest.raises(ValueError):
            apriori(db, min_support=0.0)
        with pytest.raises(ValueError):
            apriori(db, min_support=1.5)
        with pytest.raises(ValueError):
            apriori(db, min_support_count=0)

    def test_max_size_cap(self, db):
        result = apriori(db, min_support_count=2, max_size=2)
        assert result.itemsets(3) == []
        assert result.itemsets(2) != []

    def test_level_stats_recorded(self, db):
        result = apriori(db, min_support_count=2)
        assert result.level_stats[0].level == 1
        assert result.level_stats[0].frequent == 3
        assert result.level_stats[1].candidates == 3

    def test_support_accessor(self, db):
        result = apriori(db, min_support_count=2)
        a = db.vocabulary.encode(["a"])
        assert result.support(a) == pytest.approx(9 / 12)

    def test_downward_closure_of_output(self, db):
        result = apriori(db, min_support_count=2)
        for itemset in result.itemsets():
            for subset in itemset.immediate_subsets():
                if len(subset) >= 1:
                    assert subset in result

    @pytest.mark.parametrize("seed", [0, 1])
    def test_hashtree_counting_matches_bitmap(self, seed):
        import random

        rng = random.Random(seed)
        baskets = [
            [i for i in range(12) if rng.random() < 0.35] for _ in range(250)
        ]
        db = BasketDatabase.from_id_baskets(baskets, n_items=12)
        bitmap = apriori(db, min_support_count=15)
        hashtree = apriori(db, min_support_count=15, counting="hashtree")
        assert bitmap.counts == hashtree.counts

    def test_unknown_counting_rejected(self, db):
        with pytest.raises(ValueError):
            apriori(db, min_support_count=2, counting="psychic")

    def test_matches_brute_force(self):
        import random

        rng = random.Random(13)
        baskets = [
            [i for i in range(6) if rng.random() < 0.4] for _ in range(120)
        ]
        db = BasketDatabase.from_id_baskets(baskets, n_items=6)
        fast = apriori(db, min_support_count=8)
        slow = brute_force_frequent(db, min_support_count=8)
        assert fast.counts == slow

    def test_empty_database(self):
        db = BasketDatabase.from_baskets([])
        result = apriori(db, min_support_count=1)
        assert len(result) == 0

    def test_all_baskets_empty(self):
        db = BasketDatabase.from_baskets([[], [], []])
        result = apriori(db, min_support_count=1)
        assert len(result) == 0
