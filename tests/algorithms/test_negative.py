"""Unit tests for negative implication mining."""

import pytest

from repro.algorithms.negative import mine_negative_implications
from repro.core.itemsets import Itemset
from repro.data.basket import BasketDatabase


@pytest.fixture
def battery_catfood_db():
    """Batteries and cat food both common, almost never together."""
    return BasketDatabase.from_baskets(
        [["batteries"]] * 30
        + [["catfood"]] * 30
        + [["batteries", "catfood"]] * 1
        + [["bread"]] * 20
        + [["bread", "batteries"]] * 10
        + [[]] * 9
    )


class TestMining:
    def test_finds_planted_avoidance(self, battery_catfood_db):
        db = battery_catfood_db
        results = mine_negative_implications(db, min_item_count=20, max_cooccurrence=5)
        found = {implication.itemset for implication in results}
        assert db.vocabulary.encode(["batteries", "catfood"]) in found

    def test_reports_counts_and_expectation(self, battery_catfood_db):
        db = battery_catfood_db
        results = mine_negative_implications(db, min_item_count=20, max_cooccurrence=5)
        target = db.vocabulary.encode(["batteries", "catfood"])
        implication = next(i for i in results if i.itemset == target)
        assert implication.cooccurrences == 1
        # E = 41 * 31 / 100.
        assert implication.expected_cooccurrences == pytest.approx(41 * 31 / 100)
        assert implication.p_value < 0.05
        assert implication.fisher.odds_ratio < 1.0

    def test_positive_dependence_excluded(self):
        db = BasketDatabase.from_baskets(
            [["a", "b"]] * 40 + [["a"]] * 10 + [["b"]] * 10 + [[]] * 40
        )
        results = mine_negative_implications(db, min_item_count=10, max_cooccurrence=100)
        assert results == []

    def test_independent_items_excluded(self):
        db = BasketDatabase.from_baskets(
            [["a", "b"]] * 25 + [["a"]] * 25 + [["b"]] * 25 + [[]] * 25
        )
        results = mine_negative_implications(db, min_item_count=10, max_cooccurrence=100)
        assert results == []

    def test_rare_items_not_considered(self, battery_catfood_db):
        db = battery_catfood_db
        results = mine_negative_implications(db, min_item_count=50, max_cooccurrence=5)
        assert results == []  # nothing is that common

    def test_cooccurrence_ceiling_respected(self, battery_catfood_db):
        db = battery_catfood_db
        results = mine_negative_implications(db, min_item_count=20, max_cooccurrence=0)
        target = db.vocabulary.encode(["batteries", "catfood"])
        assert target not in {implication.itemset for implication in results}

    def test_sorted_by_p_value(self, battery_catfood_db):
        results = mine_negative_implications(
            battery_catfood_db, min_item_count=15, max_cooccurrence=10, significance=0.5
        )
        p_values = [implication.p_value for implication in results]
        assert p_values == sorted(p_values)

    def test_describe(self, battery_catfood_db):
        db = battery_catfood_db
        results = mine_negative_implications(db, min_item_count=20, max_cooccurrence=5)
        text = results[0].describe(db.vocabulary)
        assert "-/->" in text
        assert "exact p=" in text

    def test_validation(self, battery_catfood_db):
        with pytest.raises(ValueError):
            mine_negative_implications(battery_catfood_db, 0, 5)
        with pytest.raises(ValueError):
            mine_negative_implications(battery_catfood_db, 5, -1)
        with pytest.raises(ValueError):
            mine_negative_implications(battery_catfood_db, 5, 5, significance=1.0)
        with pytest.raises(ValueError):
            mine_negative_implications(BasketDatabase.from_baskets([]), 1, 1)

    def test_valid_on_rare_events_where_chi2_is_not(self):
        """The whole point: exact inference on the cells chi-squared
        cannot handle (anti-support + chi-squared is forbidden in §4)."""
        db = BasketDatabase.from_baskets(
            [["wiring_type_x"]] * 12 + [["fire"]] * 12 + [[]] * 6
        )
        results = mine_negative_implications(db, min_item_count=10, max_cooccurrence=0)
        # Zero co-occurrence of two common events in 30 baskets: the
        # exact test certifies the avoidance.
        assert len(results) == 1
        assert results[0].cooccurrences == 0
        assert results[0].p_value < 0.05
