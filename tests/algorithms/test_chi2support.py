"""Unit tests for the Figure 1 chi2-support miner."""

import pytest

from repro.algorithms.chi2support import (
    ChiSquaredSupportMiner,
    mine_significant_itemsets,
)
from repro.core.contingency import ContingencyTable
from repro.core.correlation import CorrelationTest, chi_squared
from repro.core.itemsets import Itemset
from repro.core.lattice import minimal_satisfying
from repro.data.basket import BasketDatabase
from repro.measures.cellsupport import AntiSupport, CellSupport


def make_db_with_planted_pair(seed=0, n=400):
    """Items 0-1 strongly correlated; 2-3 independent noise."""
    import random

    rng = random.Random(seed)
    baskets = []
    for _ in range(n):
        basket = []
        if rng.random() < 0.5:
            basket += [0, 1]
        elif rng.random() < 0.3:
            basket.append(rng.choice([0, 1]))
        for item in (2, 3):
            if rng.random() < 0.4:
                basket.append(item)
        baskets.append(basket)
    return BasketDatabase.from_id_baskets(baskets, n_items=4)


class TestBasicMining:
    def test_finds_planted_pair(self):
        db = make_db_with_planted_pair()
        result = ChiSquaredSupportMiner(support=CellSupport(5, 0.3)).mine(db)
        assert Itemset([0, 1]) in {r.itemset for r in result.rules}

    def test_independent_pair_in_notsig(self):
        db = make_db_with_planted_pair()
        result = ChiSquaredSupportMiner(support=CellSupport(5, 0.3)).mine(db)
        assert Itemset([2, 3]) in result.supported_uncorrelated

    def test_border_matches_rules(self):
        db = make_db_with_planted_pair()
        result = ChiSquaredSupportMiner(support=CellSupport(5, 0.3)).mine(db)
        assert {r.itemset for r in result.rules} >= set(result.border.elements())
        result.border.validate()

    def test_all_rules_are_significant_and_supported(self):
        db = make_db_with_planted_pair()
        support = CellSupport(5, 0.3)
        test = CorrelationTest(0.95)
        result = ChiSquaredSupportMiner(significance=0.95, support=support).mine(db)
        for rule in result.rules:
            table = ContingencyTable.from_database(db, rule.itemset)
            assert test.is_correlated(table)
            assert support(table)

    def test_empty_database_rejected(self):
        with pytest.raises(ValueError):
            ChiSquaredSupportMiner().mine(BasketDatabase.from_baskets([]))

    def test_rule_for_lookup(self):
        db = make_db_with_planted_pair()
        result = ChiSquaredSupportMiner(support=CellSupport(5, 0.3)).mine(db)
        assert result.rule_for(Itemset([0, 1])) is not None
        assert result.rule_for(Itemset([2, 3])) is None


class TestMinimality:
    def test_output_is_antichain(self):
        db = make_db_with_planted_pair(seed=5)
        result = ChiSquaredSupportMiner(support=CellSupport(2, 0.3)).mine(db)
        itemsets = [r.itemset for r in result.rules]
        for i, a in enumerate(itemsets):
            for b in itemsets[i + 1:]:
                assert not a.issubset(b) and not b.issubset(a)

    def test_supersets_of_sig_never_examined(self):
        """Significance pruning: correlated itemsets are not expanded."""
        db = make_db_with_planted_pair()
        result = ChiSquaredSupportMiner(support=CellSupport(2, 0.3)).mine(db)
        sig_pairs = {r.itemset for r in result.rules if len(r.itemset) == 2}
        for rule in result.rules:
            if len(rule.itemset) > 2:
                for pair in rule.itemset.subsets(2):
                    assert pair not in sig_pairs

    def test_matches_brute_force_border(self):
        """The miner's border equals brute-force minimal correlated+supported."""
        import random

        rng = random.Random(21)
        baskets = []
        for _ in range(300):
            basket = set()
            if rng.random() < 0.4:
                basket |= {0, 1}
            if rng.random() < 0.35:
                basket |= {2, 3}
            for item in range(5):
                if rng.random() < 0.3:
                    basket.add(item)
            baskets.append(sorted(basket))
        db = BasketDatabase.from_id_baskets(baskets, n_items=5)
        support = CellSupport(3, 0.3)
        test = CorrelationTest(0.95)

        result = ChiSquaredSupportMiner(significance=0.95, support=support).mine(db)

        # Ground truth via the lattice utility.  The miner's search space
        # is confined to itemsets whose subsets are supported and
        # uncorrelated, which matches minimal_satisfying over the
        # "supported and correlated" predicate only while support holds
        # below the border; enforce the same support-closure semantics.
        def significant(itemset: Itemset) -> bool:
            if len(itemset) < 2:
                return False
            table = ContingencyTable.from_database(db, itemset)
            if not support(table):
                return False
            # every proper subset of size >= 2 must be supported too
            # (the level-wise miner can only reach such itemsets)
            for k in range(2, len(itemset)):
                for sub in itemset.subsets(k):
                    if not support(ContingencyTable.from_database(db, sub)):
                        return False
            return test.is_correlated(table)

        expected = minimal_satisfying(range(5), significant, min_size=2)
        assert sorted(r.itemset for r in result.rules) == expected


class TestConfigurations:
    @pytest.mark.parametrize("backend", ["dict", "fks"])
    @pytest.mark.parametrize("counting", ["bitmap", "single_pass", "cube"])
    def test_backend_and_counting_equivalence(self, backend, counting):
        db = make_db_with_planted_pair(seed=9)
        result = ChiSquaredSupportMiner(
            support=CellSupport(5, 0.3),
            table_backend=backend,
            counting=counting,
        ).mine(db)
        baseline = ChiSquaredSupportMiner(support=CellSupport(5, 0.3)).mine(db)
        assert sorted(r.itemset for r in result.rules) == sorted(
            r.itemset for r in baseline.rules
        )

    def test_level1_pruning_does_not_change_output(self):
        db = make_db_with_planted_pair(seed=2)
        support = CellSupport(30, 0.5)
        with_pruning = ChiSquaredSupportMiner(support=support, level1_pruning=True).mine(db)
        without = ChiSquaredSupportMiner(support=support, level1_pruning=False).mine(db)
        assert sorted(r.itemset for r in with_pruning.rules) == sorted(
            r.itemset for r in without.rules
        )
        assert with_pruning.items_examined <= without.items_examined

    def test_g_statistic_variant(self):
        db = make_db_with_planted_pair()
        result = ChiSquaredSupportMiner(
            support=CellSupport(5, 0.3), statistic="g"
        ).mine(db)
        assert Itemset([0, 1]) in {r.itemset for r in result.rules}

    def test_max_level_cap(self):
        db = make_db_with_planted_pair()
        result = ChiSquaredSupportMiner(
            support=CellSupport(1, 0.26), max_level=2
        ).mine(db)
        assert all(len(r.itemset) == 2 for r in result.rules)

    def test_antisupport_rejected(self):
        with pytest.raises(ValueError):
            ChiSquaredSupportMiner(support=AntiSupport(5))

    def test_unknown_counting_rejected(self):
        with pytest.raises(ValueError):
            ChiSquaredSupportMiner(counting="magic")

    def test_unknown_statistic_rejected(self):
        with pytest.raises(ValueError):
            ChiSquaredSupportMiner(statistic="tau")


class TestLevelStats:
    def test_level2_bookkeeping(self):
        db = make_db_with_planted_pair()
        result = ChiSquaredSupportMiner(support=CellSupport(5, 0.3)).mine(db)
        level2 = result.level_stats[0]
        assert level2.level == 2
        assert level2.lattice_itemsets == 6  # C(4, 2)
        assert (
            level2.candidates
            == level2.discarded + level2.significant + level2.not_significant
        )

    def test_examined_matches_candidates(self):
        db = make_db_with_planted_pair()
        result = ChiSquaredSupportMiner(support=CellSupport(5, 0.3)).mine(db)
        assert result.items_examined == sum(s.candidates for s in result.level_stats)


class TestResultQueries:
    @pytest.fixture
    def result(self):
        db = make_db_with_planted_pair(seed=5)
        return ChiSquaredSupportMiner(support=CellSupport(2, 0.3)).mine(db)

    def test_rules_at_level(self, result):
        for rule in result.rules_at_level(2):
            assert len(rule.itemset) == 2
        total = sum(len(result.rules_at_level(k)) for k in range(2, 6))
        assert total == len(result.rules)

    def test_rules_containing(self, result):
        for rule in result.rules_containing(0):
            assert 0 in rule.itemset

    def test_top_sorted_by_statistic(self, result):
        top = result.top(3)
        assert len(top) <= 3
        statistics = [rule.statistic for rule in top]
        assert statistics == sorted(statistics, reverse=True)
        if result.rules:
            assert top[0].statistic == max(rule.statistic for rule in result.rules)


class TestConvenienceWrapper:
    def test_scalar_parameters(self):
        db = make_db_with_planted_pair()
        result = mine_significant_itemsets(db, support_count=5, support_fraction=0.3)
        assert Itemset([0, 1]) in {r.itemset for r in result.rules}
