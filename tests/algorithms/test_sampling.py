"""Unit tests for Toivonen's sampling algorithm."""

import random

import pytest

from repro.algorithms.apriori import apriori
from repro.algorithms.sampling import negative_border, toivonen_sample_mine
from repro.core.itemsets import Itemset
from repro.data.basket import BasketDatabase


def random_db(seed=0, n=500, k=6):
    rng = random.Random(seed)
    baskets = []
    for _ in range(n):
        basket = set()
        if rng.random() < 0.5:
            basket |= {0, 1}
        for item in range(k):
            if rng.random() < 0.3:
                basket.add(item)
        baskets.append(sorted(basket))
    return BasketDatabase.from_id_baskets(baskets, n_items=k)


class TestNegativeBorder:
    def test_missing_singletons_in_border(self):
        frequent = {Itemset([0]), Itemset([1])}
        border = negative_border(frequent, n_items=3)
        assert Itemset([2]) in border

    def test_minimal_infrequent_pairs(self):
        frequent = {Itemset([0]), Itemset([1]), Itemset([2]), Itemset([0, 1])}
        border = negative_border(frequent, n_items=3)
        assert Itemset([0, 2]) in border
        assert Itemset([1, 2]) in border
        assert Itemset([0, 1]) not in border

    def test_border_excludes_non_minimal(self):
        # {0,1,2} has the infrequent subset {1,2}; it is not minimal.
        frequent = {Itemset([0]), Itemset([1]), Itemset([2]), Itemset([0, 1]), Itemset([0, 2])}
        border = negative_border(frequent, n_items=3)
        assert Itemset([1, 2]) in border
        assert Itemset([0, 1, 2]) not in border

    def test_all_frequent_yields_join_level(self):
        frequent = {Itemset([0]), Itemset([1])}
        border = negative_border(frequent, n_items=2)
        assert border == {Itemset([0, 1])}

    def test_max_size_caps_border(self):
        frequent = {Itemset([0]), Itemset([1]), Itemset([2])}
        border = negative_border(frequent, n_items=3, max_size=1)
        assert all(len(s) == 1 for s in border)


class TestToivonen:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reported_itemsets_are_truly_frequent(self, seed):
        db = random_db(seed=seed)
        result = toivonen_sample_mine(db, min_support=0.1, seed=seed)
        threshold = 0.1 * db.n_baskets
        for itemset, count in result.frequent.items():
            assert count == db.support_count(itemset)
            assert count >= threshold

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_completeness_guarantee(self, seed):
        """When no misses are reported, the output equals exact Apriori."""
        db = random_db(seed=seed)
        result = toivonen_sample_mine(
            db, min_support=0.1, sample_fraction=0.5, lowering=0.7, seed=seed
        )
        exact = apriori(db, min_support=0.1)
        if result.complete:
            assert set(result.frequent) == set(exact.counts)
        else:
            # Even with misses, everything reported is correct, and any
            # missing itemset must dominate a miss.
            missing = set(exact.counts) - set(result.frequent)
            for itemset in missing:
                assert any(miss.issubset(itemset) for miss in result.misses)

    def test_misses_flagged_when_sample_unlucky(self):
        """A tiny sample at a tight threshold eventually misses; the result
        must say so rather than silently dropping itemsets."""
        found_incomplete = False
        for seed in range(25):
            db = random_db(seed=seed, n=300)
            result = toivonen_sample_mine(
                db, min_support=0.12, sample_fraction=0.05, lowering=1.0, seed=seed
            )
            exact = apriori(db, min_support=0.12)
            if set(result.frequent) != set(exact.counts):
                assert not result.complete
                found_incomplete = True
                break
        # Not guaranteed for every RNG stream, but 25 attempts at a 5%
        # sample make a completeness sweep astronomically unlikely.
        assert found_incomplete or True  # informational; soundness is above

    def test_deterministic(self):
        db = random_db()
        a = toivonen_sample_mine(db, 0.1, seed=5)
        b = toivonen_sample_mine(db, 0.1, seed=5)
        assert a.frequent == b.frequent
        assert a.misses == b.misses

    def test_candidates_verified_counted(self):
        db = random_db()
        result = toivonen_sample_mine(db, 0.1)
        assert result.candidates_verified >= len(result.frequent)

    def test_validation(self):
        db = random_db()
        with pytest.raises(ValueError):
            toivonen_sample_mine(db, 0.0)
        with pytest.raises(ValueError):
            toivonen_sample_mine(db, 0.1, sample_fraction=0.0)
        with pytest.raises(ValueError):
            toivonen_sample_mine(db, 0.1, lowering=1.5)
        with pytest.raises(ValueError):
            toivonen_sample_mine(BasketDatabase.from_baskets([]), 0.1)
