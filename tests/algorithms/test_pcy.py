"""Unit tests for the PCY hash-based miner."""

import random

import pytest

from repro.algorithms.apriori import apriori
from repro.algorithms.pcy import pcy
from repro.data.basket import BasketDatabase


def random_db(seed=0, n=300, k=8):
    rng = random.Random(seed)
    baskets = [
        [i for i in range(k) if rng.random() < 0.35] for _ in range(n)
    ]
    return BasketDatabase.from_id_baskets(baskets, n_items=k)


class TestPCY:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_output_identical_to_apriori(self, seed):
        """Collisions 'do not affect the final result' (paper §4)."""
        db = random_db(seed=seed)
        threshold = 20
        assert pcy(db, threshold).counts == apriori(db, min_support_count=threshold).counts

    def test_small_bucket_count_still_correct(self):
        # Heavy collisions: pruning weakens but output stays exact.
        db = random_db(seed=3)
        assert (
            pcy(db, 15, n_buckets=4).counts
            == apriori(db, min_support_count=15).counts
        )

    def test_bucket_pruning_reduces_candidates(self):
        db = random_db(seed=4, n=500, k=12)
        few_buckets = pcy(db, 60, n_buckets=8)
        many_buckets = pcy(db, 60, n_buckets=1 << 16)
        level2 = lambda r: next(s for s in r.level_stats if s.level == 2)
        assert level2(many_buckets).candidates <= level2(few_buckets).candidates
        assert many_buckets.pairs_pruned_by_buckets >= few_buckets.pairs_pruned_by_buckets

    def test_diagnostics_populated(self):
        db = random_db()
        result = pcy(db, 25, n_buckets=64)
        assert result.n_buckets == 64
        assert 0 <= result.frequent_buckets <= 64

    def test_to_apriori_result_view(self):
        db = random_db()
        result = pcy(db, 25)
        view = result.to_apriori_result()
        assert view.counts == result.counts
        assert view.n_baskets == db.n_baskets

    def test_max_size_cap(self):
        db = random_db(seed=6)
        result = pcy(db, 10, max_size=2)
        assert all(len(s) <= 2 for s in result.counts)

    def test_validation(self):
        db = random_db()
        with pytest.raises(ValueError):
            pcy(db, 0)
        with pytest.raises(ValueError):
            pcy(db, 5, n_buckets=0)
