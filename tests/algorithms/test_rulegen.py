"""Unit tests for association-rule generation."""

import pytest

from repro.algorithms.apriori import apriori
from repro.algorithms.rulegen import generate_rules, rules_for_itemset
from repro.core.itemsets import Itemset
from repro.data.basket import BasketDatabase


@pytest.fixture
def db(tea_coffee_db):
    return tea_coffee_db


class TestRulesForItemset:
    def test_example1_tea_coffee_rule(self, db):
        result = apriori(db, min_support_count=1)
        itemset = db.vocabulary.encode(["tea", "coffee"])
        rules = {
            (r.antecedent, r.consequent): r
            for r in rules_for_itemset(result, itemset, min_confidence=0.0)
        }
        tea = db.vocabulary.encode(["tea"])
        coffee = db.vocabulary.encode(["coffee"])
        rule = rules[(tea, coffee)]
        assert rule.support == pytest.approx(0.20)
        assert rule.confidence == pytest.approx(0.80)
        assert rule.lift == pytest.approx(0.2 / (0.25 * 0.9))

    def test_confidence_filter(self, db):
        result = apriori(db, min_support_count=1)
        itemset = db.vocabulary.encode(["tea", "coffee"])
        rules = list(rules_for_itemset(result, itemset, min_confidence=0.5))
        # tea => coffee has 0.8; coffee => tea has 2/9.
        assert len(rules) == 1
        assert rules[0].antecedent == db.vocabulary.encode(["tea"])

    def test_infrequent_itemset_raises(self, db):
        result = apriori(db, min_support_count=100)
        with pytest.raises(KeyError):
            list(rules_for_itemset(result, Itemset([0, 1]), 0.5))

    def test_triple_partitions(self):
        db = BasketDatabase.from_baskets(
            [["a", "b", "c"]] * 6 + [["a", "b"]] * 2 + [["c"]] * 2
        )
        result = apriori(db, min_support_count=1)
        rules = list(
            rules_for_itemset(result, db.vocabulary.encode(["a", "b", "c"]), 0.0)
        )
        assert len(rules) == 6  # 2^3 - 2 partitions


class TestGenerateRules:
    def test_all_rules_pass_confidence(self, db):
        result = apriori(db, min_support_count=1)
        for rule in generate_rules(result, min_confidence=0.6):
            assert rule.confidence >= 0.6

    def test_example2_confidence_not_upward_closed(self):
        """Reconstruct Example 2: c => d confident, {c,t} => d not."""
        # Percentages from the paper: with doughnuts P[c and d] = 48,
        # P[c] = 93; P[t and c and d] = 8, P[t and c] = 18.
        baskets = (
            [["c", "t", "d"]] * 8
            + [["c", "d"]] * 40
            + [["c", "t"]] * 10
            + [["c"]] * 35
            + [["d"]] * 4
            + [[]] * 3
        )
        db = BasketDatabase.from_baskets(baskets)
        result = apriori(db, min_support_count=1)
        c = db.vocabulary.encode(["c"])
        d = db.vocabulary.encode(["d"])
        ct = db.vocabulary.encode(["c", "t"])
        c_d = {
            (r.antecedent, r.consequent): r.confidence
            for r in generate_rules(result, min_confidence=0.01)
        }
        assert c_d[(c, d)] == pytest.approx(48 / 93, abs=1e-9)
        assert c_d[(ct, d)] == pytest.approx(8 / 18, abs=1e-9)
        # At the paper's 0.50 cutoff the subset rule passes, the superset fails.
        assert c_d[(c, d)] >= 0.5
        assert c_d[(ct, d)] < 0.5

    def test_invalid_confidence(self, db):
        result = apriori(db, min_support_count=1)
        with pytest.raises(ValueError):
            generate_rules(result, min_confidence=0.0)
        with pytest.raises(ValueError):
            generate_rules(result, min_confidence=1.2)

    def test_singletons_produce_no_rules(self):
        db = BasketDatabase.from_baskets([["a"], ["b"]])
        result = apriori(db, min_support_count=1)
        assert generate_rules(result, min_confidence=0.5) == []
