"""Unit tests for the random-walk border miner."""

import pytest

from repro.algorithms.chi2support import ChiSquaredSupportMiner
from repro.algorithms.randomwalk import RandomWalkMiner
from repro.core.correlation import CorrelationTest
from repro.data.basket import BasketDatabase
from repro.measures.cellsupport import CellSupport


def planted_db(seed=0):
    import random

    rng = random.Random(seed)
    baskets = []
    for _ in range(400):
        basket = set()
        if rng.random() < 0.45:
            basket |= {0, 1}
        for item in range(2, 6):
            if rng.random() < 0.35:
                basket.add(item)
        baskets.append(sorted(basket))
    return BasketDatabase.from_id_baskets(baskets, n_items=6)


class TestRandomWalk:
    def test_finds_planted_border_element(self):
        db = planted_db()
        result = RandomWalkMiner(
            support=CellSupport(5, 0.3), n_walks=300, seed=1
        ).mine(db)
        found = {r.itemset for r in result.rules}
        assert db.vocabulary.encode(["item0", "item1"]) in found

    def test_results_are_minimal(self):
        db = planted_db()
        test = CorrelationTest(0.95)
        result = RandomWalkMiner(
            support=CellSupport(5, 0.3), n_walks=300, seed=2
        ).mine(db)
        from repro.core.contingency import ContingencyTable

        for rule in result.rules:
            assert test.is_correlated(ContingencyTable.from_database(db, rule.itemset))
            for subset in rule.itemset.immediate_subsets():
                if len(subset) >= 2:
                    assert not test.is_correlated(
                        ContingencyTable.from_database(db, subset)
                    )

    def test_subset_of_levelwise_border(self):
        """Sampling never invents border elements the exact miner lacks."""
        db = planted_db(seed=3)
        support = CellSupport(5, 0.3)
        exact = ChiSquaredSupportMiner(support=support).mine(db)
        sampled = RandomWalkMiner(support=support, n_walks=200, seed=4).mine(db)
        exact_sets = {r.itemset for r in exact.rules}
        for rule in sampled.rules:
            # Random-walk minimisation ignores subset support, so it can
            # land on a minimal-correlated set the level-wise miner never
            # reached; but any set that IS reachable must be in the exact
            # border.
            if all(
                subset in {s for s in exact.supported_uncorrelated}
                for subset in rule.itemset.immediate_subsets()
                if len(subset) >= 2
            ) or len(rule.itemset) == 2:
                assert rule.itemset in exact_sets

    def test_deterministic_given_seed(self):
        db = planted_db()
        kwargs = dict(support=CellSupport(5, 0.3), n_walks=50, seed=9)
        a = RandomWalkMiner(**kwargs).mine(db)
        b = RandomWalkMiner(**kwargs).mine(db)
        assert [r.itemset for r in a.rules] == [r.itemset for r in b.rules]

    def test_max_statistic_prunes_obvious(self):
        db = planted_db()
        unfiltered = RandomWalkMiner(
            support=CellSupport(5, 0.3), n_walks=200, seed=5
        ).mine(db)
        filtered = RandomWalkMiner(
            support=CellSupport(5, 0.3), n_walks=200, seed=5, max_statistic=10.0
        ).mine(db)
        assert all(r.statistic <= 10.0 for r in filtered.rules)
        assert len(filtered.rules) <= len(unfiltered.rules)

    def test_counters(self):
        db = planted_db()
        result = RandomWalkMiner(support=CellSupport(5, 0.3), n_walks=40, seed=6).mine(db)
        assert result.walks == 40
        assert result.crossings + result.dead_ends <= 40 + result.crossings

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWalkMiner(n_walks=0)
        with pytest.raises(ValueError):
            RandomWalkMiner(max_steps=0)

    def test_empty_db_rejected(self):
        with pytest.raises(ValueError):
            RandomWalkMiner().mine(BasketDatabase.from_baskets([]))

    def test_single_item_universe_rejected(self):
        db = BasketDatabase.from_baskets([["only"]])
        with pytest.raises(ValueError):
            RandomWalkMiner().mine(db)
