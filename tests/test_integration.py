"""End-to-end integration tests: full pipelines over the paper's datasets."""

import pytest

from repro import (
    ChiSquaredSupportMiner,
    CellSupport,
    RandomWalkMiner,
    apriori,
    generate_rules,
    mine_correlations,
)
from repro.core.itemsets import Itemset
from repro.data.corpusgen import generate_news_corpus
from repro.data.quest import QuestParameters, generate_quest
from repro.data.text import TextPipeline


class TestCensusPipeline:
    def test_full_mine_at_paper_settings(self, census_db):
        """Mining the census at 95% / 1% support reproduces §5.1's shape:
        most pairs correlated, the immigration/children pairs not."""
        support = CellSupport(count=0.01 * census_db.n_baskets, fraction=0.26)
        result = ChiSquaredSupportMiner(significance=0.95, support=support).mine(census_db)
        significant_pairs = {r.itemset for r in result.rules if len(r.itemset) == 2}
        # "so many pairs are correlated": at least 35 of 45.
        assert len(significant_pairs) >= 35
        # "we are struck by {i1, i4} and {i1, i5}, which are not".
        assert Itemset([1, 4]) not in significant_pairs
        assert Itemset([1, 5]) not in significant_pairs
        # Example 4's pair is among them.
        assert Itemset([2, 7]) in significant_pairs

    def test_minimality_pushes_triples_out(self, census_db):
        """With nearly every pair correlated, minimal triples are rare."""
        support = CellSupport(count=0.01 * census_db.n_baskets, fraction=0.26)
        result = ChiSquaredSupportMiner(significance=0.95, support=support).mine(census_db)
        pairs = sum(1 for r in result.rules if len(r.itemset) == 2)
        triples = sum(1 for r in result.rules if len(r.itemset) == 3)
        assert triples < pairs

    def test_random_walk_agrees_on_census_pairs(self, census_db):
        support = CellSupport(count=0.01 * census_db.n_baskets, fraction=0.26)
        exact = ChiSquaredSupportMiner(significance=0.95, support=support).mine(census_db)
        sampled = RandomWalkMiner(support=support, n_walks=150, seed=3).mine(census_db)
        exact_pairs = {r.itemset for r in exact.rules if len(r.itemset) == 2}
        sampled_pairs = {r.itemset for r in sampled.rules if len(r.itemset) == 2}
        assert sampled_pairs <= exact_pairs
        assert len(sampled_pairs) > 10


class TestTextPipeline:
    @pytest.fixture(scope="class")
    def text_db(self):
        return TextPipeline().run(generate_news_corpus())

    def test_corpus_shape(self, text_db):
        # 91 documents; a few hundred surviving words, as in §5.2.
        assert text_db.n_baskets == 91
        assert 50 <= text_db.n_items <= 600

    def test_planted_correlations_recovered(self, text_db):
        # max_level=3: like the paper, we report word pairs and triples;
        # the uncorrelated background vocabulary makes deeper levels
        # combinatorially explosive without adding reportable rules.
        support = CellSupport(count=5, fraction=0.3)
        result = ChiSquaredSupportMiner(
            significance=0.95, support=support, max_level=3
        ).mine(text_db)
        found = {r.itemset for r in result.rules}
        mandela = text_db.vocabulary.encode(["mandela", "nelson"])
        liberia = text_db.vocabulary.encode(["liberia", "west"])
        assert mandela in found
        assert liberia in found

    def test_major_dependence_is_co_presence(self, text_db):
        support = CellSupport(count=5, fraction=0.3)
        result = ChiSquaredSupportMiner(
            significance=0.95, support=support, max_level=2
        ).mine(text_db)
        mandela = text_db.vocabulary.encode(["mandela", "nelson"])
        rule = result.rule_for(mandela)
        assert rule is not None
        assert rule.major_dependence().pattern == (True, True)


class TestQuestPipeline:
    @pytest.fixture(scope="class")
    def quest_db(self):
        return generate_quest(
            QuestParameters(n_transactions=5000, n_items=150, n_patterns=80, seed=11)
        )

    def test_mining_terminates_with_stats(self, quest_db):
        counts = sorted(quest_db.item_counts(), reverse=True)
        s = counts[30]
        support = CellSupport(count=s, fraction=0.6)
        result = ChiSquaredSupportMiner(significance=0.95, support=support).mine(quest_db)
        assert result.level_stats[0].level == 2
        stats = result.level_stats[0]
        assert stats.candidates == stats.discarded + stats.significant + stats.not_significant

    def test_pruning_reduces_examined(self, quest_db):
        counts = sorted(quest_db.item_counts(), reverse=True)
        s = counts[30]
        support = CellSupport(count=s, fraction=0.6)
        result = ChiSquaredSupportMiner(significance=0.95, support=support).mine(quest_db)
        total_lattice = sum(level.lattice_itemsets for level in result.level_stats)
        assert result.items_examined < total_lattice / 10

    def test_apriori_on_quest(self, quest_db):
        result = apriori(quest_db, min_support=0.02, max_size=3)
        rules = generate_rules(result, min_confidence=0.6)
        # Planted patterns guarantee some confident rules.
        assert len(result) > 0
        assert all(r.confidence >= 0.6 for r in rules)


class TestCrossSystemPipelines:
    def test_streaming_quest_file_mining(self, tmp_path):
        """Generate Quest data, write it to disk, mine it as a stream."""
        from repro.data.io import write_numeric_baskets
        from repro.data.streaming import StreamingBasketDatabase

        db = generate_quest(
            QuestParameters(n_transactions=2000, n_items=80, n_patterns=40, seed=17)
        )
        path = tmp_path / "quest.dat"
        write_numeric_baskets(db, path)
        stream = StreamingBasketDatabase(path, numeric=True)

        counts = sorted(db.item_counts(), reverse=True)
        support = CellSupport(count=counts[20], fraction=0.6)
        in_memory = ChiSquaredSupportMiner(support=support, max_level=2).mine(db)
        streamed = ChiSquaredSupportMiner(
            support=support, max_level=2, counting="single_pass"
        ).mine(stream)
        assert {r.itemset for r in streamed.rules} == {
            r.itemset for r in in_memory.rules
        }

    def test_toivonen_agrees_with_apriori_on_quest(self):
        from repro.algorithms.sampling import toivonen_sample_mine

        db = generate_quest(
            QuestParameters(n_transactions=3000, n_items=60, n_patterns=30, seed=19)
        )
        result = toivonen_sample_mine(
            db, min_support=0.05, sample_fraction=0.5, lowering=0.7, max_size=3, seed=2
        )
        exact = apriori(db, min_support=0.05, max_size=3)
        if result.complete:
            assert set(result.frequent) == set(exact.counts)
        for itemset, count in result.frequent.items():
            assert count == exact.counts.get(itemset, db.support_count(itemset))

    def test_cli_mine_reproduces_example4_decision(self, tmp_path, capsys):
        """End to end through the CLI: census file in, i2/i7 rule out."""
        pytest.importorskip("numpy", reason="census synthesis needs the [fast] extra")
        from repro.cli import main
        from repro.data.io import write_named_baskets

        # Synthesize a smaller deterministic slice; the pairwise
        # structure is preserved by the IPF construction.
        from repro.data.census import synthesize_census

        db = synthesize_census(n=10_000)
        path = tmp_path / "census.txt"
        write_named_baskets(db, path)
        code = main(
            [
                "mine",
                "--input",
                str(path),
                "--support-count",
                "100",
                "--support-fraction",
                "0.26",
                "--limit",
                "100",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "i2 i7" in out

    def test_robust_test_on_census_pair(self, census_db):
        """The healthy census pairs go through the chi-squared branch."""
        from repro.core.contingency import ContingencyTable
        from repro.core.correlation import robust_independence_test

        table = ContingencyTable.from_database(census_db, Itemset([2, 7]))
        result = robust_independence_test(table)
        assert result.method == "chi2"
        assert result.correlated


class TestPublicAPISurface:
    def test_star_import_clean(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet(self):
        from repro import BasketDatabase, mine_correlations

        db = BasketDatabase.from_baskets(
            [["tea", "coffee"]] * 45 + [["tea"]] * 5 + [["coffee"]] * 25 + [[]] * 25
        )
        result = mine_correlations(db, significance=0.95, support_count=5, support_fraction=0.3)
        assert [db.vocabulary.decode(r.itemset) for r in result.rules] == [("tea", "coffee")]
