"""Run the doctests embedded in the library's docstrings.

The usage examples in docstrings are part of the public documentation;
this keeps them executable and honest.
"""

import doctest

import pytest

import repro.algorithms.chi2support
import repro.core.correlation
import repro.core.itemsets
import repro.core.mining
import repro.data.datacube

MODULES = [
    repro.core.itemsets,
    repro.core.correlation,
    repro.core.mining,
    repro.algorithms.chi2support,
    repro.data.datacube,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"expected doctests in {module.__name__}"
