"""Tests for the streaming mining service (:mod:`repro.service`)."""
