"""Failure injection for the streaming service.

A long-lived server earns its keep on the bad days: malformed input,
a counting backend blowing up mid-append, clients hammering append and
query concurrently.  In every case the invariant is the same — the
previous generation stays fully queryable and nothing observes a
half-applied append.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

import repro.core.mining as mining_module
from repro.obs import Telemetry
from repro.service import MiningService, serve


def request(base, method, path, body=None, raw=None):
    data = raw if raw is not None else (
        json.dumps(body).encode() if body is not None else None
    )
    req = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture
def server():
    service = MiningService(telemetry=Telemetry.create())
    http_server = serve(service, max_body_bytes=2048)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    host, port = http_server.server_address[:2]
    try:
        yield service, f"http://{host}:{port}"
    finally:
        http_server.shutdown()
        http_server.server_close()
        thread.join(timeout=5)


def seed(service):
    service.append([["tea", "coffee"]] * 4 + [["milk"]] * 2)


class TestMalformedRequests:
    """Bad input gets a 4xx and leaves the index untouched."""

    def test_malformed_json_body(self, server):
        service, base = server
        seed(service)
        status, payload = request(base, "POST", "/append", raw=b"{nope")
        assert status == 400
        assert "malformed JSON" in payload["error"]
        assert service.miner.generation == 1

    def test_wrong_body_shapes(self, server):
        service, base = server
        seed(service)
        for body in (
            [],  # not an object
            {},  # missing baskets
            {"baskets": "tea coffee"},  # not a list of lists
            {"baskets": [["a"]], "numeric": "yes"},  # non-bool flag
        ):
            status, payload = request(base, "POST", "/append", body=body)
            assert status == 400, body
            assert "error" in payload
        assert service.miner.generation == 1
        assert service.miner.db.n_baskets == 6

    def test_oversized_body_rejected_unread(self, server):
        service, base = server
        seed(service)
        big = json.dumps({"baskets": [["spam"]] * 400}).encode()
        assert len(big) > 2048
        status, payload = request(base, "POST", "/append", raw=big)
        assert status == 413
        assert "exceeds" in payload["error"]
        # Nothing from the oversized body reached the index.
        assert service.miner.generation == 1
        assert "spam" not in service.miner.db.vocabulary

    def test_unknown_paths_and_methods(self, server):
        _, base = server
        assert request(base, "GET", "/nope")[0] == 404
        assert request(base, "GET", "/append")[0] == 405
        assert request(base, "POST", "/status", body={})[0] == 405

    def test_bad_query_parameters(self, server):
        service, base = server
        seed(service)
        assert request(base, "GET", "/query/topk?k=banana")[0] == 400
        assert request(base, "GET", "/query/topk?k=0")[0] == 400
        status, payload = request(base, "POST", "/query/itemset", body={"items": ["tea"]})
        assert status == 400
        status, payload = request(
            base, "POST", "/query/itemset", body={"items": ["tea", "unobtainium"]}
        )
        assert status == 400
        assert "unknown item" in payload["error"]
        # The service still answers good queries afterwards.
        status, payload = request(
            base, "POST", "/query/itemset", body={"items": ["tea", "coffee"]}
        )
        assert status == 200
        assert payload["correlated"] is True


class TestBackendFailureMidAppend:
    """A counting backend exploding mid-append must not commit anything."""

    def test_previous_generation_survives(self, monkeypatch):
        service = MiningService()
        seed(service)
        before_status = service.status()
        before_rules = service.significant()

        def explode(self, db, itemsets):
            raise RuntimeError("backend exploded mid-count")

        monkeypatch.setattr(
            mining_module._IncrementalTableEngine, "_count", explode
        )
        with pytest.raises(RuntimeError, match="backend exploded"):
            service.append([["tea", "sugar"], ["sugar"]])
        monkeypatch.undo()

        after_status = service.status()
        for key in ("generation", "n_baskets", "n_items", "significant"):
            assert after_status[key] == before_status[key]
        assert service.significant()["rules"] == before_rules["rules"]
        assert "sugar" not in service.miner.db.vocabulary
        # And the service recovers: the same append succeeds post-fault.
        outcome = service.append([["tea", "sugar"], ["sugar"]])
        assert outcome["generation"] == 2
        assert outcome["n_baskets"] == 8

    def test_http_append_failure_returns_500(self, monkeypatch):
        service = MiningService()
        http_server = serve(service)
        thread = threading.Thread(target=http_server.serve_forever, daemon=True)
        thread.start()
        host, port = http_server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            seed(service)

            def explode(self, db, itemsets):
                raise RuntimeError("backend exploded mid-count")

            monkeypatch.setattr(
                mining_module._IncrementalTableEngine, "_count", explode
            )
            status, payload = request(
                base, "POST", "/append", body={"baskets": [["tea", "oops"]]}
            )
            assert status == 500
            assert "internal error" in payload["error"]
            monkeypatch.undo()
            status, payload = request(base, "GET", "/status")
            assert status == 200
            assert payload["generation"] == 1
            assert payload["n_baskets"] == 6
        finally:
            http_server.shutdown()
            http_server.server_close()
            thread.join(timeout=5)


class TestConcurrentAppendAndQuery:
    """No query may observe a half-grown index.

    Each status response must be internally consistent: at generation g
    the basket count is exactly ``seed + g - 1`` for this schedule, so
    any torn read (generation advanced but counts not, or vice versa)
    shows up as a mismatched pair.
    """

    def test_status_always_consistent(self):
        service = MiningService()
        service.append([["tea", "coffee"]] * 3 + [["milk"]])  # generation 1, 4 baskets
        appends = 30
        errors = []
        stop = threading.Event()

        def appender():
            try:
                for _ in range(appends):
                    service.append([["tea", "coffee"]])
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)
            finally:
                stop.set()

        def querier():
            try:
                while not stop.is_set():
                    status = service.status()
                    expected = 4 + (status["generation"] - 1)
                    if status["n_baskets"] != expected:
                        errors.append(
                            AssertionError(
                                f"torn read: generation {status['generation']} "
                                f"with {status['n_baskets']} baskets"
                            )
                        )
                    correlation = service.correlation(["tea", "coffee"])
                    table_n = correlation["n"]
                    if table_n != 4 + (correlation["generation"] - 1):
                        errors.append(
                            AssertionError(
                                f"torn table: generation {correlation['generation']} "
                                f"with n={table_n}"
                            )
                        )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=appender)] + [
            threading.Thread(target=querier) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert service.miner.generation == 1 + appends
        assert service.miner.db.n_baskets == 4 + appends


class TestSpansClosedOnErrorPaths:
    """Every request span must finish even when the handler raises."""

    @staticmethod
    def walk(spans):
        for span in spans:
            yield span
            yield from TestSpansClosedOnErrorPaths.walk(span.children)

    def assert_all_finished(self, telemetry):
        spans = list(self.walk(telemetry.tracer.roots))
        assert spans, "expected at least one recorded span"
        unfinished = [span.name for span in spans if not span.finished]
        assert not unfinished

    def test_query_errors_close_spans(self):
        telemetry = Telemetry.create()
        service = MiningService(telemetry=telemetry)
        seed(service)
        with pytest.raises(ValueError):
            service.top_k(k=0)
        with pytest.raises(ValueError):
            service.correlation(["tea"])
        with pytest.raises(ValueError):
            service.correlation(["tea", "unobtainium"])
        self.assert_all_finished(telemetry)
        counters = telemetry.metrics.snapshot()["counters"]
        errored = {
            key: value
            for key, value in counters.items()
            if "service_requests" in key and 'status="error"' in key
        }
        assert sum(sorted(errored.values())) == 3

    def test_append_failure_closes_spans(self, monkeypatch):
        telemetry = Telemetry.create()
        service = MiningService(telemetry=telemetry)
        seed(service)

        def explode(self, db, itemsets):
            raise RuntimeError("backend exploded mid-count")

        monkeypatch.setattr(
            mining_module._IncrementalTableEngine, "_count", explode
        )
        with pytest.raises(RuntimeError):
            service.append([["tea", "sugar"]])
        self.assert_all_finished(telemetry)
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters.get('service_requests{endpoint="append",status="error"}') == 1
