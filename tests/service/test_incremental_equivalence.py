"""Differential harness: incremental mining == batch mining, bit for bit.

The streaming service's whole claim is that
:class:`~repro.core.mining.IncrementalMiner` maintains, across any
schedule of appends, exactly the state a cold
:class:`~repro.algorithms.chi2support.ChiSquaredSupportMiner` run over
the accumulated database would produce.  These tests generate append
schedules with hypothesis — interleaved appends, brand-new vocabulary
items, duplicate items within a basket, empty baskets, empty appends —
and assert bit-identical results (statistics compared with ``==``, not
``approx``) at *every* generation, across the counting backends.
"""

import importlib.util

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.chi2support import ChiSquaredSupportMiner
from repro.core.mining import IncrementalMiner
from repro.data.basket import BasketDatabase
from repro.measures.cellsupport import CellSupport

# A small universe keeps mining per example cheap while still producing
# multi-level borders; the n* names only ever appear in later appends,
# exercising vocabulary growth mid-stream.
CORE_ITEMS = ["tea", "coffee", "milk", "sugar", "bread"]
LATE_ITEMS = ["nova0", "nova1", "nova2"]

baskets_strategy = st.lists(
    st.lists(st.sampled_from(CORE_ITEMS + LATE_ITEMS), max_size=4),
    max_size=6,
)
schedule_strategy = st.lists(baskets_strategy, min_size=1, max_size=4)


def canonical(result):
    """Everything observable about a mining run, in comparable form."""
    if result is None:
        return None
    return {
        "rules": sorted(
            (rule.itemset.items, rule.statistic, rule.p_value, rule.minimal)
            for rule in result.rules
        ),
        "border": sorted(itemset.items for itemset in result.border),
        "levels": [
            (
                stats.level,
                stats.lattice_itemsets,
                stats.candidates,
                stats.discarded,
                stats.significant,
                stats.not_significant,
            )
            for stats in result.level_stats
        ],
        "supported_uncorrelated": sorted(
            itemset.items for itemset in result.supported_uncorrelated
        ),
    }


def batch_mine(baskets, counting, **params):
    db = BasketDatabase.from_baskets(baskets)
    miner = ChiSquaredSupportMiner(
        significance=params.get("significance", 0.95),
        support=CellSupport(
            params.get("support_count", 1), params.get("support_fraction", 0.26)
        ),
        counting=counting,
    )
    return miner.mine(db), db


def assert_generation_equivalent(incremental_result, all_baskets, counting, **params):
    if not all_baskets:
        # Nothing appended yet: the batch miner refuses an empty
        # database and the incremental miner has no result either.
        assert incremental_result is None
        return None
    batch_result, batch_db = batch_mine(all_baskets, counting, **params)
    assert canonical(incremental_result) == canonical(batch_result)
    return batch_db


HAVE_NUMPY = importlib.util.find_spec("numpy") is not None

BACKENDS = [
    "bitmap",
    "single_pass",
    pytest.param(
        "vectorized",
        marks=pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy"),
    ),
]


@pytest.mark.parametrize("counting", BACKENDS)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(schedule=schedule_strategy)
def test_every_generation_matches_batch(counting, schedule):
    miner = IncrementalMiner(counting=counting)
    accumulated = []
    for chunk in schedule:
        outcome = miner.append(chunk)
        accumulated.extend(chunk)
        assert outcome.generation == miner.generation
        assert outcome.n_baskets == len(accumulated)
        assert_generation_equivalent(miner.result, accumulated, counting)


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(schedule=st.lists(baskets_strategy, min_size=1, max_size=2))
def test_parallel_backend_matches_batch(schedule):
    miner = IncrementalMiner(counting="parallel", workers=2)
    accumulated = []
    for chunk in schedule:
        miner.append(chunk)
        accumulated.extend(chunk)
        assert_generation_equivalent(miner.result, accumulated, "parallel")


class TestScheduleEdges:
    """Deterministic schedules for the edge cases the spec calls out."""

    def test_empty_append_reuses_result(self):
        miner = IncrementalMiner()
        first = miner.append([["tea", "coffee"], ["tea", "coffee"], ["milk"]])
        second = miner.append([])
        assert second.generation == first.generation + 1
        assert second.n_appended == 0
        assert miner.result is first.result
        assert_generation_equivalent(
            miner.result, [["tea", "coffee"], ["tea", "coffee"], ["milk"]], "bitmap"
        )

    def test_empty_baskets_count_toward_n(self):
        miner = IncrementalMiner()
        baskets = [["tea", "coffee"]] * 4 + [[]] * 6
        miner.append(baskets)
        db = assert_generation_equivalent(miner.result, baskets, "bitmap")
        assert db.n_baskets == 10
        assert miner.db.n_baskets == 10

    def test_duplicate_items_within_basket(self):
        miner = IncrementalMiner()
        appended = [["tea", "tea", "coffee"], ["coffee", "coffee"]]
        miner.append(appended)
        # from_baskets dedupes within a basket; the miner must agree.
        assert_generation_equivalent(miner.result, appended, "bitmap")
        assert miner.db.n_items == 2
        # tea occurs in one basket, coffee in both — each counted once
        # per basket regardless of repetition within the basket.
        assert miner.db.item_counts() == (1, 2)

    def test_all_new_vocabulary_append(self):
        miner = IncrementalMiner()
        miner.append([["a", "b"], ["a", "b"], ["c"]])
        miner.append([["x", "y"], ["x", "y"], ["x", "y"]])
        assert_generation_equivalent(
            miner.result,
            [["a", "b"], ["a", "b"], ["c"], ["x", "y"], ["x", "y"], ["x", "y"]],
            "bitmap",
        )

    def test_duplicate_baskets_across_appends(self):
        miner = IncrementalMiner()
        basket = ["tea", "coffee", "milk"]
        accumulated = []
        for _ in range(4):
            miner.append([basket, basket])
            accumulated.extend([basket, basket])
            assert_generation_equivalent(miner.result, accumulated, "bitmap")

    def test_numeric_appends(self):
        miner = IncrementalMiner()
        miner.append([[0, 1], [0, 1], [2]], numeric=True)
        miner.append([[0, 1, 3]], numeric=True)
        batch = BasketDatabase.from_id_baskets(
            [(0, 1), (0, 1), (2,), (0, 1, 3)], n_items=4
        )
        result = ChiSquaredSupportMiner().mine(batch)
        assert canonical(miner.result) == canonical(result)

    def test_failed_append_preserves_previous_generation(self):
        miner = IncrementalMiner()
        miner.append([["tea", "coffee"], ["tea", "coffee"], ["milk"]])
        before = canonical(miner.result)
        generation = miner.generation
        with pytest.raises(ValueError):
            miner.append([[-1, 2]], numeric=True)
        assert miner.generation == generation
        assert canonical(miner.result) == before
        assert miner.db.n_baskets == 3

    def test_cross_append_cache_reuse_is_reported(self):
        miner = IncrementalMiner()
        miner.append([["tea", "coffee", "milk"]] * 3 + [["bread"]] * 2)
        # No new candidates appear: every base table is served from the
        # cumulative cell store; only the small delta is counted.
        outcome = miner.append([["bread"]])
        assert outcome.tables_served > 0
        assert outcome.tables_recounted == 0
        # A brand-new item creates candidates the store has never seen,
        # so those (and only those) get a base recount.
        outcome = miner.append([["tea", "nova"], ["tea", "nova"], ["tea", "nova"]])
        assert outcome.tables_recounted > 0
        assert outcome.tables_served > 0


class TestTopKConsistency:
    """The service's FP-tree top-K over the grown database matches a
    cold FP-tree engine over the equivalent batch database."""

    def test_topk_matches_batch_engine(self):
        pytest.importorskip("repro.fptree")
        from repro.fptree import FPTreePairEngine
        from repro.service import MiningService

        service = MiningService()
        accumulated = []
        schedules = [
            [["tea", "coffee"], ["tea", "coffee"], ["milk", "sugar"]],
            [["tea", "coffee", "milk"], ["sugar"], []],
            [["nova", "tea"], ["nova", "tea"], ["nova", "coffee"]],
        ]
        for chunk in schedules:
            service.append(chunk)
            accumulated.extend(chunk)
            payload = service.top_k(k=5, min_cooccurrence=1)
            batch_db = BasketDatabase.from_baskets(accumulated)
            batch = FPTreePairEngine(batch_db).top_k(5, min_cooccurrence=1)
            expected = batch.to_dict(batch_db.vocabulary)
            for key in ("entries", "k", "min_cooccurrence", "n_baskets"):
                assert payload[key] == expected[key]

    def test_topk_generation_cache_invalidated_by_append(self):
        from repro.service import MiningService

        service = MiningService()
        service.append([["a", "b"], ["a", "b"], ["c"]])
        first = service.top_k(k=3)
        assert service._fptree_generation == 1
        engine = service._fptree
        again = service.top_k(k=3)
        assert service._fptree is engine  # reused within a generation
        assert again["entries"] == first["entries"]
        service.append([["a", "c"], ["a", "c"]])
        service.top_k(k=3)
        assert service._fptree is not engine  # rebuilt after the append
        assert service._fptree_generation == 2
