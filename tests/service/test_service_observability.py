"""Live observability of the streaming service over real HTTP.

Every response must carry a request id that correlates the wire, the
event log, and the flight recorder; ``/metrics`` must serve validator-
clean Prometheus text (or the JSON snapshot under content negotiation);
a forced 5xx must leave a flight dump on disk.  The hammer test scrapes
``/metrics`` while appends and queries run from other threads — every
scrape must parse, every status read must be monotone.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

import repro.core.mining as mining_module
from repro.obs import (
    EXPOSITION_CONTENT_TYPE,
    FakeClock,
    Telemetry,
    validate_exposition,
)
from repro.service import MiningService, serve


def request(base, method, path, body=None, headers=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        base + path, data=data, method=method, headers=headers or {}
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def body_json(raw):
    return json.loads(raw)


@pytest.fixture
def server(tmp_path):
    service = MiningService(telemetry=Telemetry.create())
    http_server = serve(service, flight_dump_path=str(tmp_path / "flight-5xx.json"))
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    host, port = http_server.server_address[:2]
    try:
        yield service, http_server, f"http://{host}:{port}"
    finally:
        http_server.shutdown()
        http_server.server_close()
        thread.join(timeout=5)


def seed(service):
    service.append([["tea", "coffee"]] * 4 + [["milk"]] * 2)


class TestRequestIdCorrelation:
    def test_header_matches_body_and_ids_are_sequential(self, server):
        service, _, base = server
        seed(service)
        ids = []
        for _ in range(3):
            status, headers, raw = request(base, "GET", "/status")
            assert status == 200
            header_id = headers["X-Request-Id"]
            assert body_json(raw)["request_id"] == header_id
            ids.append(header_id)
        assert ids == ["req-00000001", "req-00000002", "req-00000003"]

    def test_error_responses_also_carry_the_id(self, server):
        _, _, base = server
        status, headers, raw = request(base, "GET", "/nope")
        assert status == 404
        assert body_json(raw)["request_id"] == headers["X-Request-Id"]

    def test_id_reaches_event_log_and_flight_verbatim(self, server):
        service, http_server, base = server
        seed(service)
        status, headers, raw = request(
            base, "POST", "/append", body={"baskets": [["tea", "scone"]]}
        )
        assert status == 200
        request_id = headers["X-Request-Id"]

        events = service.telemetry.events.for_request(request_id)
        assert events, "no events correlated to the request id"
        assert {event["event"] for event in events} >= {
            "service.request",
            "service.append",
        }
        assert all(event["request_id"] == request_id for event in events)

        entries = http_server.flight.for_request(request_id)
        assert len(entries) == 1
        entry = entries[0]
        assert entry["path"] == "/append"
        assert entry["status"] == 200
        assert entry["trace"]["name"] == "service.append"
        assert any(event["request_id"] == request_id for event in entry["events"])


class TestMetricsEndpoint:
    def test_default_is_validator_clean_prometheus_text(self, server):
        service, _, base = server
        seed(service)
        request(base, "GET", "/status")
        status, headers, raw = request(base, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"] == EXPOSITION_CONTENT_TYPE
        text = raw.decode("utf-8")
        assert validate_exposition(text) == []
        assert "service_requests" in text

    def test_accept_json_returns_the_snapshot(self, server):
        service, _, base = server
        seed(service)
        status, headers, raw = request(
            base, "GET", "/metrics", headers={"Accept": "application/json"}
        )
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        snapshot = body_json(raw)
        assert set(snapshot) >= {"counters", "gauges", "histograms", "request_id"}

    def test_engine_counters_surface_after_parallel_append(self):
        service = MiningService(
            telemetry=Telemetry.create(), counting="parallel", workers=2
        )
        seed(service)
        # The append ran through the parallel engine inside its own run
        # telemetry; the service folded the engine counters into its
        # lifetime registry, so they appear in what /metrics serves.
        snapshot = service.metrics_snapshot()
        assert any(key.startswith("pool_events") for key in snapshot["counters"])


class TestFlightEndpoint:
    def test_debug_flight_shows_a_forced_4xx(self, server):
        service, _, base = server
        seed(service)
        request(base, "GET", "/definitely/not/a/path")
        status, _, raw = request(base, "GET", "/debug/flight")
        assert status == 200
        dump = body_json(raw)
        entries = [e for e in dump["entries"] if e["path"] == "/definitely/not/a/path"]
        assert len(entries) == 1
        assert entries[0]["status"] == 404
        # The dump is snapshotted before the /debug/flight response is
        # recorded, so the 404 is the only entry at this point.
        assert dump["recorded"] == 1

    def test_unhandled_5xx_writes_the_dump_file(self, server, monkeypatch, tmp_path):
        service, http_server, base = server
        seed(service)

        def explode(self, db, itemsets):
            raise RuntimeError("backend exploded mid-count")

        monkeypatch.setattr(mining_module._IncrementalTableEngine, "_count", explode)
        status, headers, raw = request(
            base, "POST", "/append", body={"baskets": [["tea", "oops"]]}
        )
        assert status == 500
        failing_id = headers["X-Request-Id"]

        dump_path = tmp_path / "flight-5xx.json"
        assert dump_path.exists(), "5xx did not write the flight dump"
        dump = json.loads(dump_path.read_text())
        failing = [e for e in dump["entries"] if e["request_id"] == failing_id]
        assert len(failing) == 1
        assert failing[0]["status"] == 500
        assert failing[0]["path"] == "/append"


class TestProfileEndpoint:
    def test_profile_returns_a_collapsed_stack_report(self, server):
        _, _, base = server
        status, headers, raw = request(base, "GET", "/debug/profile?seconds=1")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert raw.decode().startswith("# sampling profile:")

    def test_profile_rejects_bad_seconds(self, server):
        _, _, base = server
        assert request(base, "GET", "/debug/profile?seconds=0")[0] == 400
        assert request(base, "GET", "/debug/profile?seconds=banana")[0] == 400


class TestScrapeHammer:
    """Appends, queries, and scrapes from many threads at once.

    Every ``/metrics`` scrape must be a valid exposition (no torn
    snapshot), every status read must see a non-decreasing generation,
    and nothing may 5xx.
    """

    def test_concurrent_scrapes_stay_coherent(self, server):
        service, _, base = server
        seed(service)
        appends = 15
        errors = []
        stop = threading.Event()

        def appender():
            try:
                for _ in range(appends):
                    status, _, raw = request(
                        base, "POST", "/append", body={"baskets": [["tea", "coffee"]]}
                    )
                    if status != 200:
                        errors.append(AssertionError(f"append -> {status}: {raw!r}"))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)
            finally:
                stop.set()

        def scraper():
            try:
                while not stop.is_set():
                    status, headers, raw = request(base, "GET", "/metrics")
                    if status != 200:
                        errors.append(AssertionError(f"scrape -> {status}"))
                        continue
                    problems = validate_exposition(raw.decode("utf-8"))
                    if problems:
                        errors.append(AssertionError(f"invalid exposition: {problems}"))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def querier():
            last_generation = 0
            try:
                while not stop.is_set():
                    status, _, raw = request(base, "GET", "/status")
                    if status != 200:
                        errors.append(AssertionError(f"status -> {status}"))
                        continue
                    generation = body_json(raw)["generation"]
                    if generation < last_generation:
                        errors.append(
                            AssertionError(
                                f"generation went backwards: "
                                f"{last_generation} -> {generation}"
                            )
                        )
                    last_generation = generation
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = (
            [threading.Thread(target=appender)]
            + [threading.Thread(target=scraper) for _ in range(2)]
            + [threading.Thread(target=querier) for _ in range(2)]
        )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert service.miner.generation == 1 + appends

        # The post-hammer scrape still round-trips the validator.
        _, _, raw = request(base, "GET", "/metrics")
        assert validate_exposition(raw.decode("utf-8")) == []


class TestDeterministicTranscript:
    """Two identically-scripted servers under FakeClock agree byte-for-byte."""

    @staticmethod
    def run_script():
        service = MiningService(telemetry=Telemetry.create(clock=FakeClock()))
        http_server = serve(service)
        thread = threading.Thread(target=http_server.serve_forever, daemon=True)
        thread.start()
        host, port = http_server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            request(base, "POST", "/append", body={"baskets": [["tea", "coffee"]] * 3})
            request(base, "GET", "/status")
            request(base, "GET", "/nope")
            _, _, exposition = request(base, "GET", "/metrics")
            events = service.telemetry.events.render_lines()
            flight = http_server.flight.to_json()
        finally:
            http_server.shutdown()
            http_server.server_close()
            thread.join(timeout=5)
        return exposition, events, flight

    def test_exposition_events_and_flight_are_byte_identical(self):
        first = self.run_script()
        second = self.run_script()
        assert first == second
