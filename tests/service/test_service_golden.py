"""Golden wire-format regression for the mining service.

A scripted append/query session over Quest data, run against a real
HTTP server, captured byte for byte.  Two guarantees under test:

* the *wire bytes* are canonical — every response parses back to JSON
  that re-serialises to exactly the bytes received (``sort_keys`` plus
  one trailing newline, no timing data anywhere);
* the *session transcript* matches ``tests/golden/service_session.json``
  exactly, so any change to response shapes, mining output, or
  incremental bookkeeping shows up as a reviewable fixture diff.

Regenerate after an intentional change with::

    GOLDEN_REGENERATE=1 PYTHONPATH=src python -m pytest tests/service/test_service_golden.py
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.data.quest import QuestParameters, generate_quest
from repro.service import MiningService, serve
from tests.goldens import check_against_golden


@pytest.fixture(scope="module")
def quest_baskets():
    db = generate_quest(
        QuestParameters(seed=97, n_transactions=80, n_items=14, n_patterns=6)
    )
    return [list(basket) for basket in db]


def raw_request(base, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def test_scripted_session_matches_golden(quest_baskets):
    service = MiningService(support_count=3, support_fraction=0.3)
    server = serve(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"

    script = [
        ("GET", "/healthz", None),
        ("POST", "/append", {"baskets": quest_baskets[:50], "numeric": True}),
        ("GET", "/status", None),
        ("POST", "/append", {"baskets": quest_baskets[50:], "numeric": True}),
        ("POST", "/append", {"baskets": [], "numeric": True}),
        ("GET", "/status", None),
        ("GET", "/query/significant?limit=5", None),
        ("GET", "/query/topk?k=4&min_cooccurrence=2", None),
        ("POST", "/query/itemset", {"items": [0, 1]}),
        ("POST", "/query/itemset", {"items": ["item2", "item3"]}),
        ("POST", "/query/itemset", {"items": [0, 1]}),  # cache hit path
        ("GET", "/status", None),
        ("GET", "/nowhere", None),
        ("POST", "/query/itemset", {"items": [0]}),
    ]

    transcript = []
    try:
        for method, path, body in script:
            status, raw = raw_request(base, method, path, body)
            payload = json.loads(raw)
            # Canonical wire bytes: what we got is exactly what a
            # sort_keys re-serialisation produces.
            assert raw == (json.dumps(payload, sort_keys=True) + "\n").encode()
            transcript.append(
                {
                    "request": {"method": method, "path": path, "body": body},
                    "status": status,
                    "response": payload,
                }
            )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    check_against_golden("service_session", {"session": transcript})


def test_session_is_reproducible(quest_baskets):
    """Two cold services given the same script agree response for response."""

    def run():
        service = MiningService(support_count=3, support_fraction=0.3)
        out = []
        out.append(service.append(quest_baskets[:50], numeric=True))
        out.append(service.append(quest_baskets[50:], numeric=True))
        out.append(service.significant(limit=5))
        out.append(service.top_k(k=4, min_cooccurrence=2))
        out.append(service.correlation([0, 1]))
        return json.dumps(out, sort_keys=True)

    assert run() == run()
