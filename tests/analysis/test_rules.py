"""Fixture-driven checks: every RPR rule flags its violating fixture and
passes its clean twin, and the drift rule cross-checks file trios."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import REGISTRY, lint

FIXTURES = Path(__file__).resolve().parent / "fixtures"

MODULE_RULES = [
    "RPR001",
    "RPR002",
    "RPR003",
    "RPR005",
    "RPR006",
    "RPR007",
    "RPR008",
    "RPR009",
    "RPR010",
    "RPR011",
    "RPR013",
]


def lint_fixture(name: str, select: list[str] | None = None):
    return lint(paths=[FIXTURES / name], root=FIXTURES, select=select)


@pytest.mark.parametrize("rule_id", MODULE_RULES)
def test_violating_fixture_is_flagged(rule_id: str):
    report = lint_fixture(f"{rule_id.lower()}_violation.py", select=[rule_id])
    assert not report.clean, f"{rule_id} missed its violating fixture"
    assert {v.rule for v in report.violations} == {rule_id}
    assert report.exit_code() == 1


@pytest.mark.parametrize("rule_id", MODULE_RULES)
def test_clean_fixture_passes(rule_id: str):
    report = lint_fixture(f"{rule_id.lower()}_clean.py", select=[rule_id])
    assert report.clean, [v.render() for v in report.violations]
    assert report.exit_code() == 0


@pytest.mark.parametrize("rule_id", MODULE_RULES)
def test_violating_fixture_fails_under_full_rule_set(rule_id: str):
    """Acceptance criterion: the unrestricted linter rejects each fixture."""
    report = lint_fixture(f"{rule_id.lower()}_violation.py")
    assert rule_id in {v.rule for v in report.violations}
    assert report.exit_code() == 1


def test_rpr004_flags_drifted_trio():
    report = lint_fixture("rpr004_violation", select=["RPR004"])
    flagged = {v.path.rsplit("/", 1)[-1] for v in report.violations}
    # The miner declares "gpu"; both the CLI and the suite lag behind.
    assert flagged == {"cli.py", "test_backend_equivalence.py"}
    assert all(v.rule == "RPR004" for v in report.violations)
    assert any("gpu" in v.message for v in report.violations)


def test_rpr004_passes_consistent_trio():
    report = lint_fixture("rpr004_clean", select=["RPR004"])
    assert report.clean, [v.render() for v in report.violations]


def test_rpr009_catches_the_seeded_borrowed_segment_leak():
    """Acceptance: the segment passed to a helper (borrowed, not
    transferred) and never released is flagged as a leak."""
    report = lint_fixture("rpr009_violation.py", select=["RPR009"])
    messages = [v.message for v in report.violations]
    assert any(
        "shared-memory segment 'shm' is not released" in message
        for message in messages
    )
    # The exception-edge variant is distinguished from the normal-path one.
    assert any("leaks if line" in message for message in messages)
    # And the span sub-check fires for discarded and never-entered spans.
    assert any("discarded" in message for message in messages)
    assert any("never entered" in message for message in messages)


def test_rpr010_names_the_producer_in_the_message():
    report = lint_fixture("rpr010_violation.py", select=["RPR010"])
    assert any("occupied_cells()" in v.message for v in report.violations)
    assert any("dict returned by" in v.message for v in report.violations)


def test_rpr011_catches_the_seeded_lock_capture_and_the_global_backdoor():
    """Acceptance: a lock in the task payload is flagged, and so is a
    task that reaches a module-global lock through the call graph."""
    report = lint_fixture("rpr011_violation.py", select=["RPR011"])
    messages = [v.message for v in report.violations]
    assert any(
        "'lock' (synchronization primitive) is captured" in message
        for message in messages
    )
    assert any("'self._log' (open file handle)" in message for message in messages)
    assert any(
        "reads module-global '_STATE_LOCK'" in message for message in messages
    )


def test_rpr012_flags_drifted_trio():
    report = lint_fixture("rpr012_violation", select=["RPR012"])
    flagged = {v.path.rsplit("/", 1)[-1] for v in report.violations}
    # The API kept a renamed parameter; the CLI advertises a lost flag.
    assert flagged == {"mining.py", "cli.py"}
    assert any("min_confidence" in v.message for v in report.violations)
    assert any("--chi2-cutoff" in v.message for v in report.violations)


def test_rpr012_passes_consistent_trio():
    report = lint_fixture("rpr012_clean", select=["RPR012"])
    assert report.clean, [v.render() for v in report.violations]


def test_rpr001_violation_line_numbers_point_at_the_comparison():
    report = lint_fixture("rpr001_violation.py", select=["RPR001"])
    source = (FIXTURES / "rpr001_violation.py").read_text().splitlines()
    for violation in report.violations:
        assert "==" in source[violation.line - 1] or "!=" in source[violation.line - 1]


def test_rule_scoping_walked_vs_explicit():
    """dir_scope binds tree walks but never explicitly-passed files."""
    rpr001 = REGISTRY["RPR001"]
    assert rpr001.applies_to("src/repro/stats/chi2.py")
    assert rpr001.applies_to("src/repro/core/correlation.py")
    assert not rpr001.applies_to("tests/stats/test_chi2.py")
    assert rpr001.applies_to("tests/stats/test_chi2.py", explicit=True)

    rpr002 = REGISTRY["RPR002"]
    assert rpr002.applies_to("src/repro/data/ipf.py")
    # kernels/ is the NumPy home; exempt even when passed explicitly.
    assert not rpr002.applies_to("src/repro/kernels/sweep.py")
    assert not rpr002.applies_to("src/repro/kernels/sweep.py", explicit=True)
