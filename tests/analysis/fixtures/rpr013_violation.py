"""Fixture: direct clock reads in library code (RPR013)."""

import time as walltime
from time import perf_counter


def time_a_batch(kernel, batch):
    start = perf_counter()
    kernel(batch)
    return perf_counter() - start


def deadline_in(seconds):
    return walltime.monotonic() + seconds


def stamp_event(record):
    record["ts"] = walltime.time()
    return record
