"""Fixture: a suppression with no justification clause (RPR000)."""


def risky(action):
    try:
        action()
    except ValueError:  # replint: disable=RPR006
        pass
