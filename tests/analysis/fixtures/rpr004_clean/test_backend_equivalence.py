"""Fixture suite: backend tuple matching the miner exactly (RPR004)."""

COUNTING_BACKENDS = ("bitmap", "single_pass", "vectorized")
