"""Fixture CLI: --counting choices matching the miner exactly (RPR004)."""

import argparse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--counting",
        choices=["bitmap", "single_pass", "vectorized"],
        default="bitmap",
    )
    return parser
