"""Fixture miner: backend names consistent across all three files (RPR004)."""


class Miner:
    def __init__(self, counting: str = "bitmap") -> None:
        if counting not in ("bitmap", "single_pass", "vectorized"):
            raise ValueError(f"unknown counting strategy {counting!r}")
        self.counting = counting
