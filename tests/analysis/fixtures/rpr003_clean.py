"""Fixture: canonical-order iteration for every accumulation (RPR003)."""


def total_mass(weights: dict[int, float]) -> float:
    return sum(weights[cell] for cell in sorted(weights))


def accumulate(cells: dict[int, float]) -> list[float]:
    marginals = [0.0, 0.0]
    for cell in sorted(cells):
        marginals[cell % 2] += cells[cell]
    return marginals


def emit_candidates(items: set[int]) -> list[int]:
    out: list[int] = []
    for item in sorted(items):
        out.append(item * 2)
    return out


def count_members(items: set[int]) -> int:
    return sum(1 for item in items if item > 0)  # integer counting is exact


def transform(items: set[int]) -> dict[int, int]:
    mapping = {}
    for item in items:  # no accumulation: dict assembly is order-free
        mapping[item] = item * 2
    return mapping
