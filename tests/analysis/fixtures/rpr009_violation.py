"""Fixture: resources leaked on some control-flow path (RPR009).

The first function is the seeded bug from the acceptance criteria: a
shared-memory segment handed to a helper (borrowing, not an ownership
transfer) and then dropped on the floor — exactly the /dev/shm corpse
the real transport guards against.
"""

from multiprocessing.shared_memory import SharedMemory
from multiprocessing.pool import Pool


def ship_to_worker(baskets, do_work):
    # Seeded bug: passing the segment to do_work() is borrowing; nobody
    # ever closes or unlinks it, on any path.
    shm = SharedMemory(create=True, size=max(1, len(baskets)))
    do_work(shm)
    return len(baskets)


def pack_then_cleanup(baskets, fill):
    # The happy path cleans up, but fill() can raise and there is no
    # try/finally — the exception edge skips both cleanups.
    shm = SharedMemory(create=True, size=64)
    fill(shm, baskets)
    shm.close()
    shm.unlink()


def early_return_leak(baskets, fill):
    # One branch returns before the cleanup runs.
    shm = SharedMemory(create=True, size=64)
    if not baskets:
        return 0
    fill(shm, baskets)
    shm.close()
    shm.unlink()
    return len(baskets)


def dump_report(report, path, render):
    # Same exception-edge hole for a plain file handle.
    handle = open(path, "w")
    handle.write(render(report))
    handle.close()


def count_parallel(shards, work):
    # The pool is never closed, terminated, or joined.
    pool = Pool(4)
    results = pool.map(work, shards)
    return results


def time_packing(tracer):
    # A discarded span never starts its timer and records nothing.
    tracer.span("pack")


def time_mining(tracer, mine):
    # Bound but never entered: same dangling span, one step removed.
    mining_span = tracer.span("mine")
    result = mine()
    return result, mining_span
