"""Fixture: fork-unsafe state captured into worker tasks (RPR011).

The first function is the seeded bug from the acceptance criteria: a
freshly created lock shipped to workers as a task argument — fork
copies it (possibly held), and the children deadlock.
"""

import threading
from multiprocessing.pool import Pool

_STATE_LOCK = threading.Lock()


def count_with_lock(shard, lock):
    with lock:
        return len(shard)


def mine_parallel(pool, shards):
    # Seeded bug: the parent's lock travels in the task payload.
    lock = threading.Lock()
    return [pool.apply_async(count_with_lock, (shard, lock)) for shard in shards]


def init_worker(handle):
    return handle


def spin_up_with_handle(path):
    # An open file handle smuggled in through initargs: parent and
    # children now share one file offset.
    handle = open(path, "a")
    return Pool(4, initializer=init_worker, initargs=(handle,))


class InstrumentedEngine:
    def __init__(self, path):
        self._log = open(path, "a")

    def run(self, pool, shard):
        # A self-attribute handle captured into the payload.
        return pool.apply_async(count_with_lock, (shard, self._log))


def guarded_count(shard):
    # Reads the module-global lock created at import time.
    with _STATE_LOCK:
        return len(shard)


def fan_out(pool, shards):
    # The payload is clean, but the task transitively reaches the
    # module-global lock — the forked child inherits it live.
    return pool.map(guarded_count, shards)
