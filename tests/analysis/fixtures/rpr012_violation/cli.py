"""Fixture CLI: the mine subcommand advertises a flag the miner lost."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser(prog="repro")
    sub = parser.add_subparsers(dest="command")
    mine = sub.add_parser("mine")
    mine.add_argument("--input")
    mine.add_argument("--significance", type=float)
    mine.add_argument("--max-level", type=int)
    mine.add_argument("--chi2-cutoff", type=float)  # matches no miner knob
    return parser
