"""Fixture API: mine_correlations drifted from the miner's knobs."""


def mine_correlations(
    db,
    significance=0.05,
    support_count=None,
    support_fraction=None,
    min_confidence=0.6,  # renamed away in the miner; crashes at dispatch
    telemetry=None,
):
    return db, significance, support_count, support_fraction, min_confidence
