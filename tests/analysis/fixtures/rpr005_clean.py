"""Fixture: only module-level (picklable) callables reach the pool (RPR005)."""

import multiprocessing


def _task(v):
    return v * 2


def _init_worker():
    pass


def run(values):
    with multiprocessing.Pool(2, initializer=_init_worker) as pool:
        return pool.map(_task, values)


def local_use_is_fine(values):
    def helper(v):  # never crosses a process boundary
        return v * 2

    return [helper(v) for v in values]
