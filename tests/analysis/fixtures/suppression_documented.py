"""Fixture: a justified suppression silences its violation cleanly."""


def risky(action):
    try:
        action()
    except ValueError:  # replint: disable=RPR006 -- fixture demonstrating a documented escape
        pass
