"""Fixture: library output through logging / returned strings (RPR007)."""

import logging

logger = logging.getLogger(__name__)


def mine_level(candidates):
    logger.info("level started with %d candidates", len(candidates))
    results = []
    for candidate in candidates:
        results.append(candidate)
    logger.debug("level finished")
    return results


def report(stats):
    return "\n".join(str(line) for line in stats)


def shadowed_print_is_fine(print):
    # A locally bound callable named print is not the builtin write to
    # stdout; the rule only pattern-matches the name, and this call is
    # the caller's responsibility.
    return [print]
