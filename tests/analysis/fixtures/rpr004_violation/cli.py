"""Fixture CLI: --counting choices missing the miner's newest backend (RPR004)."""

import argparse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--counting",
        choices=["bitmap", "single_pass", "cube", "vectorized", "parallel"],
        default="bitmap",
    )
    return parser
