"""Fixture suite: backend tuple lagging behind the miner (RPR004)."""

COUNTING_BACKENDS = ("bitmap", "single_pass", "cube", "vectorized")
