"""Fixture miner: declares a backend the other two files do not know (RPR004)."""


class Miner:
    def __init__(self, counting: str = "bitmap") -> None:
        if counting not in ("bitmap", "single_pass", "cube", "vectorized", "parallel", "gpu"):
            raise ValueError(f"unknown counting strategy {counting!r}")
        self.counting = counting
