"""Fixture: fork-safe worker submissions (RPR011-clean).

Workers receive only picklable specs and plain data; anything live is
rebuilt worker-side, and parent-only state never enters a payload.
"""

import threading
from multiprocessing.pool import Pool

# Worker-side caches start empty; they are filled after the fork.
_ATTACHED = {}


def attach_and_count(spec):
    handle = _ATTACHED.get(spec.name)
    if handle is None:
        handle = _ATTACHED[spec.name] = spec
    return handle


def init_worker(seed):
    return seed


def fan_out(pool, specs):
    # Plain data in, plain data out.
    return pool.map(attach_and_count, specs)


def spin_up(n_workers, shard_ranges):
    return Pool(n_workers, initializer=init_worker, initargs=(shard_ranges,))


def mine_with_parent_lock(pool, shards, merge):
    # The lock stays in the parent: it guards the merge, not the tasks.
    lock = threading.Lock()
    results = pool.map(attach_and_count, shards)
    with lock:
        return merge(results)


class SpecEngine:
    def __init__(self, specs):
        self._specs = list(specs)

    def run(self, pool):
        return pool.map(attach_and_count, self._specs)
