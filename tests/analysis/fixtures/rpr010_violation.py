"""Fixture: unordered containers flowing across call boundaries into
float accumulations (RPR010).

Each consumer looks clean in isolation — the set is built in another
function, so RPR003's local inference never sees it.
"""


def occupied_cells(table):
    """Producer: returns a set (inferred from the comprehension)."""
    return {cell for cell in table if table[cell]}


def cell_weights(table):
    """Producer: returns a dict (inferred from the literal binding)."""
    weights = {}
    for cell in table:
        weights[cell] = float(table[cell])
    return weights


def total_weight(table, weights):
    # The set arrives through a call; summing floats over it is
    # hash-order-dependent.
    cells = occupied_cells(table)
    return sum(weights[cell] for cell in cells)


def total_weight_inline(table, weights):
    # Same flow without the intermediate variable.
    return sum(weights[cell] for cell in occupied_cells(table))


def chi2_total(table, expected):
    # A loop that accumulates += over the flowed set.
    total = 0.0
    for cell in occupied_cells(table):
        total += (table[cell] - expected[cell]) ** 2 / expected[cell]
    return total


def summed_weights(table):
    # Iterating a dict returned by a callee is just as unordered.
    weights = cell_weights(table)
    return sum(weights[cell] for cell in weights)
