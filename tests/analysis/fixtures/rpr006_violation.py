"""Fixture: mutable defaults, bare except, swallowed exception (RPR006)."""


def remember(value, seen=[]):
    seen.append(value)
    return seen


def merge(extra, base={}):
    base.update(extra)
    return base


def risky(action):
    try:
        action()
    except:
        return None


def silent(action):
    try:
        action()
    except ValueError:
        pass
