"""Fixture: hygienic defaults and exception handling (RPR006)."""

import logging

logger = logging.getLogger(__name__)


def remember(value, seen=None):
    if seen is None:
        seen = []
    seen.append(value)
    return seen


def risky(action):
    try:
        return action()
    except ValueError as error:
        logger.warning("action rejected: %s", error)
        return None
