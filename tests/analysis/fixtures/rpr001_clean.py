"""Fixture: only sentinel and tolerance-based float comparisons (RPR001)."""

import math


def structural_zero(expected: float) -> bool:
    return expected == 0.0  # sentinel guard: exact boundary by construction


def saturated(probability: float) -> bool:
    return probability == 1.0


def converged(error: float) -> bool:
    return math.isclose(error, 0.5, rel_tol=1e-9)


def integer_compare(count: int) -> bool:
    return count == 3
