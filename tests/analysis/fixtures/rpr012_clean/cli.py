"""Fixture CLI: every mine flag is a miner knob or presentation-only."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser(prog="repro")
    sub = parser.add_subparsers(dest="command")
    mine = sub.add_parser("mine")
    mine.add_argument("--input")
    mine.add_argument("--json", action="store_true")
    mine.add_argument("--significance", type=float)
    mine.add_argument("--support-count", type=int)
    mine.add_argument("--support-fraction", type=float)
    mine.add_argument("--max-level", type=int)
    mine.add_argument("--workers", type=int)
    return parser
