"""Fixture miner: the authoritative knob surface (consistent trio)."""


class ChiSquaredSupportMiner:
    def __init__(
        self,
        significance=0.05,
        support=None,
        max_level=None,
        workers=None,
        engine=None,
        telemetry=None,
    ):
        self.significance = significance
        self.support = support
        self.max_level = max_level
        self.workers = workers
