"""Fixture API: every mine_correlations parameter maps to a knob."""


def mine_correlations(
    db,
    significance=0.05,
    support_count=None,
    support_fraction=None,
    max_level=None,
    workers=None,
    telemetry=None,
):
    return db, significance, support_count, support_fraction, max_level, workers
