"""Fixture: cross-function flows with a canonical order (RPR010-clean).

Either the producer sorts before returning, or the consumer sorts
before accumulating, or the accumulation is exact in any order.
"""


def occupied_cells(table):
    """Producer that returns a canonical order: cleared by sorted()."""
    return sorted(cell for cell in table if table[cell])


def raw_cells(table):
    """Producer that really does return a set."""
    return {cell for cell in table if table[cell]}


def total_weight(table, weights):
    # The producer already sorts, so the sum order is canonical.
    cells = occupied_cells(table)
    return sum(weights[cell] for cell in cells)


def total_weight_sorted_here(table, weights):
    # The consumer imposes the order itself.
    return sum(weights[cell] for cell in sorted(raw_cells(table)))


def cell_count(table):
    # Pure counting is exact in any order.
    return sum(1 for cell in raw_cells(table))


def collected(table):
    # Iteration without accumulation does not compound rounding.
    names = []
    for cell in sorted(raw_cells(table)):
        names.append(str(cell))
    return names
