"""Fixture: NumPy imports guarded or deferred (RPR002)."""

try:
    import numpy as np
except ImportError:
    np = None


def double(values):
    if np is None:
        return [value * 2 for value in values]
    return np.asarray(values) * 2


def lazy_sum(values):
    import numpy  # function-level: only paid when this path runs

    return numpy.asarray(values).sum()
