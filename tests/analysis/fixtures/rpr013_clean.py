"""Fixture: time read through an injectable clock (RPR013)."""

import time


def time_a_batch(kernel, batch, clock):
    start = clock()
    kernel(batch)
    return clock() - start


def stamp_event(record, clock):
    record["ts"] = clock()
    return record


def backoff(seconds):
    # Sleeping is not a clock read; only the three read functions are
    # banned, so pacing with time.sleep stays legal.
    time.sleep(seconds)


def monotonic():
    # A local function that happens to share a banned name is not the
    # stdlib's; the rule resolves through the import alias map.
    return 0.0


def local_counter():
    return monotonic()
