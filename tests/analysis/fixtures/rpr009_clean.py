"""Fixture: every resource released on every path (RPR009-clean).

One example per blessed pattern: try/finally, with statements, class
ownership, return/yield transfer, and container deposit.
"""

from multiprocessing.shared_memory import SharedMemory
from multiprocessing.pool import Pool


def pack_with_finally(baskets, fill):
    shm = SharedMemory(create=True, size=64)
    try:
        fill(shm, baskets)
    finally:
        shm.close()
        shm.unlink()


def create_segment(size):
    # Returning the segment transfers ownership to the caller.
    shm = SharedMemory(create=True, size=size)
    return shm


def segment_pool(sizes):
    # Depositing into a container transfers ownership to the container.
    owned = []
    for size in sizes:
        shm = SharedMemory(create=True, size=size)
        owned.append(shm)
    return owned


class SegmentOwner:
    """Stores the segment on self; close() is the ownership method."""

    def __init__(self, size):
        self._shm = SharedMemory(create=True, size=size)

    def close(self):
        self._shm.close()
        self._shm.unlink()


def read_report(path):
    with open(path) as handle:
        return handle.read()


def count_parallel(shards, work):
    pool = Pool(4)
    try:
        results = pool.map(work, shards)
    finally:
        pool.close()
        pool.join()
    return results


def time_packing(tracer, do_work):
    with tracer.span("pack"):
        return do_work()


def time_mining(tracer, mine):
    # Bound then entered: the with statement starts and stops the timer.
    mining_span = tracer.span("mine")
    with mining_span:
        return mine()
