"""Fixture: unpicklable callables handed to a worker pool (RPR005)."""

import multiprocessing


def run_lambda(values):
    with multiprocessing.Pool(2) as pool:
        return pool.map(lambda v: v * 2, values)


def run_nested(values):
    def task(v):
        return v * 2

    with multiprocessing.Pool(2) as pool:
        return pool.apply_async(task, (values[0],)).get()


def lambda_initializer():
    return multiprocessing.Pool(2, initializer=lambda: None)
