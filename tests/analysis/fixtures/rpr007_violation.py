"""Fixture: library code writing straight to stdout (RPR007)."""


def mine_level(candidates):
    print(f"level started with {len(candidates)} candidates")
    results = []
    for candidate in candidates:
        results.append(candidate)
    print("level finished")
    return results


def report(stats):
    for line in stats:
        print(line)
