"""Fixture: every shared-memory creation site owns its cleanup (RPR008)."""

from multiprocessing import shared_memory


def finally_guarded(nbytes):
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    try:
        return bytes(segment.buf[:8])
    finally:
        segment.close()
        segment.unlink()


def context_managed(nbytes):
    with shared_memory.SharedMemory(create=True, size=nbytes) as segment:
        return bytes(segment.buf[:8])


def attach_only(name):
    # Attaching never owns the segment; no create=True, never flagged.
    segment = shared_memory.SharedMemory(name=name)
    try:
        return bytes(segment.buf[:8])
    finally:
        segment.close()


class OwningSegment:
    """The SharedPackedIndex pattern: create in __init__, unlink in close."""

    def __init__(self, nbytes):
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)

    def close(self):
        try:
            self._shm.close()
        finally:
            self._shm.unlink()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
