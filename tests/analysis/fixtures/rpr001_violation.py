"""Fixture: float-literal equality outside the sentinel guards (RPR001)."""


def converged(error: float) -> bool:
    return error == 0.5  # non-sentinel literal: breaks under reordering


def not_quite(ratio: float) -> bool:
    return ratio != 3.14


def negative_literal(x: float) -> bool:
    return x == -2.5
