"""Fixture: shared-memory segments created without an unlink path (RPR008)."""

from multiprocessing import shared_memory


def leak_on_crash(nbytes):
    # No finally, no with, no owning class: a crash between create and
    # the explicit cleanup strands the segment in /dev/shm.
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    payload = bytes(segment.buf[:8])
    segment.close()
    segment.unlink()
    return payload


def happy_path_only(nbytes):
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    try:
        return bytes(segment.buf[:8])
    except ValueError:
        # Cleanup on one branch is not ownership; the success path and
        # every other exception still leak the segment.
        segment.close()
        segment.unlink()
        raise


class HoldsButNeverUnlinks:
    """Closes its handle but never unlinks the named segment."""

    def __init__(self, nbytes):
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)

    def close(self):
        self._shm.close()
