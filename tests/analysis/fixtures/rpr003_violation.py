"""Fixture: unordered iteration feeding order-sensitive sums (RPR003)."""


def total_mass(weights: dict[int, float]) -> float:
    return sum(weights.values())  # caller-dependent insertion order


def accumulate(cells: dict[int, float]) -> list[float]:
    marginals = [0.0, 0.0]
    for cell, weight in cells.items():
        marginals[cell % 2] += weight
    return marginals


def emit_candidates(items: set[int]) -> list[int]:
    out: list[int] = []
    for item in items:
        out.append(item * 2)
    return out


def sum_of_set() -> float:
    values = {0.1, 0.2, 0.3}
    return sum(values)
