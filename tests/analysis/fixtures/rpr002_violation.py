"""Fixture: unguarded top-level NumPy import (RPR002)."""

import numpy as np


def double(values):
    return np.asarray(values) * 2
