"""The incremental cache: reuse, invalidation, and its bypass rules."""

from __future__ import annotations

import json

import pytest

from repro.analysis import lint
from repro.analysis.incremental import LintCache

CLEAN = "def f(x):\n    return x + 1\n"
VIOLATING = (
    "def remember(value, seen=[]):\n"
    "    seen.append(value)\n"
    "    return seen\n"
)


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "alpha.py").write_text(CLEAN)
    (tmp_path / "beta.py").write_text(VIOLATING)
    return tmp_path


def _run(tree, **kwargs):
    return lint(root=tree, cache_path=tree / ".cache.json", **kwargs)


def test_cold_run_writes_the_cache_and_warm_run_reuses_it(tree):
    cold = _run(tree)
    assert (tree / ".cache.json").exists()
    assert cold.files_reanalyzed == cold.files_checked == 2

    warm = _run(tree)
    assert warm.files_checked == 2
    assert warm.files_reanalyzed == 0
    # Same verdict either way.
    assert [v.render() for v in warm.violations] == [
        v.render() for v in cold.violations
    ]
    assert {v.rule for v in warm.violations} == {"RPR006"}


def test_editing_one_file_reanalyzes_only_that_file(tree):
    _run(tree)
    (tree / "alpha.py").write_text("def f(x):\n    return x + 2\n")
    after = _run(tree)
    assert after.files_reanalyzed == 1
    assert {v.rule for v in after.violations} == {"RPR006"}

    # Fixing the violating file changes the verdict on the next run.
    (tree / "beta.py").write_text(CLEAN)
    assert _run(tree).clean


def test_new_and_deleted_files_invalidate_the_tree(tree):
    _run(tree)
    (tree / "gamma.py").write_text(CLEAN)
    assert _run(tree).files_checked == 3
    (tree / "gamma.py").unlink()
    assert _run(tree).files_checked == 2


def test_select_ignore_and_paths_bypass_the_cache(tree):
    # None of these runs may create or consult the cache file.
    lint(root=tree, cache_path=tree / ".cache.json", select=["RPR006"])
    lint(root=tree, cache_path=tree / ".cache.json", ignore=["RPR001"])
    lint(root=tree, cache_path=tree / ".cache.json", paths=[tree / "beta.py"])
    assert not (tree / ".cache.json").exists()


def test_corrupt_cache_file_starts_cold_without_crashing(tree):
    (tree / ".cache.json").write_text("{ not json")
    report = _run(tree)
    assert report.files_reanalyzed == 2
    # And the run rewrites it into a usable state.
    assert _run(tree).files_reanalyzed == 0


def test_foreign_fingerprint_is_distrusted(tree):
    _run(tree)
    payload = json.loads((tree / ".cache.json").read_text())
    payload["fingerprint"] = "0" * 64
    (tree / ".cache.json").write_text(json.dumps(payload))
    # A cache written by a different linter version is thrown away.
    assert _run(tree).files_reanalyzed == 2


def test_suppression_bookkeeping_reruns_on_warm_hits(tree):
    # Raw violations are cached pre-suppression, so a stale directive is
    # reported on the warm run too, not just the cold one.
    (tree / "beta.py").write_text(
        "x = 1  # replint: disable=RPR006 -- nothing here violates anything\n"
    )
    cold = _run(tree)
    assert [v.rule for v in cold.violations] == ["RPR000"]
    warm = _run(tree)
    assert warm.files_reanalyzed == 0
    assert [v.rule for v in warm.violations] == ["RPR000"]


def test_cache_round_trips_violations_exactly(tmp_path):
    path = tmp_path / "cache.json"
    cache = LintCache(path)
    from repro.analysis.framework import Violation

    violation = Violation("mod.py", 3, 7, "RPR006", 'mutable default in "f"')
    cache.store_file("mod.py", LintCache.content_hash("src"), [violation])
    cache.store_project({"mod.py": LintCache.content_hash("src")}, [])
    cache.save()

    loaded = LintCache.load(path)
    entry = loaded.file_entry("mod.py", LintCache.content_hash("src"))
    assert entry is not None
    assert [v.render() for v in entry.violations] == [violation.render()]
    assert loaded.tree_matches({"mod.py": LintCache.content_hash("src")})
    assert not loaded.tree_matches({"mod.py": LintCache.content_hash("edited")})
