"""Framework behaviour: suppressions, directive hygiene, reporters, CLI."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import lint, render_json, render_sarif, render_text
from repro.analysis.__main__ import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"


# -- suppressions -------------------------------------------------------------


def test_documented_suppression_silences_the_violation():
    report = lint(paths=[FIXTURES / "suppression_documented.py"], root=FIXTURES)
    assert report.clean, [v.render() for v in report.violations]


def test_undocumented_suppression_is_reported_as_rpr000():
    report = lint(paths=[FIXTURES / "suppression_undocumented.py"], root=FIXTURES)
    assert [v.rule for v in report.violations] == ["RPR000"]
    assert "justification" in report.violations[0].message
    assert report.exit_code() == 1


def test_stale_suppression_is_reported(tmp_path):
    target = tmp_path / "stale.py"
    target.write_text(
        "x = 1  # replint: disable=RPR006 -- nothing here actually violates\n"
    )
    report = lint(paths=[target], root=tmp_path)
    assert [v.rule for v in report.violations] == ["RPR000"]
    assert "stale" in report.violations[0].message


def test_suppression_on_the_line_above(tmp_path):
    target = tmp_path / "above.py"
    target.write_text(
        "def f(action):\n"
        "    try:\n"
        "        action()\n"
        "    # replint: disable=RPR006 -- demonstration of the comment-above form\n"
        "    except ValueError:\n"
        "        pass\n"
    )
    report = lint(paths=[target], root=tmp_path)
    assert report.clean, [v.render() for v in report.violations]


def test_directive_inside_a_string_is_not_a_suppression(tmp_path):
    target = tmp_path / "stringly.py"
    target.write_text(
        'DOC = "# replint: disable=RPR006 -- not a real directive"\n'
        "def f(action):\n"
        "    try:\n"
        "        action()\n"
        "    except ValueError:\n"
        "        pass\n"
    )
    report = lint(paths=[target], root=tmp_path)
    assert [v.rule for v in report.violations] == ["RPR006"]


def test_unparseable_file_is_reported_not_crashed(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def f(:\n")
    report = lint(paths=[target], root=tmp_path)
    assert [v.rule for v in report.violations] == ["RPR000"]
    assert "parse" in report.violations[0].message


def test_suppression_naming_a_renamed_rule_is_reported_even_under_select(tmp_path):
    # A directive whose rule id no longer exists (renamed or removed)
    # silences nothing; it is reported regardless of --select/--ignore.
    target = tmp_path / "renamed.py"
    target.write_text(
        "x = 1  # replint: disable=RPR999 -- the rule this silenced was renamed\n"
    )
    report = lint(paths=[target], root=tmp_path, select=["RPR001"])
    assert [v.rule for v in report.violations] == ["RPR000"]
    assert "renamed or removed" in report.violations[0].message


def test_strict_reports_stale_suppressions_under_select(tmp_path):
    target = tmp_path / "stale.py"
    target.write_text(
        "x = 1  # replint: disable=RPR006 -- nothing here actually violates\n"
    )
    # Under a plain --select the directive's rule did run and match
    # nothing, but staleness is only reported when asked for --strict
    # (a rule that simply did not run must not look stale).
    relaxed = lint(paths=[target], root=tmp_path, select=["RPR006"])
    assert relaxed.clean
    strict = lint(paths=[target], root=tmp_path, select=["RPR006"], strict=True)
    assert [v.rule for v in strict.violations] == ["RPR000"]
    assert "stale" in strict.violations[0].message


# -- reporters ----------------------------------------------------------------


def test_text_reporter_mentions_each_violation_and_summary():
    report = lint(paths=[FIXTURES / "rpr006_violation.py"], root=FIXTURES)
    text = render_text(report)
    assert "rpr006_violation.py" in text
    assert "RPR006" in text
    assert "violation(s)" in text


def test_json_reporter_round_trips():
    report = lint(paths=[FIXTURES / "rpr006_violation.py"], root=FIXTURES)
    payload = json.loads(render_json(report))
    assert payload["clean"] is False
    assert payload["files_checked"] == 1
    assert payload["counts"]["RPR006"] == len(payload["violations"])
    first = payload["violations"][0]
    assert set(first) == {"path", "line", "col", "rule", "message"}


def test_sarif_reporter_structure():
    report = lint(paths=[FIXTURES / "rpr006_violation.py"], root=FIXTURES)
    document = json.loads(render_sarif(report))
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "replint"
    rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert "RPR000" in rule_ids  # the meta-rule is part of the catalogue
    assert "RPR006" in rule_ids
    assert len(run["results"]) == len(report.violations)
    result = run["results"][0]
    violation = report.violations[0]
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == violation.path
    assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
    assert location["region"]["startLine"] == violation.line
    # SARIF columns are 1-based; Violation columns are 0-based.
    assert location["region"]["startColumn"] == violation.col + 1


def test_sarif_reporter_on_a_clean_report_has_no_results():
    report = lint(paths=[FIXTURES / "rpr006_clean.py"], root=FIXTURES)
    document = json.loads(render_sarif(report))
    assert document["runs"][0]["results"] == []


# -- CLI ----------------------------------------------------------------------


def test_cli_exit_codes_and_output(capsys):
    bad = str(FIXTURES / "rpr006_violation.py")
    assert main([bad, "--root", str(FIXTURES)]) == 1
    assert "RPR006" in capsys.readouterr().out

    good = str(FIXTURES / "rpr006_clean.py")
    assert main([good, "--root", str(FIXTURES)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_json_format(capsys):
    bad = str(FIXTURES / "rpr006_violation.py")
    assert main([bad, "--root", str(FIXTURES), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False


def test_cli_select_and_ignore(capsys):
    bad = str(FIXTURES / "rpr006_violation.py")
    assert main([bad, "--root", str(FIXTURES), "--ignore", "RPR006"]) == 0
    capsys.readouterr()
    assert main([bad, "--root", str(FIXTURES), "--select", "RPR001"]) == 0


def test_cli_select_and_ignore_compose(capsys):
    # --select names the universe; --ignore subtracts from it.
    bad = str(FIXTURES / "rpr006_violation.py")
    assert (
        main(
            [
                bad,
                "--root",
                str(FIXTURES),
                "--select",
                "RPR006,RPR007",
                "--ignore",
                "RPR006",
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert (
        main(
            [
                bad,
                "--root",
                str(FIXTURES),
                "--select",
                "RPR006,RPR007",
                "--ignore",
                "RPR007",
            ]
        )
        == 1
    )
    assert "RPR006" in capsys.readouterr().out


def test_cli_unknown_rule_id_is_a_usage_error(capsys):
    assert main([str(FIXTURES), "--select", "RPR999"]) == 2
    assert "unknown rule" in capsys.readouterr().err
    capsys.readouterr()
    # Same contract for --ignore: a typo must not silently ignore nothing.
    assert main([str(FIXTURES), "--ignore", "RPR999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_sarif_format(capsys):
    bad = str(FIXTURES / "rpr006_violation.py")
    assert main([bad, "--root", str(FIXTURES), "--format", "sarif"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["runs"][0]["tool"]["driver"]["name"] == "replint"
    assert document["runs"][0]["results"]


def test_cli_strict_flag(tmp_path, capsys):
    target = tmp_path / "stale.py"
    target.write_text(
        "x = 1  # replint: disable=RPR006 -- nothing here actually violates\n"
    )
    base = [str(target), "--root", str(tmp_path), "--select", "RPR006"]
    assert main(base) == 0
    capsys.readouterr()
    assert main([*base, "--strict"]) == 1
    assert "stale" in capsys.readouterr().out


def test_cli_default_cache_and_no_cache(tmp_path, capsys):
    (tmp_path / "mod.py").write_text("def f(x):\n    return x\n")
    assert main(["--root", str(tmp_path)]) == 0
    assert (tmp_path / ".replint-cache.json").exists()
    capsys.readouterr()
    # The warm run reports the reuse in the summary line.
    assert main(["--root", str(tmp_path)]) == 0
    assert "from cache" in capsys.readouterr().out
    (tmp_path / ".replint-cache.json").unlink()
    assert main(["--root", str(tmp_path), "--no-cache"]) == 0
    assert not (tmp_path / ".replint-cache.json").exists()


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006"):
        assert rule_id in out


def test_explicit_directory_inside_excluded_subtree_is_still_linted():
    # The repo-root walk skips tests/analysis/fixtures, but naming a
    # fixture directory on the command line must not silently report
    # clean -- its files are linted as if passed explicitly.
    repo_root = Path(__file__).resolve().parents[2]
    report = lint(paths=[FIXTURES / "rpr004_violation"], root=repo_root)
    assert not report.clean
    assert {v.rule for v in report.violations} == {"RPR004"}

    clean = lint(paths=[FIXTURES / "rpr004_clean"], root=repo_root)
    assert clean.clean
    assert clean.files_checked == 3
