"""CFG construction and reaching definitions over it."""

from __future__ import annotations

import ast

from repro.analysis.flow.cfg import CFG, build_cfg
from repro.analysis.flow.dataflow import definitions_in, reaching_definitions


def _cfg(source: str) -> CFG:
    tree = ast.parse(source)
    func = next(
        node for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    )
    return build_cfg(func)


def _node_at(cfg: CFG, line: int):
    for node in cfg.nodes:
        if node.stmt is not None and node.stmt.lineno == line:
            return node
    raise AssertionError(f"no CFG node at line {line}")


# -- shapes -------------------------------------------------------------------


def test_straight_line_links_entry_to_exit():
    cfg = _cfg("def f(x):\n    y = x + 1\n    return y\n")
    assign = _node_at(cfg, 2)
    ret = _node_at(cfg, 3)
    assert assign in cfg.entry.succs
    assert ret in assign.succs
    assert cfg.exit in ret.succs


def test_if_without_else_falls_through_the_header():
    cfg = _cfg(
        "def f(x):\n"
        "    if x:\n"          # 2
        "        x = x - 1\n"  # 3
        "    return x\n"       # 4
    )
    header = _node_at(cfg, 2)
    body = _node_at(cfg, 3)
    ret = _node_at(cfg, 4)
    # Both the taken branch and the false-branch fall-through reach return.
    assert ret in body.succs
    assert ret in header.succs


def test_early_return_branch_reaches_exit_directly():
    cfg = _cfg(
        "def f(x):\n"
        "    if x:\n"        # 2
        "        return 0\n" # 3
        "    return 1\n"     # 4
    )
    early = _node_at(cfg, 3)
    assert cfg.exit in early.succs
    assert not [s for s in early.succs if s is not cfg.exit]


def test_loop_has_back_edge_and_break_exits():
    cfg = _cfg(
        "def f(items):\n"
        "    for item in items:\n"  # 2
        "        if item:\n"        # 3
        "            break\n"       # 4
        "    return items\n"        # 5
    )
    header = _node_at(cfg, 2)
    test = _node_at(cfg, 3)
    brk = _node_at(cfg, 4)
    ret = _node_at(cfg, 5)
    assert header in test.succs  # back edge from the non-break path
    assert ret in brk.succs  # break jumps past the loop
    assert ret in header.succs  # loop exhaustion


def test_raise_without_handler_links_to_raise_exit():
    cfg = _cfg("def f():\n    raise ValueError()\n")
    raiser = _node_at(cfg, 2)
    assert cfg.raise_exit in raiser.succs


def test_try_except_makes_every_body_node_a_handler_pred():
    cfg = _cfg(
        "def f(action):\n"
        "    try:\n"             # 2
        "        a = action()\n" # 3
        "        b = a + 1\n"    # 4
        "    except ValueError:\n"
        "        b = 0\n"        # 6
        "    return b\n"         # 7
    )
    handler_stmt = _node_at(cfg, 6)
    assert {n.stmt.lineno for n in handler_stmt.preds if n.stmt} == {3, 4}
    assert _node_at(cfg, 7) in handler_stmt.succs


def test_try_finally_frames_mark_regions():
    cfg = _cfg(
        "def f(shm, fill):\n"
        "    try:\n"               # 2
        "        fill(shm)\n"      # 3
        "    finally:\n"
        "        shm.close()\n"    # 5
    )
    body_node = _node_at(cfg, 3)
    final_node = _node_at(cfg, 5)
    assert [frame.region for frame in body_node.enclosing_trys] == ["body"]
    assert [frame.region for frame in final_node.enclosing_trys] == ["finally"]
    # The finally runs on the way out.
    assert final_node in body_node.succs
    assert cfg.exit in final_node.succs


def test_code_after_return_is_unreachable():
    cfg = _cfg("def f():\n    return 1\n    x = 2\n")
    assert all(
        node.stmt is None or node.stmt.lineno != 3 or not node.preds
        for node in cfg.nodes
    )


# -- reaching definitions -----------------------------------------------------


def test_definitions_in_covers_binding_forms():
    stmts = ast.parse(
        "a = 1\n"
        "b += 2\n"
        "for c in items: pass\n"
        "with open(p) as d: pass\n"
    ).body
    assert definitions_in(stmts[0]) == frozenset({"a"})
    assert definitions_in(stmts[1]) == frozenset({"b"})
    assert definitions_in(stmts[2]) == frozenset({"c"})
    assert definitions_in(stmts[3]) == frozenset({"d"})


def test_params_reach_the_first_statement():
    cfg = _cfg("def f(x, *args, **kwargs):\n    return x\n")
    reaching = reaching_definitions(cfg)
    at_return = reaching[_node_at(cfg, 2)]
    assert at_return["x"] == frozenset({cfg.entry})
    assert at_return["args"] == frozenset({cfg.entry})
    assert at_return["kwargs"] == frozenset({cfg.entry})


def test_redefinition_kills_the_older_definition():
    cfg = _cfg(
        "def f():\n"
        "    x = 1\n"   # 2
        "    x = 2\n"   # 3
        "    return x\n"  # 4
    )
    reaching = reaching_definitions(cfg)
    at_return = reaching[_node_at(cfg, 4)]
    assert at_return["x"] == frozenset({_node_at(cfg, 3)})


def test_branches_merge_both_definitions():
    cfg = _cfg(
        "def f(flag):\n"
        "    if flag:\n"
        "        x = 1\n"  # 3
        "    else:\n"
        "        x = 2\n"  # 5
        "    return x\n"   # 6
    )
    reaching = reaching_definitions(cfg)
    at_return = reaching[_node_at(cfg, 6)]
    assert at_return["x"] == frozenset({_node_at(cfg, 3), _node_at(cfg, 5)})


def test_loop_carried_definition_reaches_the_header():
    cfg = _cfg(
        "def f(items):\n"
        "    total = 0\n"          # 2
        "    for item in items:\n" # 3
        "        total = total + item\n"  # 4
        "    return total\n"       # 5
    )
    reaching = reaching_definitions(cfg)
    at_header = reaching[_node_at(cfg, 3)]
    # Both the initial and the loop-carried definition flow into the header.
    assert at_header["total"] == frozenset({_node_at(cfg, 2), _node_at(cfg, 4)})
