"""The acceptance gate: the repository itself lints clean.

Runs the full rule set over the working tree exactly as ``make lint``
does.  Because undocumented and stale suppressions surface as RPR000
violations, a clean report simultaneously proves there are zero
unjustified escapes anywhere in the tree.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repository_lints_clean():
    report = lint(root=REPO_ROOT)
    assert report.files_checked > 100, "walk found suspiciously few files"
    assert report.clean, "\n".join(v.render() for v in report.violations)


def test_fixture_tree_is_excluded_from_the_walk():
    report = lint(root=REPO_ROOT)
    assert report.clean
    # the walk saw no fixture file, or the violating ones would have fired
    fixture_prefix = "tests/analysis/fixtures"
    assert all(not v.path.startswith(fixture_prefix) for v in report.violations)


def test_backend_literals_currently_agree():
    """The live RPR004 cross-check: miner, CLI and suite name the same set."""
    report = lint(root=REPO_ROOT, select=["RPR004"])
    assert report.clean, "\n".join(v.render() for v in report.violations)
