"""ProjectModel behaviour: symbols, imports, the call graph, and
degradation when a file in the project fails to parse."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis import lint
from repro.analysis.framework import LintModule
from repro.analysis.model.project import ProjectModel
from repro.analysis.model.symbols import module_name_for


def _module(rel_path: str, source: str) -> LintModule:
    return LintModule(Path("/project") / rel_path, rel_path, source)


def _project(**files: str) -> ProjectModel:
    modules = tuple(
        _module(rel_path.replace("__", "/") + ".py", source)
        for rel_path, source in files.items()
    )
    return ProjectModel(modules)


# -- naming -------------------------------------------------------------------


def test_module_name_strips_src_and_init():
    assert module_name_for("src/repro/parallel/shm.py") == "repro.parallel.shm"
    assert module_name_for("tests/core/test_x.py") == "tests.core.test_x"
    assert module_name_for("src/repro/__init__.py") == "repro"


# -- symbol table -------------------------------------------------------------


def test_symbols_index_functions_methods_and_globals():
    project = _project(
        src__pkg__mod=(
            "LIMIT = 64\n"
            "def top(): ...\n"
            "class Engine:\n"
            "    def run(self): ...\n"
        )
    )
    symbols = project.symbols.module("src/pkg/mod.py")
    assert symbols is not None
    assert set(symbols.functions) == {"top", "Engine.run"}
    assert "Engine" in symbols.classes
    assert "LIMIT" in symbols.module_assigns
    info = project.function("pkg.mod.Engine.run")
    assert info is not None and info.class_name == "Engine"


def test_resolve_self_method_local_function_and_import_alias():
    project = _project(
        src__pkg__helpers="def helper(): ...\n",
        src__pkg__mod=(
            "from pkg.helpers import helper as h\n"
            "def local(): ...\n"
            "class Engine:\n"
            "    def run(self):\n"
            "        return self.step()\n"
            "    def step(self): ...\n"
        ),
    )
    table = project.symbols
    symbols = table.module("src/pkg/mod.py")
    assert table.resolve(symbols, "local").qname == "pkg.mod.local"
    assert (
        table.resolve(symbols, "self.step", class_name="Engine").qname
        == "pkg.mod.Engine.step"
    )
    assert table.resolve(symbols, "h").qname == "pkg.helpers.helper"
    assert table.resolve(symbols, "Engine.step").qname == "pkg.mod.Engine.step"
    assert table.resolve(symbols, "json.dumps") is None  # not in the project


def test_import_graph_edges():
    project = _project(
        src__pkg__a="import pkg.b as b\n",
        src__pkg__b="x = 1\n",
    )
    imports = project.imports
    assert "pkg.b" in imports.imports_of("pkg.a")
    assert "pkg.a" in imports.importers_of("pkg.b")


# -- call graph ---------------------------------------------------------------


def test_call_graph_resolves_across_modules_and_bounds_reachability():
    project = _project(
        src__pkg__low="def sink(): ...\n",
        src__pkg__mid=(
            "from pkg.low import sink\n"
            "def relay():\n"
            "    return sink()\n"
        ),
        src__pkg__top=(
            "from pkg.mid import relay\n"
            "def entry():\n"
            "    return relay()\n"
        ),
    )
    calls = project.calls
    assert "pkg.mid.relay" in calls.callees("pkg.top.entry")
    assert "pkg.top.entry" in calls.callers("pkg.mid.relay")
    reachable = calls.reachable_from("pkg.top.entry")
    assert {"pkg.mid.relay", "pkg.low.sink"} <= reachable
    assert calls.reachable_from("pkg.top.entry", max_depth=1) == {"pkg.mid.relay"}


def test_call_sites_keep_unresolved_names():
    project = _project(
        src__pkg__mod=(
            "import json\n"
            "def dump(payload):\n"
            "    return json.dumps(payload)\n"
        )
    )
    sites = project.calls.call_sites("pkg.mod.dump")
    assert [site.name for site in sites] == ["json.dumps"]
    assert sites[0].callee is None


def test_nested_def_calls_attributed_to_enclosing_function():
    project = _project(
        src__pkg__mod=(
            "def helper(): ...\n"
            "def outer():\n"
            "    def inner():\n"
            "        return helper()\n"
            "    return inner\n"
        )
    )
    assert "pkg.mod.helper" in project.calls.callees("pkg.mod.outer")


# -- degradation --------------------------------------------------------------


def test_syntax_error_file_degrades_to_rpr000_without_crashing(tmp_path):
    """A broken file must not take the project rules down with it."""
    (tmp_path / "broken.py").write_text("def f(:\n")
    (tmp_path / "fine.py").write_text(
        "def producer():\n"
        "    return {1, 2}\n"
        "def consumer(weights):\n"
        "    return sum(weights[c] for c in producer())\n"
    )
    report = lint(paths=[tmp_path], root=tmp_path)
    rules = {v.rule for v in report.violations}
    # The parse error is reported AND the semantic rules still ran on
    # the file that did parse.
    assert "RPR000" in rules
    assert "RPR010" in rules


def test_cfg_is_cached_per_function_node():
    project = _project(src__pkg__mod="def f():\n    return 1\n")
    func = next(
        node
        for node in ast.walk(project.modules[0].tree)
        if isinstance(node, ast.FunctionDef)
    )
    assert project.cfg(func) is project.cfg(func)
