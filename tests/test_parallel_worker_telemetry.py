"""Worker telemetry crosses the process boundary and reconciles.

Pool workers record into a process-local registry and ship its snapshot
back alongside their shard counts; the parent folds every arriving
snapshot into its own registry and counts, independently, what it
expected each task to cover.  These tests force real pool dispatch
(``min_parallel_batch=0`` — this container reports one CPU, so the
adaptive floor would otherwise keep everything serial) and check that
the worker-side counters land in the parent and that the two-sided
ledger balances.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms.chi2support import ChiSquaredSupportMiner
from repro.measures.cellsupport import CellSupport
from repro.data.basket import BasketDatabase
from repro.obs import FakeClock, Telemetry
from repro.parallel import ParallelCountingEngine


def _random_db(seed: int, n_items: int = 8, n_baskets: int = 300) -> BasketDatabase:
    rng = random.Random(seed)
    baskets = [
        [item for item in range(n_items) if rng.random() < 0.4]
        for _ in range(n_baskets)
    ]
    return BasketDatabase.from_id_baskets(baskets, n_items=n_items)


@pytest.fixture
def db():
    return _random_db(7)


def _pooled_engine(db, telemetry):
    return ParallelCountingEngine(
        db,
        workers=2,
        min_parallel_batch=0,
        telemetry=telemetry,
    )


class TestEngineMerge:
    def test_worker_counters_fold_into_the_parent_registry(self, db):
        telemetry = Telemetry.create(clock=FakeClock())
        engine = _pooled_engine(db, telemetry)
        try:
            from repro.core.itemsets import Itemset

            engine.count_tables([Itemset([0, 1]), Itemset([2, 3]), Itemset([1, 4])])
        finally:
            engine.close()
        metrics = telemetry.metrics
        tasks = metrics.counter_value("worker_tasks")
        assert tasks >= 1
        # Every shard task counts the full candidate list, so the two
        # sides each total tasks x 3 — and must agree exactly.
        assert metrics.counter_value("worker_itemsets") == tasks * 3
        assert metrics.counter_value("worker_itemsets_expected") == tasks * 3
        assert metrics.counter_value("pool_events", kind="task_merged") == tasks

    def test_ledger_balances_after_counting(self, db):
        telemetry = Telemetry.create(clock=FakeClock())
        engine = _pooled_engine(db, telemetry)
        try:
            from repro.core.itemsets import Itemset

            engine.count_tables([Itemset([0, 2]), Itemset([3, 5])])
        finally:
            engine.close()
        assert telemetry.reconcile_workers() == []


class TestMinerMerge:
    def _mine(self, db, telemetry):
        engine = _pooled_engine(db, telemetry)
        try:
            miner = ChiSquaredSupportMiner(
                significance=0.95,
                support=CellSupport(count=2, fraction=0.3),
                counting="parallel",
                engine=engine,
                telemetry=telemetry,
            )
            return miner.mine(db)
        finally:
            engine.close()

    def test_worker_kernel_counters_reach_the_run_registry(self, db):
        telemetry = Telemetry.create(clock=FakeClock())
        result = self._mine(db, telemetry)
        assert result.rules  # the run actually mined something
        metrics = telemetry.metrics
        assert metrics.counter_value("worker_tasks") >= 1
        # Workers dispatched kernels on their shards; the merged series
        # must be visible parent-side, label included.
        dispatch = metrics.series("kernel_dispatch")
        assert dispatch and sum(dispatch.values()) >= 1

    def test_extended_reconciliation_passes_end_to_end(self, db):
        telemetry = Telemetry.create(clock=FakeClock())
        result = self._mine(db, telemetry)
        assert telemetry.reconcile_workers() == []
        report = result.run_report()
        assert report["reconciliation"] == {"agreed": True, "mismatches": []}
        assert report["workers"]
        assert any(key.startswith("worker_tasks") for key in report["workers"])

    def test_reconciliation_catches_a_dropped_merge(self, db):
        telemetry = Telemetry.create(clock=FakeClock())
        self._mine(db, telemetry)
        # Simulate a worker snapshot the parent never folded in.
        telemetry.metrics.counter("worker_tasks").inc()
        mismatches = telemetry.reconcile_workers()
        assert mismatches and "worker_tasks" in mismatches[0]
