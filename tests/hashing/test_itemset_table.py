"""Unit tests for the itemset-keyed hash table."""

import pytest

from repro.core.itemsets import Itemset
from repro.hashing.itemset_table import ItemsetTable, itemset_key


class TestItemsetKey:
    def test_small_itemsets_injective(self):
        seen = {}
        for a in range(20):
            for b in range(a + 1, 20):
                key = itemset_key(Itemset([a, b]))
                assert key not in seen
                seen[key] = (a, b)

    def test_singleton_vs_pair_distinct(self):
        assert itemset_key(Itemset([1])) != itemset_key(Itemset([0, 1]))

    def test_empty_itemset(self):
        assert itemset_key(Itemset([])) == 0

    def test_wide_itemsets_get_folded_keys(self):
        wide = Itemset(range(5))
        key = itemset_key(wide)
        assert key >> 60 == 1  # folded marker bit

    def test_deterministic(self):
        assert itemset_key(Itemset([3, 9])) == itemset_key(Itemset([9, 3]))


@pytest.mark.parametrize("backend", ["dict", "fks"])
class TestItemsetTable:
    def test_insert_contains_get(self, backend):
        table = ItemsetTable(backend=backend)
        table.insert(Itemset([1, 2]), "value")
        assert Itemset([1, 2]) in table
        assert Itemset([1, 3]) not in table
        assert table.get(Itemset([1, 2])) == "value"
        assert table.get(Itemset([9]), "d") == "d"

    def test_len(self, backend):
        table = ItemsetTable(backend=backend)
        for i in range(30):
            table.insert(Itemset([i, i + 1]))
        assert len(table) == 30

    def test_getitem_raises(self, backend):
        with pytest.raises(KeyError):
            ItemsetTable(backend=backend)[Itemset([1])]

    def test_delete(self, backend):
        table = ItemsetTable([(Itemset([1, 2]), 1)], backend=backend)
        table.delete(Itemset([1, 2]))
        assert Itemset([1, 2]) not in table

    def test_delete_missing_raises(self, backend):
        with pytest.raises(KeyError):
            ItemsetTable(backend=backend).delete(Itemset([5]))

    def test_iteration(self, backend):
        itemsets = [Itemset([i, i + 2]) for i in range(10)]
        table = ItemsetTable(((s, i) for i, s in enumerate(itemsets)), backend=backend)
        assert sorted(table.keys()) == sorted(itemsets)
        assert sorted(table) == sorted(itemsets)
        assert dict(table.items()) == {s: i for i, s in enumerate(itemsets)}

    def test_overwrite(self, backend):
        table = ItemsetTable(backend=backend)
        table.insert(Itemset([4, 5]), "a")
        table.insert(Itemset([4, 5]), "b")
        assert table[Itemset([4, 5])] == "b"
        assert len(table) == 1

    def test_wide_itemsets(self, backend):
        wide = [Itemset(range(i, i + 6)) for i in range(50)]
        table = ItemsetTable(((s, None) for s in wide), backend=backend)
        for s in wide:
            assert s in table


class TestBackendValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ItemsetTable(backend="bogus")

    def test_backend_property(self):
        assert ItemsetTable(backend="fks").backend == "fks"
        assert ItemsetTable().backend == "dict"
