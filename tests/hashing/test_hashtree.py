"""Unit tests for the Apriori hash tree."""

import random

import pytest

from repro.core.itemsets import Itemset
from repro.data.basket import BasketDatabase
from repro.hashing.hashtree import HashTree


class TestConstruction:
    def test_size_and_dedup(self):
        tree = HashTree([Itemset([1, 2]), Itemset([2, 3]), Itemset([1, 2])])
        assert len(tree) == 2
        assert tree.candidate_size == 2

    def test_mixed_sizes_rejected(self):
        with pytest.raises(ValueError):
            HashTree([Itemset([1]), Itemset([1, 2])])

    def test_empty_candidate_rejected(self):
        with pytest.raises(ValueError):
            HashTree([Itemset([])])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HashTree([], leaf_capacity=0)
        with pytest.raises(ValueError):
            HashTree([], fanout=1)

    def test_splitting_preserves_candidates(self):
        # More candidates than leaf capacity forces interior nodes.
        candidates = [Itemset([a, a + 1, a + 2]) for a in range(40)]
        tree = HashTree(candidates, leaf_capacity=2, fanout=4)
        assert len(tree) == 40
        counted = tree.counts()
        assert set(counted) == set(candidates)


class TestCounting:
    def test_simple_counts(self):
        tree = HashTree([Itemset([0, 1]), Itemset([1, 2]), Itemset([0, 2])])
        baskets = [(0, 1, 2), (0, 1), (2,), (1, 2)]
        tree.count_baskets(baskets)
        assert tree.count_of(Itemset([0, 1])) == 2
        assert tree.count_of(Itemset([1, 2])) == 2
        assert tree.count_of(Itemset([0, 2])) == 1

    def test_short_baskets_skipped(self):
        tree = HashTree([Itemset([0, 1, 2])])
        tree.count_baskets([(0, 1), ()])
        assert tree.count_of(Itemset([0, 1, 2])) == 0

    def test_count_of_unknown_raises(self):
        tree = HashTree([Itemset([0, 1])])
        with pytest.raises(KeyError):
            tree.count_of(Itemset([5, 6]))

    def test_incremental_counting(self):
        tree = HashTree([Itemset([0, 1])])
        tree.count_baskets([(0, 1)])
        tree.count_baskets([(0, 1, 2)])
        assert tree.count_of(Itemset([0, 1])) == 2

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("size", [2, 3])
    def test_matches_bitmap_counting(self, seed, size):
        """Ground truth: the tree's counts equal bitmap support counts."""
        rng = random.Random(seed)
        n_items = 30
        baskets = [
            sorted(rng.sample(range(n_items), rng.randint(0, 12)))
            for _ in range(300)
        ]
        db = BasketDatabase.from_id_baskets(baskets, n_items=n_items)
        candidates = list(
            {
                Itemset(rng.sample(range(n_items), size))
                for _ in range(150)
            }
        )
        tree = HashTree(candidates, leaf_capacity=3, fanout=8)
        tree.count_baskets(db)
        for candidate in candidates:
            assert tree.count_of(candidate) == db.support_count(candidate), candidate

    def test_collision_heavy_fanout(self):
        """A tiny fanout maximises hash collisions; counts stay exact."""
        rng = random.Random(3)
        baskets = [sorted(rng.sample(range(20), 8)) for _ in range(100)]
        db = BasketDatabase.from_id_baskets(baskets, n_items=20)
        candidates = [Itemset([a, b]) for a in range(10) for b in range(a + 1, 10)]
        tree = HashTree(candidates, leaf_capacity=1, fanout=2)
        tree.count_baskets(db)
        for candidate in candidates:
            assert tree.count_of(candidate) == db.support_count(candidate)
